#ifndef UPSKILL_OBS_REQUEST_TRACE_H_
#define UPSKILL_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace upskill {
namespace obs {

/// Process-unique request id: the high 16 bits derive from the process
/// epoch so ids from successive runs of the same binary don't collide in
/// aggregated traces, the low 48 bits are a monotone counter. Never zero.
uint64_t NextRequestId();

/// One completed request as held by the flight recorder. `kind_name`
/// must have static storage duration (serve uses its static span-name
/// literals) so records are trivially copyable with no per-record
/// allocation.
struct RequestRecord {
  uint64_t id = 0;
  const char* kind_name = "";
  int kind_index = 0;
  /// Steady-clock nanoseconds relative to the recorder's construction.
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  /// Dense process-local thread id (CurrentThreadId()).
  int thread = 0;
  bool error = false;
  bool shed = false;
};

struct FlightRecorderOptions {
  /// Total ring capacity across all stripes (last K completed requests).
  size_t capacity = 4096;
  /// Ring stripes; each completion locks one stripe mutex. Rounded up to
  /// a power of two, capped so every stripe holds at least one record.
  size_t num_stripes = 8;
  /// Tail sampling: how many of the slowest requests to retain per kind,
  /// surviving ring overwrite.
  size_t slowest_per_kind = 8;
  /// Tail sampling: capacity of the retained error/shed ring.
  size_t error_capacity = 256;
  /// Thin the main ring to one record per `sample_every` completions per
  /// stripe. Tail-sampled paths (errors, sheds, slowest) always evaluate
  /// regardless of this setting.
  uint64_t sample_every = 1;
};

/// Point-in-time occupancy counters for /statusz and the stats line.
struct FlightRecorderStats {
  uint64_t recorded = 0;      ///< completions offered to the recorder
  /// Thinned out of the main ring. Derived as offered - kept per
  /// stripe, so it can transiently overcount by the number of Record()
  /// calls in flight; exact once writers are quiescent.
  uint64_t sampled_out = 0;
  uint64_t errors_retained = 0;
  uint64_t sheds_retained = 0;
  size_t ring_size = 0;       ///< records currently in the main ring
  size_t slowest_size = 0;    ///< records in the slowest-per-kind tables
};

/// Fixed-size, lock-striped ring of the last K completed requests plus
/// tail-sampled retention (errors, sheds, and the slowest requests per
/// kind survive ring overwrite). Record() takes one stripe mutex — the
/// stripe is chosen by thread, so concurrent workers rarely contend —
/// and memory is bounded at construction: capacity + error_capacity +
/// kMaxKinds * slowest_per_kind records, no growth afterwards.
///
/// Observation-only by construction: nothing in here is read back by the
/// serving or training paths, so enabling a flight recorder cannot
/// perturb model outputs (tests/obs/determinism_test.cc covers this).
class FlightRecorder {
 public:
  /// Slowest-per-kind tables are fixed at construction; kinds at or
  /// above this index still land in the ring and error retention but do
  /// not get a slowest table. Serve has 9 kinds.
  static constexpr int kMaxKinds = 16;

  explicit FlightRecorder(FlightRecorderOptions options = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record a completed request. Assigns the record's id internally when
  /// `id` is 0. `kind_name` must be a static literal.
  ///
  /// Defined inline on purpose: the steady-state outcome under tail
  /// sampling — not an error or shed, under the slowest-table floor,
  /// thinned out of the main ring — decides and returns right here in
  /// the caller with one relaxed fetch_add and a mask test, never
  /// materializing the record or leaving the caller's code stream. Only
  /// records actually worth keeping pay the out-of-line continuations.
  void Record(int kind_index, const char* kind_name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end, bool error,
              bool shed, uint64_t id = 0) {
    const int64_t duration_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    // Slowest-per-kind candidacy: lock-free reject against the kind's
    // floor mirror (-1 until the table fills, so everything is a
    // candidate while it is filling; floors round down, so rounding
    // only ever admits more candidates).
    bool slow_candidate = false;
    if (has_slow_tables_ && kind_index >= 0 && kind_index < kMaxKinds) {
      const int32_t floor_us =
          floor_us_[kind_index].load(std::memory_order_relaxed);
      slow_candidate =
          floor_us < 0 || duration_ns > int64_t{floor_us} * 1000;
    }
    if (!error && !shed && !slow_candidate) {
      Stripe& stripe = stripes_[StripeFor()];
      const uint64_t offered =
          stripe.offered.fetch_add(1, std::memory_order_relaxed);
      if (SampledOut(offered)) return;
      KeptRecord(stripe, kind_index, kind_name, start, duration_ns, id);
      return;
    }
    RecordSlow(kind_index, kind_name, start, duration_ns, error, shed,
               slow_candidate, id);
  }

  /// Record a completed request using the *caller's* request sequence
  /// number as the sampling clock instead of the recorder's per-stripe
  /// counters. Serve's front ends already pay for a request counter on
  /// a cache line that is hot in the worker — Execute's served-requests
  /// counter, the TCP worker's per-core sequence — so the steady-state
  /// sampled-out path here costs a mask test of `seq` plus one load of
  /// the read-only floor line: no thread id, no stripe, no atomic RMW.
  /// bench_obs's paired runs put the whole thing — including the
  /// 1-in-16 admitted record — at ~1.5% of serve's ~650ns in-process
  /// path and ~1.6% of the ~370ns pipelined binary TCP path
  /// (single-digit ns per request either way).
  ///
  /// Semantics match Record(): errors, sheds, and slowest candidates
  /// are always admitted; the main ring keeps the 1-in-sample_every
  /// cadence representatives. Cadence reps account for their whole
  /// block (offered += sample_every), so Stats().recorded tracks the
  /// true completion count to within sample_every per in-flight thread
  /// and is exact in sum when the caller's sequence is contiguous.
  void RecordSampled(uint64_t seq, int kind_index, const char* kind_name,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end, bool error,
                     bool shed, uint64_t id = 0) {
    const int64_t duration_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    bool slow_candidate = false;
    if (has_slow_tables_ && kind_index >= 0 && kind_index < kMaxKinds) {
      const int32_t floor_us =
          floor_us_[kind_index].load(std::memory_order_relaxed);
      slow_candidate =
          floor_us < 0 || duration_ns > int64_t{floor_us} * 1000;
    }
    const bool cadence = !SampledOut(seq);
    if (!cadence && !error && !shed && !slow_candidate) return;
    RecordAdmitted(cadence, kind_index, kind_name, start, duration_ns,
                   error, shed, slow_candidate, id);
  }

  /// Main ring contents, chronological by start time.
  std::vector<RequestRecord> Recent() const;
  /// Tail-sampled retention: errors/sheds ring + slowest-per-kind
  /// tables, chronological by start time, de-duplicated by record id
  /// against `recent` when merging is wanted (RenderFlightRecorderJson
  /// does this).
  std::vector<RequestRecord> Retained() const;

  FlightRecorderStats Stats() const;

  const FlightRecorderOptions& options() const { return options_; }
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  struct alignas(64) Stripe {
    /// Completions seen including thinned ones. Atomic (no stripe
    /// mutex) and first in the struct so the sampled-out fast path
    /// touches only this stripe's leading cache line.
    std::atomic<uint64_t> offered{0};
    uint64_t head = 0;                // completions pushed (under mutex)
    mutable std::mutex mutex;
    std::vector<RequestRecord> ring;  // fixed size after construction
  };

  struct SlowTable {
    mutable std::mutex mutex;
    std::vector<RequestRecord> rows;  // fixed size slowest_per_kind
    size_t used = 0;                  // guarded by mutex
  };

  size_t StripeFor() const {
    return static_cast<size_t>(CurrentThreadId()) & stripe_mask_;
  }
  /// Thinning decision for the `offered`-th completion of a stripe: a
  /// mask test when sample_every is a power of two (always, for the 1 /
  /// 16 / 4096 style values anyone configures), a modulo otherwise.
  bool SampledOut(uint64_t offered) const {
    return sample_pow2_ ? (offered & sample_mask_) != 0
                        : offered % options_.sample_every != 0;
  }
  /// Out-of-line continuation of Record() for a completion the fast
  /// path kept for the main ring: materializes the record and writes
  /// `stripe`, whose offered counter Record() already bumped.
  void KeptRecord(Stripe& stripe, int kind_index, const char* kind_name,
                  std::chrono::steady_clock::time_point start,
                  int64_t duration_ns, uint64_t id);
  /// Out-of-line continuation of Record() for errors, sheds, and
  /// slowest-table candidates: tail retention plus the main ring.
  void RecordSlow(int kind_index, const char* kind_name,
                  std::chrono::steady_clock::time_point start,
                  int64_t duration_ns, bool error, bool shed,
                  bool slow_candidate, uint64_t id);
  /// Out-of-line continuation of RecordSampled() for every admitted
  /// completion. A cadence rep goes to the main ring and accounts for
  /// its whole sampling block (offered += sample_every); non-cadence
  /// admissions (errors, sheds, slowest candidates between cadence
  /// points) go to tail retention only.
  void RecordAdmitted(bool cadence, int kind_index, const char* kind_name,
                      std::chrono::steady_clock::time_point start,
                      int64_t duration_ns, bool error, bool shed,
                      bool slow_candidate, uint64_t id);
  /// Push into the calling thread's ring stripe, honoring sample_every.
  void MainRingRecord(const RequestRecord& record);

  // Fast-path members first: the sampled-out steady state reads the
  // sampling config, one floor, and the stripe base/mask — laid out
  // here so they share the object's leading cache lines — then writes
  // one relaxed counter in its thread's stripe.
  bool sample_pow2_ = true;
  bool has_slow_tables_ = true;  // slowest_per_kind > 0
  uint64_t sample_mask_ = 0;
  size_t stripe_mask_ = 0;
  std::unique_ptr<Stripe[]> stripes_;  // stripe_mask_ + 1 entries
  /// Per-kind slowest-table admission floors in microseconds, rounded
  /// down (so a stale or rounded floor only ever admits more
  /// candidates); -1 until the kind's table first fills. Mirrors the
  /// table contents, updated under the table mutex, read lock-free.
  std::atomic<int32_t> floor_us_[kMaxKinds];

  FlightRecorderOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  size_t stripe_capacity_ = 0;

  mutable std::mutex error_mutex_;
  std::vector<RequestRecord> error_ring_;  // fixed size error_capacity
  uint64_t error_head_ = 0;
  std::atomic<uint64_t> errors_retained_{0};
  std::atomic<uint64_t> sheds_retained_{0};

  SlowTable slow_[kMaxKinds];
};

/// Chrome about://tracing JSON ("traceEvents", ph:"X") over the merged
/// ring + retained records, de-duplicated by id, with request id, kind,
/// error/shed/retained flags in args. Loadable in Perfetto; also the
/// /tracez payload.
std::string RenderFlightRecorderJson(const FlightRecorder& recorder);

}  // namespace obs
}  // namespace upskill

#endif  // UPSKILL_OBS_REQUEST_TRACE_H_
