#include "obs/trace.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace upskill {
namespace obs {

namespace {

// Registered once so the metric appears in scrapes (at zero) before the
// first drop ever happens.
Counter& TraceDroppedCounter() {
  static Counter* counter =
      &MetricsRegistry::Global().GetCounter("upskill_trace_dropped_total");
  return *counter;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose, like the metrics registry: span destructors in
  // static-teardown paths must find a live recorder.
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

void TraceRecorder::Enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Record(const char* name,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end,
                           int shard, int64_t iteration) {
  TraceEvent event;
  event.name = name;
  event.duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  event.thread = CurrentThreadId();
  event.shard = shard;
  event.iteration = iteration;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    TraceDroppedCounter().Increment();
    return;
  }
  event.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count();
  events_.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::SetCapacityForTest(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity < 1 ? 1 : capacity;
}

double Span::StopSeconds() {
  if (stopped_) return elapsed_seconds_;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  end_ = end;
  elapsed_seconds_ =
      std::chrono::duration<double>(end - start_).count();
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.enabled()) {
    recorder.Record(name_, start_, end, shard_, iteration_);
  }
  return elapsed_seconds_;
}

std::string RenderChromeTrace(const TraceRecorder& recorder) {
  const std::vector<TraceEvent> events = recorder.Events();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += StringPrintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f",
        event.name, event.thread,
        static_cast<double>(event.start_ns) / 1e3,
        static_cast<double>(event.duration_ns) / 1e3);
    if (event.shard >= 0 || event.iteration >= 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (event.shard >= 0) {
        out += StringPrintf("\"shard\":%d", event.shard);
        first_arg = false;
      }
      if (event.iteration >= 0) {
        if (!first_arg) out += ',';
        out += StringPrintf("\"iteration\":%lld",
                            static_cast<long long>(event.iteration));
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace obs
}  // namespace upskill
