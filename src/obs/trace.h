#ifndef UPSKILL_OBS_TRACE_H_
#define UPSKILL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace upskill {
namespace obs {

/// One completed span. `name` must be a string with static storage
/// duration (span call sites use literals) so recording never copies or
/// allocates per-character. Times are nanoseconds on the steady clock,
/// relative to the recorder's Enable() epoch.
struct TraceEvent {
  const char* name = "";
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  /// Dense process-local thread id (0 = first thread that recorded).
  int thread = 0;
  /// Shard index for shard-scoped spans, -1 otherwise.
  int shard = -1;
  /// Training iteration for trainer-phase spans, -1 otherwise.
  int64_t iteration = -1;
};

/// Dense small id for the calling thread, assigned on first use. Shared
/// with nothing else; used so trace rows group by worker rather than by
/// an opaque pthread handle. Inline: the flight recorder's sampled-out
/// fast path calls this once per request, so it must cost a TLS load
/// and an init-guard test, not an out-of-line call.
inline int CurrentThreadId() {
  static std::atomic<int> next_thread_id{0};
  thread_local const int id =
      next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Collects phase-scoped spans while enabled. Spans are coarse by design
/// (trainer phases, per-shard map tasks — not per-request), so a mutex
/// push per completed span is cheap; the recorder is disabled by default
/// and every span call site checks the flag with one relaxed load before
/// touching the clock. Capacity is bounded: past kMaxEvents spans are
/// counted but dropped, so a forgotten-enabled recorder cannot eat the
/// heap.
class TraceRecorder {
 public:
  static constexpr size_t kMaxEvents = 1 << 20;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide recorder used by UPSKILL_SPAN.
  static TraceRecorder& Global();

  /// Clears previous events, stamps the epoch, starts recording.
  void Enable();
  /// Stops recording; collected events remain readable.
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void Record(const char* name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end, int shard,
              int64_t iteration);

  /// Copy of the collected events (chronological by completion).
  std::vector<TraceEvent> Events() const;
  /// Spans rejected because the buffer was full. Also exported as the
  /// `upskill_trace_dropped_total` counter.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Shrinks the event capacity so tests can exercise the overflow path
  /// without recording a million spans. Clamped to at least 1; resets to
  /// kMaxEvents by passing kMaxEvents.
  void SetCapacityForTest(size_t capacity);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  size_t capacity_ = kMaxEvents;  // guarded by mutex_
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII phase span. Always measures (two steady-clock reads bracketing
/// the scope) and hands the elapsed seconds back through StopSeconds(),
/// so instrumented code can feed latency histograms and the trainer's
/// seconds readouts from the same clock reads; the trace event itself is
/// only recorded when the global recorder is enabled.
class Span {
 public:
  explicit Span(const char* name, int shard = -1, int64_t iteration = -1)
      : name_(name),
        shard_(shard),
        iteration_(iteration),
        start_(std::chrono::steady_clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (!stopped_) StopSeconds();
  }

  /// Ends the span (records it if tracing is enabled) and returns the
  /// elapsed seconds. Idempotent: later calls return the first elapsed.
  double StopSeconds();

  /// Steady-clock instant the span opened (for callers that also feed a
  /// flight recorder from the same clock reads).
  std::chrono::steady_clock::time_point start_time() const { return start_; }
  /// Steady-clock instant StopSeconds() first ran (the span's end); the
  /// epoch until then. Lets flight-recorder callers reuse the span's own
  /// clock reads instead of reconstructing the end from elapsed seconds.
  std::chrono::steady_clock::time_point stop_time() const { return end_; }

 private:
  const char* name_;
  int shard_;
  int64_t iteration_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_{};
  bool stopped_ = false;
  double elapsed_seconds_ = 0.0;
};

/// Chrome about://tracing JSON for the recorder's events: one complete
/// ("ph":"X") event per span, microsecond timestamps, thread ids as tids,
/// shard/iteration in args. Load via chrome://tracing or Perfetto.
std::string RenderChromeTrace(const TraceRecorder& recorder);

}  // namespace obs
}  // namespace upskill

/// Scoped span over the rest of the enclosing block:
///   UPSKILL_SPAN("assignment");
/// Shard- and iteration-scoped variants thread the extra ids into the
/// trace event. The variable name embeds the line number so two spans can
/// coexist in one scope.
#define UPSKILL_SPAN(name) \
  ::upskill::obs::Span UPSKILL_SPAN_CONCAT_(upskill_span_, __LINE__)(name)
#define UPSKILL_SPAN_SHARD(name, shard)                                 \
  ::upskill::obs::Span UPSKILL_SPAN_CONCAT_(upskill_span_, __LINE__)(   \
      name, (shard))
#define UPSKILL_SPAN_CONCAT_(a, b) UPSKILL_SPAN_CONCAT_IMPL_(a, b)
#define UPSKILL_SPAN_CONCAT_IMPL_(a, b) a##b

#endif  // UPSKILL_OBS_TRACE_H_
