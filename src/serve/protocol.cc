#include "serve/protocol.h"

#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace upskill {
namespace serve {

namespace {

obs::Counter& ParseErrorCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "upskill_serve_parse_errors_total");
  return counter;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  for (const std::string& token : Split(line, ' ')) {
    const std::string_view stripped = StripWhitespace(token);
    if (!stripped.empty()) tokens.emplace_back(stripped);
  }
  return tokens;
}

Status WrongArity(const char* command, const char* usage) {
  return Status::InvalidArgument(
      StringPrintf("%s expects: %s", command, usage));
}

Result<ServeRequest> ParseServeRequestImpl(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty request");
  ServeRequest request;
  const std::string& command = tokens[0];
  if (command == "observe") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return WrongArity("observe", "observe <user> <item> [<time>]");
    }
    request.kind = ServeRequest::Kind::kObserve;
    request.user = tokens[1];
    const Result<long long> item = ParseInt(tokens[2]);
    if (!item.ok()) return item.status();
    request.item = static_cast<ItemId>(item.value());
    if (tokens.size() == 4) {
      const Result<long long> time = ParseInt(tokens[3]);
      if (!time.ok()) return time.status();
      request.time = time.value();
      request.has_time = true;
    }
    return request;
  }
  if (command == "level") {
    if (tokens.size() != 2) return WrongArity("level", "level <user>");
    request.kind = ServeRequest::Kind::kLevel;
    request.user = tokens[1];
    return request;
  }
  if (command == "recommend") {
    if (tokens.size() < 2 || tokens.size() > 4) {
      return WrongArity("recommend", "recommend <user> [<top>] [<stretch>]");
    }
    request.kind = ServeRequest::Kind::kRecommend;
    request.user = tokens[1];
    if (tokens.size() >= 3) {
      const Result<long long> top = ParseInt(tokens[2]);
      if (!top.ok()) return top.status();
      request.top_k = static_cast<int>(top.value());
    }
    if (tokens.size() == 4) {
      const Result<double> stretch = ParseDouble(tokens[3]);
      if (!stretch.ok()) return stretch.status();
      request.stretch = stretch.value();
    }
    return request;
  }
  if (command == "difficulty") {
    if (tokens.size() != 2) {
      return WrongArity("difficulty", "difficulty <item>");
    }
    request.kind = ServeRequest::Kind::kDifficulty;
    const Result<long long> item = ParseInt(tokens[1]);
    if (!item.ok()) return item.status();
    request.item = static_cast<ItemId>(item.value());
    return request;
  }
  if (command == "swap") {
    if (tokens.size() != 2) return WrongArity("swap", "swap <snapshot_path>");
    request.kind = ServeRequest::Kind::kSwap;
    request.path = tokens[1];
    return request;
  }
  if (command == "stats") {
    if (tokens.size() != 1) return WrongArity("stats", "stats");
    request.kind = ServeRequest::Kind::kStats;
    return request;
  }
  if (command == "evict") {
    if (tokens.size() != 2) return WrongArity("evict", "evict <min_time>");
    request.kind = ServeRequest::Kind::kEvict;
    const Result<long long> min_time = ParseInt(tokens[1]);
    if (!min_time.ok()) return min_time.status();
    request.time = min_time.value();
    request.has_time = true;
    return request;
  }
  if (command == "reset") {
    if (tokens.size() != 1) return WrongArity("reset", "reset");
    request.kind = ServeRequest::Kind::kReset;
    return request;
  }
  if (command == "quit") {
    if (tokens.size() != 1) return WrongArity("quit", "quit");
    request.kind = ServeRequest::Kind::kQuit;
    return request;
  }
  // Stable `unknown_command` marker token (see header): clients and the
  // protocol-robustness tests match on it rather than on prose.
  return Status::InvalidArgument("unknown_command " + command);
}

}  // namespace

const char* ServeRequestKindName(ServeRequest::Kind kind) {
  switch (kind) {
    case ServeRequest::Kind::kObserve: return "observe";
    case ServeRequest::Kind::kLevel: return "level";
    case ServeRequest::Kind::kRecommend: return "recommend";
    case ServeRequest::Kind::kDifficulty: return "difficulty";
    case ServeRequest::Kind::kSwap: return "swap";
    case ServeRequest::Kind::kStats: return "stats";
    case ServeRequest::Kind::kEvict: return "evict";
    case ServeRequest::Kind::kReset: return "reset";
    case ServeRequest::Kind::kQuit: return "quit";
  }
  return "unknown";
}

const char* ServeRequestKindSpanName(ServeRequest::Kind kind) {
  switch (kind) {
    case ServeRequest::Kind::kObserve: return "serve/observe";
    case ServeRequest::Kind::kLevel: return "serve/level";
    case ServeRequest::Kind::kRecommend: return "serve/recommend";
    case ServeRequest::Kind::kDifficulty: return "serve/difficulty";
    case ServeRequest::Kind::kSwap: return "serve/swap";
    case ServeRequest::Kind::kStats: return "serve/stats";
    case ServeRequest::Kind::kEvict: return "serve/evict";
    case ServeRequest::Kind::kReset: return "serve/reset";
    case ServeRequest::Kind::kQuit: return "serve/quit";
  }
  return "serve/unknown";
}

std::string FormatErrorResponse(const Status& status) {
  return StringPrintf("ERR %s %s", StatusCodeToString(status.code()),
                      status.message().c_str());
}

Result<ServeRequest> ParseServeRequest(const std::string& line) {
  Result<ServeRequest> result = ParseServeRequestImpl(line);
  if (!result.ok()) ParseErrorCounter().Increment();
  return result;
}

}  // namespace serve
}  // namespace upskill
