#ifndef UPSKILL_SERVE_PROTOCOL_H_
#define UPSKILL_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace upskill {
namespace serve {

/// One parsed request of the serving protocol, shared by the stdio
/// front end (newline-delimited text, grammar in README.md "Serving")
/// and the TCP front end (the same text grammar, or the length-prefixed
/// binary framing in net/frame.h):
///
///   observe <user> <item> [<time>]
///   level <user>
///   recommend <user> [<top>] [<stretch>]
///   difficulty <item>
///   swap <snapshot_path>
///   stats
///   evict <min_time>
///   reset
///   quit
struct ServeRequest {
  enum class Kind {
    kObserve,
    kLevel,
    kRecommend,
    kDifficulty,
    kSwap,
    kStats,
    kEvict,
    kReset,
    kQuit,
  };
  Kind kind = Kind::kStats;
  std::string user;
  ItemId item = -1;
  /// Action timestamp; when absent the session's last time is reused
  /// (zero gap, so forgetting never triggers).
  int64_t time = 0;
  bool has_time = false;
  int top_k = 10;
  double stretch = 1.0;
  std::string path;
};

/// Number of ServeRequest::Kind values (for per-kind instrument arrays).
inline constexpr int kNumServeRequestKinds = 9;

/// Protocol keyword for `kind` ("observe", "level", ...). Used both for
/// documentation strings and as the `kind` label on per-request metrics.
const char* ServeRequestKindName(ServeRequest::Kind kind);

/// Trace span name for `kind` ("serve/observe", ...): the name both
/// Server::Execute's spans and the flight recorder's request records
/// carry, so phase traces and /tracez dumps line up.
const char* ServeRequestKindSpanName(ServeRequest::Kind kind);

/// Parses one protocol line (leading/trailing whitespace ignored).
/// Parse failures are counted in `upskill_serve_parse_errors_total`.
/// An unrecognized command keyword fails with code InvalidArgument and a
/// message whose first token is the stable machine-parseable marker
/// `unknown_command` (so clients can distinguish "typo in the verb" from
/// "bad arguments to a known verb" without string-matching free text).
Result<ServeRequest> ParseServeRequest(const std::string& line);

/// Renders the machine-parseable error line of the serving protocol:
/// `ERR <code> <message>` with `<code>` a StatusCodeToString name, e.g.
/// `ERR NotFound no observed actions for user alice`. Everything after
/// the second space is free-form message text, except the stable first
/// tokens documented per error class (`unknown_command`, `shed`).
std::string FormatErrorResponse(const Status& status);

}  // namespace serve
}  // namespace upskill

#endif  // UPSKILL_SERVE_PROTOCOL_H_
