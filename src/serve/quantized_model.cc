#include "serve/quantized_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/backend.h"
#include "exec/map_reduce.h"
#include "exec/shard.h"

namespace upskill {
namespace serve {

namespace {

// log-units -> accumulator units, flooring -inf (and anything below the
// int16 accumulator range) at kQuantCostFloor. Finite transition costs
// are a few nats, so the floor only ever fires for genuine -inf weights.
int16_t QuantizeCost(double log_value) {
  if (!(log_value > static_cast<double>(kQuantCostFloor) /
                        static_cast<double>(kQuantAccScale))) {
    return kQuantCostFloor;
  }
  const double units = log_value * static_cast<double>(kQuantAccScale);
  return static_cast<int16_t>(std::lround(std::min(units, 0.0)));
}

}  // namespace

std::shared_ptr<const QuantizedModel> QuantizedModel::FromServingModel(
    const ServingModel& model, ThreadPool* pool) {
  exec::BackendChoice choice;
  return FromServingModel(model, choice.Resolve(nullptr, pool));
}

std::shared_ptr<const QuantizedModel> QuantizedModel::FromServingModel(
    const ServingModel& model, exec::Backend* backend) {
  if (backend == nullptr) backend = exec::SerialBackend::Get();
  std::shared_ptr<QuantizedModel> q(new QuantizedModel());
  q->num_levels_ = model.num_levels();
  q->num_items_ = model.num_items();
  const size_t levels = static_cast<size_t>(q->num_levels_);
  const size_t num_items = static_cast<size_t>(q->num_items_);
  q->rows_.resize(num_items * levels);
  q->mults_.resize(num_items);

  const std::vector<double>& log_probs = model.item_log_probs();
  const exec::ShardPlan plan = exec::ShardPlan::Contiguous(
      num_items,
      exec::ResolveShardCount(0, static_cast<const exec::Backend*>(backend),
                              num_items));
  exec::MapShards(backend, plan.num_shards(), [&](int shard) {
    const exec::IndexRange range = plan.range(shard);
    for (size_t item = range.begin; item < range.end; ++item) {
      const double* row = log_probs.data() + item * levels;
      int16_t* out = q->rows_.data() + item * levels;
      double row_max = -std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < levels; ++s) row_max = std::max(row_max, row[s]);
      if (!std::isfinite(row_max)) {
        // Item impossible at every level: a flat row (the DP sees only
        // the transition structure), like the double path where a shared
        // -inf cancels out of every comparison.
        std::fill(out, out + levels, static_cast<int16_t>(0));
        q->mults_[item] = 0;
        continue;
      }
      double residual_range = 0.0;
      for (size_t s = 0; s < levels; ++s) {
        const double r =
            std::max(row[s] - row_max, -kQuantResidualRange);  // -inf floors
        residual_range = std::max(residual_range, -r);
      }
      if (residual_range == 0.0) {
        std::fill(out, out + levels, static_cast<int16_t>(0));
        q->mults_[item] = 0;
        continue;
      }
      const double lane_scale = 32767.0 / residual_range;
      for (size_t s = 0; s < levels; ++s) {
        const double r = std::max(row[s] - row_max, -kQuantResidualRange);
        out[s] = static_cast<int16_t>(std::lround(r * lane_scale));
      }
      // <= lround(256 * 127 / 32767 * 32768) = 32513, so it fits int16
      // and vpmulhrsw can apply it to 16 lanes at once.
      q->mults_[item] = static_cast<int16_t>(std::lround(
          static_cast<double>(kQuantAccScale) * residual_range / 32767.0 *
          32768.0));
    }
  });

  const TransitionWeights* transitions = model.transitions();
  if (transitions != nullptr) {
    q->q_initial_.reserve(transitions->log_initial.size());
    for (const double log_p : transitions->log_initial) {
      q->q_initial_.push_back(QuantizeCost(log_p));
    }
    q->q_stay_ = QuantizeCost(transitions->log_stay);
    q->q_up_ = QuantizeCost(transitions->log_up);
  }
  q->q_down_ = QuantizeCost(model.log_down());
  return std::shared_ptr<const QuantizedModel>(std::move(q));
}

}  // namespace serve
}  // namespace upskill
