#ifndef UPSKILL_SERVE_QUANTIZED_MODEL_H_
#define UPSKILL_SERVE_QUANTIZED_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "serve/serving_model.h"

namespace upskill {
namespace serve {

/// Fixed global accumulator scale: how many int16 "accumulator units" one
/// log-unit (nat) of score is worth. Session columns, transition costs,
/// and converted item rows all live in these units, and the scale is a
/// constant of the serving protocol — NOT a per-snapshot quantity — so a
/// session's accumulator column stays meaningful across snapshot
/// hot-swaps (the refresh rule is the same as the double path's: carry
/// the column, reset only when the level count S changes).
inline constexpr int32_t kQuantAccScale = 256;

/// Residual clamp: per-item level scores more than this many nats below
/// the item's best level are floored (and -inf becomes exactly this).
/// e^-127 is far beyond double's discrimination in the DP anyway, and
/// 127 nats * kQuantAccScale keeps the Q15 multiplier below 32768, so it
/// fits int16 and the kernels can reconstruct a row with one vpmulhrsw
/// (16 lanes per instruction) instead of widening to int32.
inline constexpr double kQuantResidualRange = 127.0;

/// Floor for quantized transition/initial costs whose double value is
/// -inf (e.g. a zero initial probability): the bottom of the int16
/// accumulator range (-128 nats at kQuantAccScale). The whole streaming
/// DP runs in saturating int16 arithmetic, so a lane carrying this cost
/// pins to the bottom of the column, matching the "effectively
/// impossible" semantics of -inf.
inline constexpr int16_t kQuantCostFloor = -32768;

/// NNUE-style int16 fixed-point copy of a ServingModel's level-by-item
/// score matrix plus its transition costs, feeding the integer streaming
/// DP in simd::QuantizedForward*. Per item i with double row row[s]:
///
///   residual r[s] = clamp(row[s] - max_s row[s], -kQuantResidualRange, 0]
///   stored lane   q[s] = lround(r[s] * 32767 / range_i)   in [-32767, 0]
///   Q15 mult      m_i  = lround(kQuantAccScale * range_i / 32767 * 32768)
///
/// where range_i = max_s(-r[s]) (0 for a flat row, giving q = 0, m = 0).
/// The residual clamp bounds m_i at 32513, so the multiplier is itself an
/// int16 and the serving kernels reconstruct accumulator units on the fly
/// as (q[s] * m_i + 2^14) >> 15 (round to nearest) — exactly what one
/// vpmulhrsw computes for 16 lanes. Each item's row spends its full 15
/// bits of precision on its own dynamic range. Dropping the per-item
/// maximum is exact for level inference: the forward DP adds row[s] to
/// every lane of the same column, so a per-item uniform shift cancels in
/// every comparison the argmax ever makes.
///
/// Like ServingModel, instances are immutable and shared by shared_ptr;
/// a snapshot hot-swap builds a fresh QuantizedModel (requantization) and
/// atomically publishes it next to the new double view.
class QuantizedModel {
 public:
  /// Quantizes `model`'s matrix and transitions. `pool` parallelizes the
  /// per-item pass.
  static std::shared_ptr<const QuantizedModel> FromServingModel(
      const ServingModel& model, ThreadPool* pool = nullptr);

  /// Backend form: the per-item pass dispatches through `backend`
  /// (null = serial); quantized bytes are identical either way.
  static std::shared_ptr<const QuantizedModel> FromServingModel(
      const ServingModel& model, exec::Backend* backend);

  int num_levels() const { return num_levels_; }
  int num_items() const { return num_items_; }

  /// S-sized int16 residual row for one item.
  std::span<const int16_t> ItemRow(ItemId item) const {
    return std::span<const int16_t>(
        rows_.data() + static_cast<size_t>(item) * static_cast<size_t>(
                                                       num_levels_),
        static_cast<size_t>(num_levels_));
  }

  /// Q15 multiplier turning ItemRow(item) lanes into accumulator units,
  /// in [0, 32513].
  int16_t ItemMult(ItemId item) const {
    return mults_[static_cast<size_t>(item)];
  }

  /// Initial level costs in accumulator units; empty means a free start
  /// (the snapshot carries no progression component).
  std::span<const int16_t> q_initial() const { return q_initial_; }
  /// Transition costs in accumulator units (all zero for a free walk).
  int16_t q_stay() const { return q_stay_; }
  int16_t q_up() const { return q_up_; }
  int16_t q_down() const { return q_down_; }

 private:
  QuantizedModel() = default;

  int num_levels_ = 0;
  int num_items_ = 0;
  // [item * S + (level-1)], residual lanes in [-32767, 0].
  std::vector<int16_t> rows_;
  // One Q15 multiplier per item.
  std::vector<int16_t> mults_;
  std::vector<int16_t> q_initial_;
  int16_t q_stay_ = 0;
  int16_t q_up_ = 0;
  int16_t q_down_ = 0;
};

}  // namespace serve
}  // namespace upskill

#endif  // UPSKILL_SERVE_QUANTIZED_MODEL_H_
