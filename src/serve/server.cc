#include "serve/server.h"

#include <cmath>
#include <utility>

#include "common/string_util.h"
#include "core/dp.h"
#include "exec/map_reduce.h"
#include "exec/shard.h"
#include "obs/exposition.h"
#include "obs/model_health.h"
#include "obs/trace.h"
#include "serve/snapshot.h"
#include "simd/kernels.h"

namespace upskill {
namespace serve {

Server::Server(std::shared_ptr<const ServingModel> model, int num_shards,
               bool quantized)
    : quantized_(quantized),
      model_(std::move(model)),
      qmodel_(quantized ? QuantizedModel::FromServingModel(*model_) : nullptr),
      sessions_(num_shards),
      snapshot_swaps_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_serve_snapshot_swaps_total")) {
  // Register the per-kind instruments up front: the request path then
  // only touches lock-free instrument updates, never the registry mutex.
  // Request latencies start at a 100ns bucket (requests are O(S) DP
  // steps, often sub-microsecond).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::HistogramOptions latency_options;
  latency_options.min_bound = 1e-7;
  for (int i = 0; i < kNumServeRequestKinds; ++i) {
    const std::string labels = StringPrintf(
        "kind=\"%s\"", ServeRequestKindName(static_cast<ServeRequest::Kind>(i)));
    instruments_[static_cast<size_t>(i)] = KindInstruments{
        &registry.GetHistogram("upskill_serve_request_latency_seconds", labels,
                               latency_options),
        &registry.GetCounter("upskill_serve_requests_total", labels),
        &registry.GetCounter("upskill_serve_request_errors_total", labels)};
  }
  // Model-health wiring: the initial snapshot is an install too, and the
  // session level distribution is sampled from the store at scrape time.
  obs::ModelHealth& health = obs::ModelHealth::Global();
  health.NoteSnapshotInstalled("", static_cast<int>(kSnapshotVersion),
                               model_->num_levels(), model_->num_items());
  health_sampler_token_ = health.AddSampler([this] {
    obs::ModelHealth::Global().SetSessionLevelCounts(
        sessions_.LevelCounts(this->model()->num_levels()));
  });
}

Server::~Server() {
  obs::ModelHealth::Global().RemoveSampler(health_sampler_token_);
}

std::shared_ptr<const ServingModel> Server::model() const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

Server::ModelViews Server::Views() const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return ModelViews{model_, qmodel_};
}

Result<SessionLevel> Server::Observe(const std::string& user, ItemId item,
                                     int64_t time, bool has_time) {
  const ModelViews views = Views();
  const ServingModel& model = *views.model;
  if (item < 0 || item >= model.num_items()) {
    return Status::OutOfRange(StringPrintf("item %d", item));
  }
  const TransitionWeights* transitions = model.transitions();
  const std::span<const double> log_initial =
      transitions == nullptr
          ? std::span<const double>{}
          : std::span<const double>(transitions->log_initial);
  const double log_stay =
      transitions == nullptr ? 0.0 : transitions->log_stay;
  const double log_up = transitions == nullptr ? 0.0 : transitions->log_up;
  const ForgettingConfig& forgetting = model.forgetting();
  const size_t levels = static_cast<size_t>(model.num_levels());
  const QuantizedModel* qmodel = views.quantized.get();

  Status error = Status::OK();
  SessionLevel result;
  int64_t effective_time = 0;
  sessions_.WithSession(user, [&](SessionState& session) {
    // A swap that changed S resets the store, but a racing observe can
    // still carry a stale-width column into this shard; restart it.
    const size_t width =
        qmodel != nullptr ? session.qcolumn.size() : session.column.size();
    if (session.actions > 0 && width != levels) {
      session = SessionState{};
    }
    const int64_t t = has_time ? time : session.last_time;
    if (session.actions > 0 && t < session.last_time) {
      error = Status::InvalidArgument(StringPrintf(
          "time %lld goes backwards (session is at %lld)",
          static_cast<long long>(t),
          static_cast<long long>(session.last_time)));
      return;
    }
    const bool allow_down =
        session.actions > 0 && forgetting.enabled &&
        (t - session.last_time) > forgetting.gap_threshold;
    if (qmodel != nullptr) {
      const std::span<const int16_t> qrow = qmodel->ItemRow(item);
      const int16_t mult = qmodel->ItemMult(item);
      if (session.actions == 0) {
        session.qcolumn.resize(levels);
        session.qnext_column.resize(levels);
        const std::span<const int16_t> q_initial = qmodel->q_initial();
        simd::QuantizedForwardInit(
            qrow.data(), mult,
            q_initial.empty() ? nullptr : q_initial.data(), levels,
            session.qcolumn.data());
      } else {
        simd::QuantizedForwardStep(
            session.qcolumn.data(), qrow.data(), mult, qmodel->q_stay(),
            qmodel->q_up(), allow_down, qmodel->q_down(), levels,
            session.qnext_column.data());
        std::swap(session.qcolumn, session.qnext_column);
      }
      session.level =
          simd::QuantizedForwardLevel(session.qcolumn.data(), levels);
    } else {
      if (session.actions == 0) {
        session.column.resize(levels);
        session.next_column.resize(levels);
        MonotoneForwardStart(model.ItemRow(item), log_initial,
                             session.column);
      } else {
        MonotoneForwardStep(session.column, model.ItemRow(item), log_stay,
                            log_up, allow_down, model.log_down(),
                            session.next_column);
        std::swap(session.column, session.next_column);
      }
      session.level = MonotoneForwardLevel(session.column);
    }
    session.last_time = t;
    ++session.actions;
    result.level = session.level;
    result.actions = session.actions;
    effective_time = t;
  });
  if (!error.ok()) return error;
  // Tee the accepted observation to the ingest hook outside the shard
  // lock, with the time the session actually recorded.
  if (observe_hook_) observe_hook_(user, item, effective_time);
  return result;
}

Result<SessionLevel> Server::CurrentLevel(const std::string& user) const {
  SessionState session;
  if (!sessions_.Lookup(user, &session) || session.actions == 0) {
    return Status::NotFound("no observed actions for user " + user);
  }
  return SessionLevel{session.level, session.actions};
}

Result<std::vector<UpskillRecommendation>> Server::Recommend(
    const std::string& user,
    const UpskillRecommendationOptions& options) const {
  SessionState session;
  if (!sessions_.Lookup(user, &session) || session.actions == 0) {
    return Status::NotFound("no observed actions for user " + user);
  }
  const std::shared_ptr<const ServingModel> model = this->model();
  // A swap that changed S may have raced the lookup; the copied level is
  // still a valid 1-based level under the *old* S, so clamp it.
  const int level = std::min(session.level, model->num_levels());
  Result<std::vector<UpskillRecommendation>> picks =
      model->Recommend(level, options);
  if (picks.ok()) {
    obs::ModelHealth::Global().NoteRecommendation(picks.value().size());
  }
  return picks;
}

Result<double> Server::ItemDifficulty(ItemId item) const {
  const std::shared_ptr<const ServingModel> model = this->model();
  if (item < 0 || item >= model->num_items()) {
    return Status::OutOfRange(StringPrintf("item %d", item));
  }
  return model->difficulty()[static_cast<size_t>(item)];
}

exec::Backend* Server::ResolveExecBackend(ThreadPool* pool,
                                          exec::BackendChoice& choice) const {
  if (pool != nullptr) return choice.Resolve(nullptr, pool);
  if (backend_ != nullptr) return backend_.get();
  return exec::SerialBackend::Get();
}

void Server::SwapSnapshot(std::shared_ptr<const ServingModel> next,
                          ThreadPool* pool) {
  exec::BackendChoice choice;
  exec::Backend* backend = ResolveExecBackend(pool, choice);
  // Requantize outside the lock (it is the expensive part of the swap);
  // the two views are then published atomically together.
  std::shared_ptr<const QuantizedModel> qnext =
      quantized_ ? QuantizedModel::FromServingModel(*next, backend) : nullptr;
  bool reset = false;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    reset = next->num_levels() != model_->num_levels();
    model_ = std::move(next);
    qmodel_ = std::move(qnext);
  }
  if (reset) sessions_.Clear();
  snapshot_swaps_.Increment();
  const std::shared_ptr<const ServingModel> installed = this->model();
  obs::ModelHealth::Global().NoteSnapshotInstalled(
      "", static_cast<int>(kSnapshotVersion), installed->num_levels(),
      installed->num_items());
}

Status Server::SwapSnapshotFile(const std::string& path, ThreadPool* pool) {
  exec::BackendChoice choice;
  Result<std::shared_ptr<const ServingModel>> next =
      ServingModel::FromSnapshotFile(path, ResolveExecBackend(pool, choice));
  if (!next.ok()) return next.status();
  SwapSnapshot(std::move(next).value(), pool);
  obs::ModelHealth::Global().NoteSnapshotPath(path);
  return Status::OK();
}

std::string Server::Execute(const ServeRequest& request) {
  // The served-requests counter doubles as the flight recorder's
  // sampling clock (RecordSampled below), so the steady-state trace
  // decision costs no extra shared-counter traffic.
  const uint64_t seq = requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t kind = static_cast<size_t>(request.kind);
  instruments_[kind].requests->Increment();
  obs::FlightRecorder* const recorder = flight_recorder();
  if (!obs::MetricsEnabled() && !obs::TraceRecorder::Global().enabled() &&
      recorder == nullptr) {
    return ExecuteInternal(request);
  }
  const char* span_name = ServeRequestKindSpanName(request.kind);
  obs::Span span(span_name);
  std::string response = ExecuteInternal(request);
  const double elapsed_seconds = span.StopSeconds();
  instruments_[kind].latency->Observe(elapsed_seconds);
  const bool is_error = response.compare(0, 4, "ERR ") == 0;
  if (is_error) instruments_[kind].errors->Increment();
  if (recorder != nullptr) {
    recorder->RecordSampled(seq, static_cast<int>(kind), span_name,
                            span.start_time(), span.stop_time(), is_error,
                            /*shed=*/false);
  }
  return response;
}

std::string Server::ExecuteInternal(const ServeRequest& request) {
  switch (request.kind) {
    case ServeRequest::Kind::kObserve: {
      const Result<SessionLevel> result =
          Observe(request.user, request.item, request.time, request.has_time);
      if (!result.ok()) return FormatErrorResponse(result.status());
      return StringPrintf("ok level=%d actions=%llu", result.value().level,
                          static_cast<unsigned long long>(
                              result.value().actions));
    }
    case ServeRequest::Kind::kLevel: {
      const Result<SessionLevel> result = CurrentLevel(request.user);
      if (!result.ok()) return FormatErrorResponse(result.status());
      return StringPrintf("ok level=%d actions=%llu", result.value().level,
                          static_cast<unsigned long long>(
                              result.value().actions));
    }
    case ServeRequest::Kind::kRecommend: {
      UpskillRecommendationOptions options;
      options.max_results = request.top_k;
      options.stretch = request.stretch;
      const Result<std::vector<UpskillRecommendation>> picks =
          Recommend(request.user, options);
      if (!picks.ok()) return FormatErrorResponse(picks.status());
      std::string response =
          StringPrintf("ok n=%zu", picks.value().size());
      for (const UpskillRecommendation& pick : picks.value()) {
        response += StringPrintf(" %d:%.6g:%.6g", pick.item, pick.difficulty,
                                 pick.log_prob);
      }
      return response;
    }
    case ServeRequest::Kind::kDifficulty: {
      const Result<double> difficulty = ItemDifficulty(request.item);
      if (!difficulty.ok()) return FormatErrorResponse(difficulty.status());
      return StringPrintf("ok difficulty=%.17g", difficulty.value());
    }
    case ServeRequest::Kind::kSwap: {
      const Status swapped = SwapSnapshotFile(request.path);
      if (!swapped.ok()) return FormatErrorResponse(swapped);
      const std::shared_ptr<const ServingModel> model = this->model();
      return StringPrintf("ok swapped levels=%d items=%d",
                          model->num_levels(), model->num_items());
    }
    case ServeRequest::Kind::kStats:
      return StatsText();
    case ServeRequest::Kind::kEvict: {
      const size_t evicted = EvictIdleSessions(request.time);
      return StringPrintf("ok evicted=%zu sessions=%zu", evicted,
                          num_sessions());
    }
    case ServeRequest::Kind::kReset: {
      ResetSessions();
      return "ok reset";
    }
    case ServeRequest::Kind::kQuit:
      return "ok bye";
  }
  return FormatErrorResponse(Status::Internal("unhandled request kind"));
}

std::string Server::LatencyQuantilesText() const {
  std::string out;
  for (int i = 0; i < kNumServeRequestKinds; ++i) {
    const obs::Histogram* histogram = instruments_[static_cast<size_t>(i)].latency;
    const uint64_t count = histogram->Count();
    if (count == 0) continue;
    out += StringPrintf(
        "  %s: p50=%.3g p90=%.3g p99=%.3g count=%llu\n",
        ServeRequestKindName(static_cast<ServeRequest::Kind>(i)),
        histogram->Quantile(0.5), histogram->Quantile(0.9),
        histogram->Quantile(0.99), static_cast<unsigned long long>(count));
  }
  return out;
}

std::string Server::LatencyQuantilesInline() const {
  std::string out;
  for (int i = 0; i < kNumServeRequestKinds; ++i) {
    const obs::Histogram* histogram = instruments_[static_cast<size_t>(i)].latency;
    if (histogram->Count() == 0) continue;
    const char* kind = ServeRequestKindName(static_cast<ServeRequest::Kind>(i));
    out += StringPrintf(" %s_p50=%.3g %s_p90=%.3g %s_p99=%.3g", kind,
                        histogram->Quantile(0.5), kind,
                        histogram->Quantile(0.9), kind,
                        histogram->Quantile(0.99));
  }
  return out;
}

std::string Server::StatsText() const {
  obs::ModelHealth::Global().Sample();
  const std::shared_ptr<const ServingModel> model = this->model();
  // Summary line first (stable machine-parseable header; new fields are
  // only ever appended at the end of the line), then the Prometheus
  // exposition of the whole process registry. The "# EOF" terminator
  // doubles as the protocol's end-of-response marker for this one
  // multi-line response.
  std::string response = StringPrintf(
      "ok sessions=%zu shards=%d levels=%d items=%d requests=%llu "
      "trace_dropped=%llu",
      num_sessions(), sessions_.num_shards(), model->num_levels(),
      model->num_items(),
      static_cast<unsigned long long>(requests_served()),
      static_cast<unsigned long long>(obs::TraceRecorder::Global().dropped()));
  response += LatencyQuantilesInline();
  response += '\n';
  response += obs::RenderPrometheus(obs::MetricsRegistry::Global());
  // The transport layer appends the final newline.
  while (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

std::vector<std::string> Server::ExecuteBatch(
    std::span<const ServeRequest> requests, ThreadPool* pool) {
  std::vector<std::string> responses(requests.size());
  exec::BackendChoice choice;
  exec::Backend* backend = ResolveExecBackend(pool, choice);
  // Same contiguous shard plan as the rest of the stack: each shard owns
  // a disjoint run of the request/response arrays, so the only shared
  // mutable state is inside Execute (the session store's striped locks).
  const exec::ShardPlan plan = exec::ShardPlan::Contiguous(
      requests.size(),
      exec::ResolveShardCount(0, static_cast<const exec::Backend*>(backend),
                              requests.size()));
  exec::MapShards(backend, plan.num_shards(), [&](int shard) {
    const exec::IndexRange range = plan.range(shard);
    for (size_t i = range.begin; i < range.end; ++i) {
      responses[i] = Execute(requests[i]);
    }
  });
  return responses;
}

}  // namespace serve
}  // namespace upskill
