#ifndef UPSKILL_SERVE_SERVER_H_
#define UPSKILL_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/backend.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/protocol.h"
#include "serve/quantized_model.h"
#include "serve/serving_model.h"
#include "serve/session_store.h"

namespace upskill {
namespace serve {

/// Level and observation count reported by Observe / CurrentLevel.
struct SessionLevel {
  int level = 0;
  uint64_t actions = 0;
};

/// The online serving front end: an immutable ServingModel (swappable at
/// runtime) plus the sharded SessionStore. Every method is thread-safe;
/// requests for distinct users proceed in parallel, and a snapshot swap
/// never blocks readers — in-flight requests finish against the view they
/// started with.
class Server {
 public:
  /// `quantized` switches session state to the int16 fixed-point forward
  /// DP (serve/quantized_model.h): each observation touches S int16
  /// lanes instead of S doubles, at the cost of bounded level-inference
  /// error (tests hold it to ±1 level and ≥ 99.9% top-1 recommendation
  /// agreement). Recommendation rankings and difficulties always come
  /// from the double view — only level inference is quantized.
  Server(std::shared_ptr<const ServingModel> model, int num_shards = 64,
         bool quantized = false);
  ~Server();

  /// Current model view (atomically readable while swaps happen).
  std::shared_ptr<const ServingModel> model() const;

  bool quantized() const { return quantized_; }

  /// Folds one observed action into `user`'s session: O(S) forward DP
  /// step, then reports the session's new level. Creates the session on
  /// first observation. Rejects out-of-range items and timestamps that go
  /// backwards within the session.
  Result<SessionLevel> Observe(const std::string& user, ItemId item,
                               int64_t time, bool has_time);

  /// Installs a callback fired after every *successful* Observe with the
  /// user, item, and the effective timestamp the session recorded (the
  /// request's time, or the session's previous time when the request
  /// carried none). The ingest front end uses this to tee observations
  /// into the append-only store log (store/ingest_log.h) — the write path
  /// of the continuous-learning loop. The hook runs outside the session
  /// shard lock, on the request thread; it must be internally thread-safe
  /// and should be fast (the ingest writer batches in memory). Install
  /// before serving traffic; swapping hooks mid-flight is not
  /// synchronized.
  using ObserveHook =
      std::function<void(const std::string& user, ItemId item, int64_t time)>;
  void SetObserveHook(ObserveHook hook) { observe_hook_ = std::move(hook); }

  /// Level of an existing session; fails for users never observed.
  Result<SessionLevel> CurrentLevel(const std::string& user) const;

  /// Difficulty-windowed recommendations at the session's current level
  /// (see ServingModel::Recommend). A user at the top level gets an empty
  /// list. Unlike the batch RecommendForUpskilling, the session does not
  /// carry item history, so already-tried items are not excluded.
  Result<std::vector<UpskillRecommendation>> Recommend(
      const std::string& user,
      const UpskillRecommendationOptions& options) const;

  Result<double> ItemDifficulty(ItemId item) const;

  /// Zero-downtime model swap: readers that already grabbed the old view
  /// finish on it; new requests see `next`. Sessions carry their forward
  /// columns across the swap (levels stay monotone; the column simply
  /// continues under the new scores) unless the level count S changed, in
  /// which case every session is reset. In quantized mode the new view is
  /// requantized first (`pool` parallelizes that) and published together
  /// with the double view; session accumulator columns carry over under
  /// the same rule, because accumulator units are model-independent.
  void SwapSnapshot(std::shared_ptr<const ServingModel> next,
                    ThreadPool* pool = nullptr);

  /// LoadSnapshot + ServingModel::FromSnapshot + SwapSnapshot.
  Status SwapSnapshotFile(const std::string& path, ThreadPool* pool = nullptr);

  /// Installs an execution backend for the server's parallel work
  /// (requantization on swap, snapshot rebuilds, batch fan-out). When one
  /// is installed, calls that pass no pool dispatch through it; an
  /// explicit non-null pool argument still wins, so existing front ends
  /// keep their behavior. Null uninstalls (back to inline/pool-arg).
  void SetBackend(std::shared_ptr<exec::Backend> backend) {
    backend_ = std::move(backend);
  }
  exec::Backend* backend() const { return backend_.get(); }

  size_t num_sessions() const { return sessions_.size(); }
  void ResetSessions() { sessions_.Clear(); }
  /// Drops sessions whose last observation predates `min_last_time`
  /// (SessionStore::EvictIdleSessions); returns the eviction count.
  size_t EvictIdleSessions(int64_t min_last_time) {
    return sessions_.EvictIdleSessions(min_last_time);
  }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Front ends that bypass Execute (the binary TCP path calls the typed
  /// methods directly) report their requests here so the `stats` header
  /// counts every request regardless of wire format.
  void NoteRequestServed(uint64_t count = 1) {
    requests_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Attaches a flight recorder: every Execute (and the binary TCP
  /// front end's typed calls, via the same pointer) records its
  /// completion. The pointer is atomic, so attaching or detaching while
  /// requests are in flight is safe — though the recorder itself must
  /// outlive any request that might still use it; null detaches.
  /// Purely observational — responses are byte-identical with or
  /// without a recorder attached.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    flight_recorder_.store(recorder, std::memory_order_release);
  }
  obs::FlightRecorder* flight_recorder() const {
    return flight_recorder_.load(std::memory_order_acquire);
  }

  /// Per-kind latency quantiles for kinds that have traffic, one
  /// "  <kind>: p50=<s> p90=<s> p99=<s> count=<n>\n" row per kind.
  /// Empty when nothing has been recorded (e.g. metrics disabled).
  std::string LatencyQuantilesText() const;
  /// The same quantiles as " <kind>_p50=<s> <kind>_p90=<s> <kind>_p99=<s>"
  /// fields appended to the stats summary line (kinds with traffic only).
  std::string LatencyQuantilesInline() const;

  /// The `stats` response body: the "ok sessions=..." summary line
  /// (including trace_dropped and per-kind latency quantiles) followed
  /// by the Prometheus exposition of the process registry,
  /// "# EOF"-terminated, with no trailing newline (the transport appends
  /// it). Shared by Execute's kStats case and the binary TCP front end,
  /// so both wire formats report identical telemetry.
  std::string StatsText() const;

  /// Executes one request, rendering the response ("ok ..." on success,
  /// "ERR <code> <message>" on failure). Every response is a single line
  /// except `stats`, whose "ok ..." summary line is followed by the
  /// Prometheus exposition of the process metrics registry (terminated by
  /// "# EOF"). Each call observes its latency in the per-kind
  /// `upskill_serve_request_latency_seconds` histogram and bumps the
  /// per-kind request/error counters.
  std::string Execute(const ServeRequest& request);

  /// Executes a batch, responses in request order, fanning out over
  /// `pool` (inline when null). Requests touching the same user are safe
  /// (the session store serializes them per shard) but their relative
  /// order within a batch is unspecified; a swap inside a batch applies
  /// to whichever requests observe it.
  std::vector<std::string> ExecuteBatch(std::span<const ServeRequest> requests,
                                        ThreadPool* pool = nullptr);

 private:
  /// Telemetry handles for one request kind, registered at construction
  /// so the per-request path never touches the registry mutex.
  struct KindInstruments {
    obs::Histogram* latency = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
  };

  /// Execute minus the telemetry wrapper (timing, per-kind counters).
  std::string ExecuteInternal(const ServeRequest& request);

  /// Both views, read under one lock acquisition so a concurrent swap can
  /// never hand out a double view paired with a stale quantized one.
  /// `quantized` is null unless the server runs in quantized mode.
  struct ModelViews {
    std::shared_ptr<const ServingModel> model;
    std::shared_ptr<const QuantizedModel> quantized;
  };
  ModelViews Views() const;

  /// Resolves the backend for one parallel entry point: explicit pool
  /// argument first, then the installed backend, then serial.
  exec::Backend* ResolveExecBackend(ThreadPool* pool,
                                    exec::BackendChoice& choice) const;

  const bool quantized_;
  std::shared_ptr<exec::Backend> backend_;
  mutable std::mutex model_mutex_;
  std::shared_ptr<const ServingModel> model_;
  std::shared_ptr<const QuantizedModel> qmodel_;
  SessionStore sessions_;
  ObserveHook observe_hook_;
  std::atomic<obs::FlightRecorder*> flight_recorder_{nullptr};
  std::atomic<uint64_t> requests_{0};
  std::array<KindInstruments, kNumServeRequestKinds> instruments_;
  obs::Counter& snapshot_swaps_;
  /// ModelHealth sampler registration (session level distribution);
  /// deregistered in the destructor.
  uint64_t health_sampler_token_ = 0;
};

}  // namespace serve
}  // namespace upskill

#endif  // UPSKILL_SERVE_SERVER_H_
