#include "serve/serving_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "exec/backend.h"
#include "exec/map_reduce.h"
#include "exec/shard.h"

namespace upskill {
namespace serve {

Result<std::shared_ptr<const ServingModel>> ServingModel::FromSnapshot(
    ModelSnapshot snapshot, ThreadPool* pool) {
  exec::BackendChoice choice;
  return FromSnapshot(std::move(snapshot), choice.Resolve(nullptr, pool));
}

Result<std::shared_ptr<const ServingModel>> ServingModel::FromSnapshot(
    ModelSnapshot snapshot, exec::Backend* backend) {
  if (backend == nullptr) backend = exec::SerialBackend::Get();
  const int levels = snapshot.config.num_levels;
  if (levels < 1) {
    return Status::InvalidArgument("snapshot has no skill levels");
  }
  if (snapshot.model.num_levels() != levels ||
      snapshot.model.num_features() != snapshot.schema.num_features()) {
    return Status::InvalidArgument("snapshot model/config shape mismatch");
  }
  if (static_cast<int>(snapshot.difficulty.size()) !=
      snapshot.items.num_items()) {
    return Status::InvalidArgument("snapshot difficulty size mismatch");
  }
  if (snapshot.has_transitions &&
      !snapshot.transitions.log_initial.empty() &&
      static_cast<int>(snapshot.transitions.log_initial.size()) != levels) {
    return Status::InvalidArgument("snapshot transition weights mismatch");
  }

  std::shared_ptr<ServingModel> model(new ServingModel());
  model->snapshot_ = std::move(snapshot);
  model->log_down_ =
      std::log(model->snapshot_.config.forgetting.drop_probability);
  model->log_probs_ =
      model->snapshot_.model.ItemLogProbCache(model->snapshot_.items, backend);

  const size_t num_items =
      static_cast<size_t>(model->snapshot_.items.num_items());
  model->ranked_.resize(static_cast<size_t>(levels) * num_items);
  const std::vector<double>& log_probs = model->log_probs_;
  // Per-level rankings are independent full sorts (uniform cost), so the
  // level axis gets the same contiguous shard plan the batch executor
  // uses; each shard writes a disjoint slice of ranked_.
  const exec::ShardPlan plan = exec::ShardPlan::Contiguous(
      static_cast<size_t>(levels),
      exec::ResolveShardCount(0, static_cast<const exec::Backend*>(backend),
                              static_cast<size_t>(levels)));
  exec::MapShards(backend, plan.num_shards(), [&](int shard) {
    const exec::IndexRange range = plan.range(shard);
    for (size_t s = range.begin; s < range.end; ++s) {
      ItemId* order = model->ranked_.data() + s * num_items;
      for (size_t i = 0; i < num_items; ++i) {
        order[i] = static_cast<ItemId>(i);
      }
      const size_t stride = static_cast<size_t>(levels);
      std::sort(order, order + num_items, [&](ItemId a, ItemId b) {
        const double pa = log_probs[static_cast<size_t>(a) * stride + s];
        const double pb = log_probs[static_cast<size_t>(b) * stride + s];
        if (pa != pb) return pa > pb;
        return a < b;
      });
    }
  });
  return std::shared_ptr<const ServingModel>(std::move(model));
}

Result<std::shared_ptr<const ServingModel>> ServingModel::FromSnapshotFile(
    const std::string& path, ThreadPool* pool) {
  Result<ModelSnapshot> snapshot = LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  return FromSnapshot(std::move(snapshot).value(), pool);
}

Result<std::shared_ptr<const ServingModel>> ServingModel::FromSnapshotFile(
    const std::string& path, exec::Backend* backend) {
  Result<ModelSnapshot> snapshot = LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  return FromSnapshot(std::move(snapshot).value(), backend);
}

std::span<const ItemId> ServingModel::RankedItems(int level) const {
  const size_t num_items = static_cast<size_t>(this->num_items());
  return std::span<const ItemId>(
      ranked_.data() + static_cast<size_t>(level - 1) * num_items, num_items);
}

Result<std::vector<UpskillRecommendation>> ServingModel::Recommend(
    int current_level, const UpskillRecommendationOptions& options) const {
  if (current_level < 1 || current_level > num_levels()) {
    return Status::OutOfRange(
        StringPrintf("level %d of %d", current_level, num_levels()));
  }
  if (options.max_results < 1) {
    return Status::InvalidArgument("max_results must be >= 1");
  }
  if (!(options.stretch > 0.0)) {
    return Status::InvalidArgument("stretch must be positive");
  }
  const int target = options.rank_by_next_level
                         ? std::min(current_level + 1, num_levels())
                         : current_level;
  const double lo = static_cast<double>(current_level);
  const double hi = lo + options.stretch;
  const std::vector<double>& difficulty = snapshot_.difficulty;
  const size_t stride = static_cast<size_t>(num_levels());

  std::vector<UpskillRecommendation> picks;
  picks.reserve(static_cast<size_t>(options.max_results));
  for (const ItemId item : RankedItems(target)) {
    const double d = difficulty[static_cast<size_t>(item)];
    if (std::isnan(d) || d <= lo || d > hi) continue;
    picks.push_back(UpskillRecommendation{
        item, d,
        log_probs_[static_cast<size_t>(item) * stride +
                   static_cast<size_t>(target - 1)]});
    if (static_cast<int>(picks.size()) == options.max_results) break;
  }
  return picks;
}

}  // namespace serve
}  // namespace upskill
