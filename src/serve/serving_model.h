#ifndef UPSKILL_SERVE_SERVING_MODEL_H_
#define UPSKILL_SERVE_SERVING_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/recommend.h"
#include "core/trainer.h"
#include "serve/snapshot.h"

namespace upskill {
namespace serve {

/// Immutable, request-ready view of a model snapshot. Construction does
/// all the heavy lifting once — the full level×item log-probability
/// matrix (via the batched LogProbBatch kernels behind
/// SkillModel::ItemLogProbCache) and one descending-plausibility item
/// ranking per level — so request handling touches only flat arrays:
/// ObserveAction reads one S-sized row, Recommend walks one precomputed
/// ranking and filters by the difficulty window instead of scanning and
/// sorting the item universe per request.
///
/// Instances are shared by `shared_ptr<const ServingModel>` between the
/// server front end and in-flight requests, which is what makes
/// SwapSnapshot a pointer swap: old requests finish against the old view,
/// new requests pick up the new one, nothing blocks.
class ServingModel {
 public:
  /// Builds the serving view. `pool` parallelizes the log-prob matrix and
  /// per-level ranking precomputation.
  static Result<std::shared_ptr<const ServingModel>> FromSnapshot(
      ModelSnapshot snapshot, ThreadPool* pool = nullptr);

  /// Backend form: precomputation dispatches through `backend` (null =
  /// serial); the resulting view is bitwise identical either way.
  static Result<std::shared_ptr<const ServingModel>> FromSnapshot(
      ModelSnapshot snapshot, exec::Backend* backend);

  /// Convenience: LoadSnapshot + FromSnapshot.
  static Result<std::shared_ptr<const ServingModel>> FromSnapshotFile(
      const std::string& path, ThreadPool* pool = nullptr);

  /// Backend form of FromSnapshotFile.
  static Result<std::shared_ptr<const ServingModel>> FromSnapshotFile(
      const std::string& path, exec::Backend* backend);

  int num_levels() const { return snapshot_.config.num_levels; }
  int num_items() const { return snapshot_.items.num_items(); }

  /// Item-major log P(i | s) matrix, entry [item * S + (level-1)] — the
  /// same layout the batch assignment step consumes, bitwise equal to
  /// SkillModel::ItemLogProbCache on the snapshot's item table.
  const std::vector<double>& item_log_probs() const { return log_probs_; }

  /// S-sized row of item_log_probs() for one item.
  std::span<const double> ItemRow(ItemId item) const {
    return std::span<const double>(
        log_probs_.data() +
            static_cast<size_t>(item) * static_cast<size_t>(num_levels()),
        static_cast<size_t>(num_levels()));
  }

  /// Per-item difficulty (NaN for items without an estimate).
  const std::vector<double>& difficulty() const {
    return snapshot_.difficulty;
  }

  /// Transition weights for the streaming DP; null when the snapshot was
  /// built without a progression component (free start, zero costs).
  const TransitionWeights* transitions() const {
    return snapshot_.has_transitions ? &snapshot_.transitions : nullptr;
  }

  const ForgettingConfig& forgetting() const {
    return snapshot_.config.forgetting;
  }
  /// log(drop_probability), precomputed for the streaming DP.
  double log_down() const { return log_down_; }

  const std::string& item_name(ItemId item) const {
    return snapshot_.items.name(item);
  }
  const ModelSnapshot& snapshot() const { return snapshot_; }

  /// All items ordered by log P(i | level) descending, ties toward the
  /// smaller id — the ranking RecommendForUpskilling sorts out per call.
  std::span<const ItemId> RankedItems(int level) const;

  /// Difficulty-windowed recommendation for a user currently at
  /// `current_level`: walks RankedItems at the target level (next level
  /// when `options.rank_by_next_level`, clamped to S) and keeps the first
  /// `options.max_results` items whose difficulty lies in
  /// (current_level, current_level + stretch]; NaN difficulties are
  /// skipped. Returns the same items in the same order as
  /// RecommendForUpskilling with exclude_tried=false for a user whose
  /// last assigned level is `current_level`. A user at the top level gets
  /// an empty list (the stretch window is empty), never an error.
  Result<std::vector<UpskillRecommendation>> Recommend(
      int current_level, const UpskillRecommendationOptions& options) const;

 private:
  ServingModel() = default;

  ModelSnapshot snapshot_;
  // [item * S + (level-1)]
  std::vector<double> log_probs_;
  // ranked_[(level-1) * num_items + rank] = item id.
  std::vector<ItemId> ranked_;
  double log_down_ = 0.0;
};

}  // namespace serve
}  // namespace upskill

#endif  // UPSKILL_SERVE_SERVING_MODEL_H_
