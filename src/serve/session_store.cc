#include "serve/session_store.h"

#include <bit>

namespace upskill {
namespace serve {

namespace {
size_t RoundUpToPowerOfTwo(int n) {
  if (n < 1) return 1;
  return std::bit_ceil(static_cast<size_t>(n));
}
}  // namespace

SessionStore::SessionStore(int num_shards)
    : shards_(RoundUpToPowerOfTwo(num_shards)),
      mask_(shards_.size() - 1) {}

bool SessionStore::Lookup(const std::string& user, SessionState* out) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(user);
  if (it == shard.sessions.end()) return false;
  *out = it->second;
  return true;
}

bool SessionStore::Erase(const std::string& user) {
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sessions.erase(user) > 0;
}

size_t SessionStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.sessions.size();
  }
  return total;
}

size_t SessionStore::EvictIdleSessions(int64_t min_last_time) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    evicted += std::erase_if(shard.sessions, [&](const auto& entry) {
      return entry.second.last_time < min_last_time;
    });
  }
  return evicted;
}

void SessionStore::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.sessions.clear();
  }
}

}  // namespace serve
}  // namespace upskill
