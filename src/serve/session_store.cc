#include "serve/session_store.h"

#include <bit>

namespace upskill {
namespace serve {

namespace {
size_t RoundUpToPowerOfTwo(int n) {
  if (n < 1) return 1;
  return std::bit_ceil(static_cast<size_t>(n));
}
}  // namespace

SessionStore::SessionStore(int num_shards)
    : shards_(RoundUpToPowerOfTwo(num_shards)),
      mask_(shards_.size() - 1),
      live_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "upskill_serve_live_sessions")),
      evictions_(obs::MetricsRegistry::Global().GetCounter(
          "upskill_serve_sessions_evicted_total")) {}

SessionStore::~SessionStore() {
  const int64_t remaining = live_.load(std::memory_order_relaxed);
  if (remaining != 0) live_gauge_.Add(static_cast<double>(-remaining));
}

void SessionStore::AddLive(int64_t delta) {
  live_.fetch_add(delta, std::memory_order_relaxed);
  live_gauge_.Add(static_cast<double>(delta));
}

bool SessionStore::Lookup(const std::string& user, SessionState* out) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(user);
  if (it == shard.sessions.end()) return false;
  *out = it->second;
  return true;
}

bool SessionStore::Erase(const std::string& user) {
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool erased = shard.sessions.erase(user) > 0;
  if (erased) AddLive(-1);
  return erased;
}

size_t SessionStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.sessions.size();
  }
  return total;
}

size_t SessionStore::EvictIdleSessions(int64_t min_last_time) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    evicted += std::erase_if(shard.sessions, [&](const auto& entry) {
      return entry.second.last_time < min_last_time;
    });
  }
  if (evicted > 0) {
    AddLive(-static_cast<int64_t>(evicted));
    evictions_.Increment(evicted);
  }
  return evicted;
}

std::vector<uint64_t> SessionStore::LevelCounts(int num_levels) const {
  if (num_levels < 0) num_levels = 0;
  std::vector<uint64_t> counts(static_cast<size_t>(num_levels) + 1, 0);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& entry : shard.sessions) {
      int level = entry.second.actions == 0 ? 0 : entry.second.level;
      if (level < 0) level = 0;
      if (level > num_levels) level = num_levels;
      ++counts[static_cast<size_t>(level)];
    }
  }
  return counts;
}

void SessionStore::Clear() {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped += shard.sessions.size();
    shard.sessions.clear();
  }
  if (dropped > 0) AddLive(-static_cast<int64_t>(dropped));
}

}  // namespace serve
}  // namespace upskill
