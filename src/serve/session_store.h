#ifndef UPSKILL_SERVE_SESSION_STORE_H_
#define UPSKILL_SERVE_SESSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace upskill {
namespace serve {

/// Live state of one user's session: the rolling S-sized forward column
/// of the monotone assignment DP (Equation 4) plus the bookkeeping the
/// streaming update needs. The column is the *entire* memory of the
/// user's history the DP requires — O(S) per user regardless of how many
/// actions have been observed — and its argmax (ties to the lowest level)
/// is provably the tail level of re-running the batch DP on the full
/// history (see DESIGN.md, "Streaming skill inference").
struct SessionState {
  /// Forward DP column, one entry per level; empty until the first
  /// observation.
  std::vector<double> column;
  /// Scratch for the ping-pong step (avoids per-request allocation).
  std::vector<double> next_column;
  /// Quantized twin of `column` in int16 accumulator units (see
  /// serve/quantized_model.h); maintained instead of the double column
  /// when the server runs in quantized mode, so each observation touches
  /// S int16 lanes. Carried across snapshot swaps exactly like `column`
  /// (the accumulator scale is model-independent); reset only when S
  /// changes.
  std::vector<int16_t> qcolumn;
  /// Ping-pong scratch for the quantized step.
  std::vector<int16_t> qnext_column;
  /// Timestamp of the most recent observation (drives forgetting gaps).
  int64_t last_time = 0;
  /// Observations folded into the column so far.
  uint64_t actions = 0;
  /// Cached MonotoneForwardLevel(column); 0 before any observation.
  int level = 0;
};

/// Sharded map of user key -> SessionState guarded by striped mutexes:
/// the key hashes to one of `num_shards` shards, each an independent
/// mutex + hash map, so concurrent requests for different users contend
/// only when they collide on a shard. This is the one mutable, shared
/// data structure in the serving layer — everything else is immutable
/// snapshots — and the piece the ThreadSanitizer suite exercises hardest.
class SessionStore {
 public:
  /// `num_shards` is rounded up to a power of two (minimum 1).
  explicit SessionStore(int num_shards = 64);
  ~SessionStore();

  /// Runs `fn` on the (created-if-absent) session for `user`, holding the
  /// shard lock for the duration. Keep `fn` short: it serializes every
  /// session on the same shard.
  template <typename Fn>
  void WithSession(const std::string& user, Fn&& fn) {
    Shard& shard = ShardFor(user);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.sessions.try_emplace(user);
    if (inserted) AddLive(1);
    fn(it->second);
  }

  /// Copies the session for `user` into `out`; false when absent.
  bool Lookup(const std::string& user, SessionState* out) const;

  /// Removes the session for `user`; false when absent.
  bool Erase(const std::string& user);

  /// Total live sessions (takes every shard lock; O(shards)).
  size_t size() const;

  /// Drops every session whose last observation is strictly older than
  /// `min_last_time` (sessions with no observation yet have last_time 0
  /// and are evicted by any positive threshold). Returns the number of
  /// sessions removed. Locks one shard at a time, so it can run
  /// concurrently with live traffic; a session observed while its shard
  /// is still pending eviction is judged by its fresh timestamp.
  size_t EvictIdleSessions(int64_t min_last_time);

  /// Histogram of live sessions by current level: out[s] = sessions at
  /// level s, for s in [0, num_levels] (level 0 = no successful
  /// observation yet); sessions reporting a level above `num_levels`
  /// (stale vs. a smaller swapped-in model) are clamped into the top
  /// bin. Locks one shard at a time, so it can run against live traffic;
  /// the result is a consistent-per-shard estimate, which is all the
  /// model-health gauges need.
  std::vector<uint64_t> LevelCounts(int num_levels) const;

  /// Drops every session (e.g. after a snapshot swap changed S).
  void Clear();

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, SessionState> sessions;
  };

  /// Adjusts the store's live-session count and the process-wide
  /// `upskill_serve_live_sessions` gauge by `delta`. The gauge is
  /// delta-maintained, so it totals across every live store; each store
  /// retires its remaining sessions on destruction.
  void AddLive(int64_t delta);

  Shard& ShardFor(const std::string& user) {
    return shards_[std::hash<std::string>{}(user)&mask_];
  }
  const Shard& ShardFor(const std::string& user) const {
    return shards_[std::hash<std::string>{}(user)&mask_];
  }

  // unique_ptr-free fixed array: shards are neither copyable nor movable
  // (mutex), so the vector is sized once in the constructor.
  std::vector<Shard> shards_;
  size_t mask_ = 0;
  // This store's share of the live-session gauge (subtracted on
  // destruction so dead stores don't leak gauge mass).
  std::atomic<int64_t> live_{0};
  obs::Gauge& live_gauge_;
  obs::Counter& evictions_;
};

}  // namespace serve
}  // namespace upskill

#endif  // UPSKILL_SERVE_SESSION_STORE_H_
