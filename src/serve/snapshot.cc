#include "serve/snapshot.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "data/schema_io.h"

namespace upskill {
namespace serve {

uint32_t Crc32(const void* data, size_t size) {
  return ::upskill::Crc32(data, size);
}

namespace {

// Fixed-size header preceding the payload.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;  // zero; room for future flags
  uint64_t payload_size;
  uint32_t payload_crc;
};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8 + 4;



void WriteConfig(const SkillModelConfig& config, ByteWriter* out) {
  // Only the fields that define model *semantics* are persisted; trainer
  // knobs (iterations, tolerances, parallelism) are not part of a model.
  out->I32(config.num_levels);
  out->F64(config.smoothing);
  out->I32(static_cast<int32_t>(config.transitions));
  out->I32(config.num_progression_classes);
  out->U8(config.forgetting.enabled ? 1 : 0);
  out->I64(config.forgetting.gap_threshold);
  out->F64(config.forgetting.drop_probability);
}

bool ReadConfig(ByteReader* in, SkillModelConfig* config) {
  int32_t transitions = 0;
  uint8_t forgetting = 0;
  if (!in->I32(&config->num_levels) || !in->F64(&config->smoothing) ||
      !in->I32(&transitions) || !in->I32(&config->num_progression_classes) ||
      !in->U8(&forgetting) || !in->I64(&config->forgetting.gap_threshold) ||
      !in->F64(&config->forgetting.drop_probability)) {
    return false;
  }
  if (transitions < 0 ||
      transitions > static_cast<int32_t>(TransitionModel::kPerClass)) {
    return false;
  }
  config->transitions = static_cast<TransitionModel>(transitions);
  config->forgetting.enabled = forgetting != 0;
  return true;
}

void WriteSchema(const FeatureSchema& schema, ByteWriter* out) {
  SerializeSchema(schema, out);
}

Result<FeatureSchema> ReadSchema(ByteReader* in) {
  Result<FeatureSchema> schema = DeserializeSchema(in);
  if (!schema.ok()) {
    return Status::Corruption("snapshot " + schema.status().message());
  }
  return schema;
}

}  // namespace

Result<ModelSnapshot> MakeSnapshot(const SkillModel& model,
                                   const ItemTable& items,
                                   std::vector<double> difficulty,
                                   const TransitionWeights* transitions) {
  if (static_cast<int>(difficulty.size()) != items.num_items()) {
    return Status::InvalidArgument(StringPrintf(
        "difficulty has %zu entries for %d items", difficulty.size(),
        items.num_items()));
  }
  if (transitions != nullptr && !transitions->log_initial.empty() &&
      static_cast<int>(transitions->log_initial.size()) !=
          model.num_levels()) {
    return Status::InvalidArgument("transition weights level mismatch");
  }
  ModelSnapshot snapshot;
  snapshot.config = model.config();
  snapshot.schema = model.schema();
  snapshot.model = model;
  snapshot.items = items;
  snapshot.difficulty = std::move(difficulty);
  if (transitions != nullptr) {
    snapshot.has_transitions = true;
    snapshot.transitions = *transitions;
  }
  return snapshot;
}

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  const int levels = snapshot.config.num_levels;
  const int features = snapshot.schema.num_features();
  const int num_items = snapshot.items.num_items();
  if (snapshot.model.num_levels() != levels ||
      snapshot.model.num_features() != features) {
    return Status::InvalidArgument("snapshot model/config shape mismatch");
  }
  if (static_cast<int>(snapshot.difficulty.size()) != num_items) {
    return Status::InvalidArgument("snapshot difficulty size mismatch");
  }

  ByteWriter payload;
  WriteConfig(snapshot.config, &payload);
  WriteSchema(snapshot.schema, &payload);
  for (int f = 0; f < features; ++f) {
    for (int s = 1; s <= levels; ++s) {
      payload.VecF64(snapshot.model.component(f, s).Parameters());
    }
  }
  payload.U8(snapshot.has_transitions ? 1 : 0);
  if (snapshot.has_transitions) {
    payload.VecF64(snapshot.transitions.log_initial);
    payload.F64(snapshot.transitions.log_stay);
    payload.F64(snapshot.transitions.log_up);
  }
  payload.I32(num_items);
  for (int f = 0; f < features; ++f) {
    const std::span<const double> column = snapshot.items.column(f);
    for (double v : column) payload.F64(v);
  }
  bool any_name = false;
  for (ItemId i = 0; i < num_items; ++i) {
    any_name = any_name || !snapshot.items.name(i).empty();
  }
  payload.U8(any_name ? 1 : 0);
  if (any_name) {
    for (ItemId i = 0; i < num_items; ++i) payload.Str(snapshot.items.name(i));
  }
  payload.VecF64(snapshot.difficulty);

  SnapshotHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof header.magic);
  header.version = kSnapshotVersion;
  header.reserved = 0;
  header.payload_size = payload.buffer().size();
  header.payload_crc =
      Crc32(payload.buffer().data(), payload.buffer().size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(header.magic, sizeof header.magic);
  out.write(reinterpret_cast<const char*>(&header.version),
            sizeof header.version);
  out.write(reinterpret_cast<const char*>(&header.reserved),
            sizeof header.reserved);
  out.write(reinterpret_cast<const char*>(&header.payload_size),
            sizeof header.payload_size);
  out.write(reinterpret_cast<const char*>(&header.payload_crc),
            sizeof header.payload_crc);
  out.write(payload.buffer().data(),
            static_cast<std::streamsize>(payload.buffer().size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ModelSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("snapshot shorter than header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    return Status::Corruption("not a snapshot file (bad magic)");
  }
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof version);
  std::memcpy(&payload_size, bytes.data() + 16, sizeof payload_size);
  std::memcpy(&payload_crc, bytes.data() + 24, sizeof payload_crc);
  if (version != kSnapshotVersion) {
    return Status::Corruption(
        StringPrintf("unsupported snapshot version %u", version));
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return Status::Corruption(StringPrintf(
        "snapshot truncated: header claims %llu payload bytes, file has %zu",
        static_cast<unsigned long long>(payload_size),
        bytes.size() - kHeaderSize));
  }
  const char* payload = bytes.data() + kHeaderSize;
  if (Crc32(payload, payload_size) != payload_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }

  ByteReader reader(payload, payload_size);
  ModelSnapshot snapshot;
  if (!ReadConfig(&reader, &snapshot.config)) {
    return Status::Corruption("snapshot config section");
  }
  Result<FeatureSchema> schema = ReadSchema(&reader);
  if (!schema.ok()) return schema.status();
  snapshot.schema = std::move(schema).value();

  Result<SkillModel> model =
      SkillModel::Create(snapshot.schema, snapshot.config);
  if (!model.ok()) return model.status();
  snapshot.model = std::move(model).value();
  for (int f = 0; f < snapshot.schema.num_features(); ++f) {
    for (int s = 1; s <= snapshot.config.num_levels; ++s) {
      std::vector<double> params;
      if (!reader.VecF64(&params)) {
        return Status::Corruption(
            StringPrintf("snapshot component (%d, %d)", f, s));
      }
      UPSKILL_RETURN_IF_ERROR(
          snapshot.model.mutable_component(f, s)->SetParameters(params));
    }
  }

  uint8_t has_transitions = 0;
  if (!reader.U8(&has_transitions)) {
    return Status::Corruption("snapshot transitions section");
  }
  snapshot.has_transitions = has_transitions != 0;
  if (snapshot.has_transitions) {
    if (!reader.VecF64(&snapshot.transitions.log_initial) ||
        !reader.F64(&snapshot.transitions.log_stay) ||
        !reader.F64(&snapshot.transitions.log_up)) {
      return Status::Corruption("snapshot transitions section");
    }
    if (!snapshot.transitions.log_initial.empty() &&
        static_cast<int>(snapshot.transitions.log_initial.size()) !=
            snapshot.config.num_levels) {
      return Status::Corruption("snapshot transition weights level mismatch");
    }
  }

  int32_t num_items = 0;
  if (!reader.I32(&num_items) || num_items < 0) {
    return Status::Corruption("snapshot item section");
  }
  const int features = snapshot.schema.num_features();
  std::vector<std::vector<double>> columns(
      static_cast<size_t>(features),
      std::vector<double>(static_cast<size_t>(num_items)));
  for (int f = 0; f < features; ++f) {
    if (!reader.Doubles(columns[static_cast<size_t>(f)])) {
      return Status::Corruption(StringPrintf("snapshot item column %d", f));
    }
  }
  uint8_t has_names = 0;
  if (!reader.U8(&has_names)) {
    return Status::Corruption("snapshot item names section");
  }
  std::vector<std::string> names(static_cast<size_t>(num_items));
  if (has_names != 0) {
    for (std::string& name : names) {
      if (!reader.Str(&name)) {
        return Status::Corruption("snapshot item names section");
      }
    }
  }
  snapshot.items = ItemTable(snapshot.schema);
  std::vector<double> row(static_cast<size_t>(features));
  for (int32_t i = 0; i < num_items; ++i) {
    for (int f = 0; f < features; ++f) {
      row[static_cast<size_t>(f)] =
          columns[static_cast<size_t>(f)][static_cast<size_t>(i)];
    }
    Result<ItemId> added =
        snapshot.items.AddItem(row, std::move(names[static_cast<size_t>(i)]));
    if (!added.ok()) return added.status();
  }

  if (!reader.VecF64(&snapshot.difficulty)) {
    return Status::Corruption("snapshot difficulty section");
  }
  if (static_cast<int>(snapshot.difficulty.size()) != num_items) {
    return Status::Corruption("snapshot difficulty size mismatch");
  }
  if (!reader.exhausted()) {
    return Status::Corruption("snapshot has trailing bytes");
  }
  return snapshot;
}

}  // namespace serve
}  // namespace upskill
