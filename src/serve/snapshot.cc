#include "serve/snapshot.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/string_util.h"

namespace upskill {
namespace serve {

// The format commits to little-endian on-disk layout; raw memcpy of host
// integers/doubles is only correct on little-endian hosts (every platform
// this library targets). A big-endian port would add byte swaps here.
static_assert(std::endian::native == std::endian::little,
              "snapshot serialization assumes a little-endian host");

uint32_t Crc32(const void* data, size_t size) {
  // Standard reflected CRC-32 (IEEE 802.3), nibble-table variant: small
  // enough to build at first use, fast enough for multi-megabyte payloads.
  static const uint32_t kTable[16] = {
      0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac,
      0x76dc4190, 0x6b6b51f4, 0x4db26158, 0x5005713c,
      0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
      0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    crc = (crc >> 4) ^ kTable[crc & 0xf];
    crc = (crc >> 4) ^ kTable[crc & 0xf];
  }
  return crc ^ 0xffffffffu;
}

namespace {

// Fixed-size header preceding the payload.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;  // zero; room for future flags
  uint64_t payload_size;
  uint32_t payload_crc;
};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8 + 4;

class ByteWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void I64(int64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void VecF64(const std::vector<double>& v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(double));
  }
  const std::string& buffer() const { return buffer_; }

 private:
  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

// Bounds-checked sequential reader; every getter returns false once the
// payload is exhausted, and the loader converts that into Corruption.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool I32(int32_t* v) { return Raw(v, sizeof *v); }
  bool I64(int64_t* v) { return Raw(v, sizeof *v); }
  bool F64(double* v) { return Raw(v, sizeof *v); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || size_ - pos_ < n) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool VecF64(std::vector<double>* v) {
    uint32_t n = 0;
    if (!U32(&n) || size_ - pos_ < static_cast<size_t>(n) * sizeof(double)) {
      return false;
    }
    v->resize(n);
    std::memcpy(v->data(), data_ + pos_, n * sizeof(double));
    pos_ += static_cast<size_t>(n) * sizeof(double);
    return true;
  }
  bool Doubles(std::span<double> out) {
    return Raw(out.data(), out.size() * sizeof(double));
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Raw(void* out, size_t size) {
    if (size_ - pos_ < size) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void WriteConfig(const SkillModelConfig& config, ByteWriter* out) {
  // Only the fields that define model *semantics* are persisted; trainer
  // knobs (iterations, tolerances, parallelism) are not part of a model.
  out->I32(config.num_levels);
  out->F64(config.smoothing);
  out->I32(static_cast<int32_t>(config.transitions));
  out->I32(config.num_progression_classes);
  out->U8(config.forgetting.enabled ? 1 : 0);
  out->I64(config.forgetting.gap_threshold);
  out->F64(config.forgetting.drop_probability);
}

bool ReadConfig(ByteReader* in, SkillModelConfig* config) {
  int32_t transitions = 0;
  uint8_t forgetting = 0;
  if (!in->I32(&config->num_levels) || !in->F64(&config->smoothing) ||
      !in->I32(&transitions) || !in->I32(&config->num_progression_classes) ||
      !in->U8(&forgetting) || !in->I64(&config->forgetting.gap_threshold) ||
      !in->F64(&config->forgetting.drop_probability)) {
    return false;
  }
  if (transitions < 0 ||
      transitions > static_cast<int32_t>(TransitionModel::kPerClass)) {
    return false;
  }
  config->transitions = static_cast<TransitionModel>(transitions);
  config->forgetting.enabled = forgetting != 0;
  return true;
}

void WriteSchema(const FeatureSchema& schema, ByteWriter* out) {
  out->I32(schema.num_features());
  out->I32(schema.id_feature());
  for (int f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.feature(f);
    out->Str(spec.name);
    out->U8(static_cast<uint8_t>(spec.type));
    out->U8(static_cast<uint8_t>(spec.distribution));
    out->I32(spec.cardinality);
    out->U32(static_cast<uint32_t>(spec.labels.size()));
    for (const std::string& label : spec.labels) out->Str(label);
  }
}

Result<FeatureSchema> ReadSchema(ByteReader* in) {
  int32_t num_features = 0;
  int32_t id_feature = 0;
  if (!in->I32(&num_features) || !in->I32(&id_feature) || num_features < 0) {
    return Status::Corruption("snapshot schema header");
  }
  FeatureSchema schema;
  for (int32_t f = 0; f < num_features; ++f) {
    std::string name;
    uint8_t type = 0;
    uint8_t distribution = 0;
    int32_t cardinality = 0;
    uint32_t num_labels = 0;
    if (!in->Str(&name) || !in->U8(&type) || !in->U8(&distribution) ||
        !in->I32(&cardinality) || !in->U32(&num_labels)) {
      return Status::Corruption(StringPrintf("snapshot schema feature %d", f));
    }
    std::vector<std::string> labels(num_labels);
    for (std::string& label : labels) {
      if (!in->Str(&label)) {
        return Status::Corruption(
            StringPrintf("snapshot schema labels of feature %d", f));
      }
    }
    Result<int> added = [&]() -> Result<int> {
      if (f == id_feature) return schema.AddIdFeature(cardinality);
      switch (static_cast<FeatureType>(type)) {
        case FeatureType::kCategorical:
          return schema.AddCategorical(std::move(name), cardinality,
                                       std::move(labels));
        case FeatureType::kCount:
          return schema.AddCount(std::move(name));
        case FeatureType::kReal:
          return schema.AddReal(std::move(name),
                                static_cast<DistributionKind>(distribution));
      }
      return Status::Corruption("snapshot schema feature type");
    }();
    if (!added.ok()) return added.status();
  }
  return schema;
}

}  // namespace

Result<ModelSnapshot> MakeSnapshot(const SkillModel& model,
                                   const ItemTable& items,
                                   std::vector<double> difficulty,
                                   const TransitionWeights* transitions) {
  if (static_cast<int>(difficulty.size()) != items.num_items()) {
    return Status::InvalidArgument(StringPrintf(
        "difficulty has %zu entries for %d items", difficulty.size(),
        items.num_items()));
  }
  if (transitions != nullptr && !transitions->log_initial.empty() &&
      static_cast<int>(transitions->log_initial.size()) !=
          model.num_levels()) {
    return Status::InvalidArgument("transition weights level mismatch");
  }
  ModelSnapshot snapshot;
  snapshot.config = model.config();
  snapshot.schema = model.schema();
  snapshot.model = model;
  snapshot.items = items;
  snapshot.difficulty = std::move(difficulty);
  if (transitions != nullptr) {
    snapshot.has_transitions = true;
    snapshot.transitions = *transitions;
  }
  return snapshot;
}

Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path) {
  const int levels = snapshot.config.num_levels;
  const int features = snapshot.schema.num_features();
  const int num_items = snapshot.items.num_items();
  if (snapshot.model.num_levels() != levels ||
      snapshot.model.num_features() != features) {
    return Status::InvalidArgument("snapshot model/config shape mismatch");
  }
  if (static_cast<int>(snapshot.difficulty.size()) != num_items) {
    return Status::InvalidArgument("snapshot difficulty size mismatch");
  }

  ByteWriter payload;
  WriteConfig(snapshot.config, &payload);
  WriteSchema(snapshot.schema, &payload);
  for (int f = 0; f < features; ++f) {
    for (int s = 1; s <= levels; ++s) {
      payload.VecF64(snapshot.model.component(f, s).Parameters());
    }
  }
  payload.U8(snapshot.has_transitions ? 1 : 0);
  if (snapshot.has_transitions) {
    payload.VecF64(snapshot.transitions.log_initial);
    payload.F64(snapshot.transitions.log_stay);
    payload.F64(snapshot.transitions.log_up);
  }
  payload.I32(num_items);
  for (int f = 0; f < features; ++f) {
    const std::span<const double> column = snapshot.items.column(f);
    for (double v : column) payload.F64(v);
  }
  bool any_name = false;
  for (ItemId i = 0; i < num_items; ++i) {
    any_name = any_name || !snapshot.items.name(i).empty();
  }
  payload.U8(any_name ? 1 : 0);
  if (any_name) {
    for (ItemId i = 0; i < num_items; ++i) payload.Str(snapshot.items.name(i));
  }
  payload.VecF64(snapshot.difficulty);

  SnapshotHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof header.magic);
  header.version = kSnapshotVersion;
  header.reserved = 0;
  header.payload_size = payload.buffer().size();
  header.payload_crc =
      Crc32(payload.buffer().data(), payload.buffer().size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(header.magic, sizeof header.magic);
  out.write(reinterpret_cast<const char*>(&header.version),
            sizeof header.version);
  out.write(reinterpret_cast<const char*>(&header.reserved),
            sizeof header.reserved);
  out.write(reinterpret_cast<const char*>(&header.payload_size),
            sizeof header.payload_size);
  out.write(reinterpret_cast<const char*>(&header.payload_crc),
            sizeof header.payload_crc);
  out.write(payload.buffer().data(),
            static_cast<std::streamsize>(payload.buffer().size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ModelSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("snapshot shorter than header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    return Status::Corruption("not a snapshot file (bad magic)");
  }
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof version);
  std::memcpy(&payload_size, bytes.data() + 16, sizeof payload_size);
  std::memcpy(&payload_crc, bytes.data() + 24, sizeof payload_crc);
  if (version != kSnapshotVersion) {
    return Status::Corruption(
        StringPrintf("unsupported snapshot version %u", version));
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return Status::Corruption(StringPrintf(
        "snapshot truncated: header claims %llu payload bytes, file has %zu",
        static_cast<unsigned long long>(payload_size),
        bytes.size() - kHeaderSize));
  }
  const char* payload = bytes.data() + kHeaderSize;
  if (Crc32(payload, payload_size) != payload_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }

  ByteReader reader(payload, payload_size);
  ModelSnapshot snapshot;
  if (!ReadConfig(&reader, &snapshot.config)) {
    return Status::Corruption("snapshot config section");
  }
  Result<FeatureSchema> schema = ReadSchema(&reader);
  if (!schema.ok()) return schema.status();
  snapshot.schema = std::move(schema).value();

  Result<SkillModel> model =
      SkillModel::Create(snapshot.schema, snapshot.config);
  if (!model.ok()) return model.status();
  snapshot.model = std::move(model).value();
  for (int f = 0; f < snapshot.schema.num_features(); ++f) {
    for (int s = 1; s <= snapshot.config.num_levels; ++s) {
      std::vector<double> params;
      if (!reader.VecF64(&params)) {
        return Status::Corruption(
            StringPrintf("snapshot component (%d, %d)", f, s));
      }
      UPSKILL_RETURN_IF_ERROR(
          snapshot.model.mutable_component(f, s)->SetParameters(params));
    }
  }

  uint8_t has_transitions = 0;
  if (!reader.U8(&has_transitions)) {
    return Status::Corruption("snapshot transitions section");
  }
  snapshot.has_transitions = has_transitions != 0;
  if (snapshot.has_transitions) {
    if (!reader.VecF64(&snapshot.transitions.log_initial) ||
        !reader.F64(&snapshot.transitions.log_stay) ||
        !reader.F64(&snapshot.transitions.log_up)) {
      return Status::Corruption("snapshot transitions section");
    }
    if (!snapshot.transitions.log_initial.empty() &&
        static_cast<int>(snapshot.transitions.log_initial.size()) !=
            snapshot.config.num_levels) {
      return Status::Corruption("snapshot transition weights level mismatch");
    }
  }

  int32_t num_items = 0;
  if (!reader.I32(&num_items) || num_items < 0) {
    return Status::Corruption("snapshot item section");
  }
  const int features = snapshot.schema.num_features();
  std::vector<std::vector<double>> columns(
      static_cast<size_t>(features),
      std::vector<double>(static_cast<size_t>(num_items)));
  for (int f = 0; f < features; ++f) {
    if (!reader.Doubles(columns[static_cast<size_t>(f)])) {
      return Status::Corruption(StringPrintf("snapshot item column %d", f));
    }
  }
  uint8_t has_names = 0;
  if (!reader.U8(&has_names)) {
    return Status::Corruption("snapshot item names section");
  }
  std::vector<std::string> names(static_cast<size_t>(num_items));
  if (has_names != 0) {
    for (std::string& name : names) {
      if (!reader.Str(&name)) {
        return Status::Corruption("snapshot item names section");
      }
    }
  }
  snapshot.items = ItemTable(snapshot.schema);
  std::vector<double> row(static_cast<size_t>(features));
  for (int32_t i = 0; i < num_items; ++i) {
    for (int f = 0; f < features; ++f) {
      row[static_cast<size_t>(f)] =
          columns[static_cast<size_t>(f)][static_cast<size_t>(i)];
    }
    Result<ItemId> added =
        snapshot.items.AddItem(row, std::move(names[static_cast<size_t>(i)]));
    if (!added.ok()) return added.status();
  }

  if (!reader.VecF64(&snapshot.difficulty)) {
    return Status::Corruption("snapshot difficulty section");
  }
  if (static_cast<int>(snapshot.difficulty.size()) != num_items) {
    return Status::Corruption("snapshot difficulty size mismatch");
  }
  if (!reader.exhausted()) {
    return Status::Corruption("snapshot has trailing bytes");
  }
  return snapshot;
}

}  // namespace serve
}  // namespace upskill
