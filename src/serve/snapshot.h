#ifndef UPSKILL_SERVE_SNAPSHOT_H_
#define UPSKILL_SERVE_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/skill_model.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace upskill {
namespace serve {

/// Everything the online serving layer needs from a training run, bundled
/// for atomic persistence: the learned model (components + config), the
/// item universe it scores (feature columns + display names — but not
/// metadata columns, which are not part of the generative model), the
/// per-item difficulty table, and the optional global transition weights.
/// The CSV paths (SkillModel::Save, SaveDataset, assignment CSVs) remain
/// the human-readable interchange format; the snapshot is the machine
/// format: one file, versioned, checksummed, and bitwise round-tripping.
struct ModelSnapshot {
  SkillModelConfig config;
  FeatureSchema schema;
  SkillModel model;
  ItemTable items;
  /// One entry per item; NaN marks items with no estimate.
  std::vector<double> difficulty;
  /// Global progression weights (TransitionModel::kGlobal); when
  /// `has_transitions` is false the serving DP runs with a free start and
  /// zero stay/up costs, matching TransitionModel::kNone.
  bool has_transitions = false;
  TransitionWeights transitions;
};

/// Magic bytes at offset 0 of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'U', 'P', 'S', 'K',
                                           'S', 'N', 'A', 'P'};
/// Current format version (see DESIGN.md for the layout).
inline constexpr uint32_t kSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3, reflected) of `data`; the snapshot's integrity
/// check, exposed for tests. Forwards to the shared common/crc32.h
/// implementation (kept here for source compatibility).
uint32_t Crc32(const void* data, size_t size);

/// Writes `snapshot` to `path`: a fixed header (magic, version, payload
/// size, payload CRC-32) followed by the payload. All multi-byte values
/// are little-endian host layout; doubles are written as raw IEEE-754
/// bits, which is what makes LoadSnapshot(SaveSnapshot(x)) bitwise equal
/// to x down to every parameter, difficulty, and feature value.
Status SaveSnapshot(const ModelSnapshot& snapshot, const std::string& path);

/// Reads a snapshot written by SaveSnapshot. Rejects bad magic, unknown
/// versions, payload size mismatches (truncation), checksum mismatches
/// (corruption), and any structurally invalid payload.
Result<ModelSnapshot> LoadSnapshot(const std::string& path);

/// Convenience builder: packages a trained model with its dataset's item
/// table, a difficulty table, and optional transition weights. Validates
/// that `difficulty` covers every item.
Result<ModelSnapshot> MakeSnapshot(const SkillModel& model,
                                   const ItemTable& items,
                                   std::vector<double> difficulty,
                                   const TransitionWeights* transitions =
                                       nullptr);

}  // namespace serve
}  // namespace upskill

#endif  // UPSKILL_SERVE_SNAPSHOT_H_
