#include "simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "simd/kernels_impl.h"

// Dispatchers + scalar reference bodies. Backend coverage:
//
//   kernel                  avx2  neon  (everything else: scalar)
//   LookupLogProbBatch       x          (needs gather)
//   GammaLogProbBatch        x     x
//   LogNormalLogProbBatch    x     x
//   DpRowInterior            x     x
//   DpRowInteriorWithDown    x     x
//   QuantizedForwardStep     x          (the per-action serve hot path)
//   QuantizedForwardInit               (once per session — not hot)
//   QuantizedForwardLevel              (S-element argmax — not hot)
//
// The dispatch check is one predictable branch per kernel call; every
// call amortizes it over a whole batch / DP row.

namespace upskill {
namespace simd {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// The quantized bodies below are built from detail::RowAccUnit (the
// rounded Q15 reconstruction, +2^14 before the arithmetic shift so the
// per-add error is at most half a unit — flips at near-tied levels get
// twice as rare for free), detail::AddSat16, and plain max — each the
// scalar twin of exactly one AVX2 instruction.
using detail::AddSat16;
using detail::RowAccUnit;
using detail::SaturateInt16;

}  // namespace

namespace scalar {

void LookupLogProbBatch(std::span<const double> xs,
                        std::span<const double> table, std::span<double> out,
                        bool* any_table_overflow) {
  const double size_d = static_cast<double>(table.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    // Double-domain validity (NaN fails the trunc compare) so the vector
    // lanes can evaluate the same predicates without integer casts.
    const bool integral = std::trunc(x) == x && x >= 0.0;
    if (integral && x < size_d) {
      out[i] = table[static_cast<size_t>(x)];
    } else {
      out[i] = kNegInf;
      if (integral && any_table_overflow != nullptr) {
        *any_table_overflow = true;
      }
    }
  }
}

void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out) {
  for (size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    out[i] = !(x > 0.0) ? kNegInf
                        : shape_minus_one * log_xs[i] - x / scale -
                              log_gamma_shape - shape_log_scale;
  }
}

void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out) {
  for (size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    if (!(x > 0.0)) {
      out[i] = kNegInf;
      continue;
    }
    const double log_x = log_xs[i];
    const double z = (log_x - mu) / sigma;
    out[i] = -0.5 * z * z - log_x - log_sigma - half_log_two_pi;
  }
}

void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from) {
  for (size_t s = 1; s + 1 < levels; ++s) {
    const double stay = prev[s] + log_stay;
    const double up = prev[s - 1] + log_up;
    const bool up_wins = up > stay;
    curr[s] = (up_wins ? up : stay) + row[s];
    if (from != nullptr) from[s] = static_cast<uint8_t>(up_wins);
  }
}

void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from) {
  for (size_t s = 1; s + 1 < levels; ++s) {
    const double stay = prev[s] + log_stay;
    const double up = prev[s - 1] + log_up;
    const bool up_wins = up > stay;
    double incoming = up_wins ? up : stay;
    uint8_t step = static_cast<uint8_t>(up_wins);
    const double down = prev[s + 1] + log_down;
    const bool down_wins = down > incoming;
    incoming = down_wins ? down : incoming;
    step = down_wins ? 2 : step;
    curr[s] = incoming + row[s];
    if (from != nullptr) from[s] = step;
  }
}

void QuantizedForwardInit(const int16_t* qrow, int16_t row_mult,
                          const int16_t* q_initial, size_t levels,
                          int16_t* column) {
  int32_t max = std::numeric_limits<int32_t>::min();
  for (size_t s = 0; s < levels; ++s) {
    const int32_t v =
        static_cast<int32_t>(RowAccUnit(qrow[s], row_mult)) +
        (q_initial != nullptr ? static_cast<int32_t>(q_initial[s]) : 0);
    max = std::max(max, v);
  }
  for (size_t s = 0; s < levels; ++s) {
    const int32_t v =
        static_cast<int32_t>(RowAccUnit(qrow[s], row_mult)) +
        (q_initial != nullptr ? static_cast<int32_t>(q_initial[s]) : 0);
    column[s] = SaturateInt16(v - max);
  }
}

void QuantizedForwardStep(const int16_t* prev_column, const int16_t* qrow,
                          int16_t row_mult, int16_t q_stay, int16_t q_up,
                          bool allow_down, int16_t q_down, size_t levels,
                          int16_t* next_column) {
  // Integer mirror of MonotoneForwardStep's peeled structure in pure
  // saturating int16 (NNUE-style): max() is exact on ties (same value
  // either way), so no strict-> bookkeeping is needed; the down-edge
  // folds into the same max; staying at the top level is free. Every op
  // here is the scalar twin of one AVX2 instruction (vpaddsw / vpmaxsw /
  // vpmulhrsw / vpsubw), so the backends agree bit for bit. Saturation
  // can only fire on lanes the renormalize already pinned to the -32768
  // rail ("effectively impossible"); lanes near the maximum are exact.
  {
    int16_t incoming =
        levels > 1 ? AddSat16(prev_column[0], q_stay) : prev_column[0];
    if (levels > 1 && allow_down) {
      incoming = std::max(incoming, AddSat16(prev_column[1], q_down));
    }
    next_column[0] = AddSat16(incoming, RowAccUnit(qrow[0], row_mult));
  }
  for (size_t s = 1; s + 1 < levels; ++s) {
    const int16_t stay = AddSat16(prev_column[s], q_stay);
    const int16_t up = AddSat16(prev_column[s - 1], q_up);
    int16_t incoming = std::max(stay, up);
    if (allow_down) {
      incoming = std::max(incoming, AddSat16(prev_column[s + 1], q_down));
    }
    next_column[s] = AddSat16(incoming, RowAccUnit(qrow[s], row_mult));
  }
  if (levels > 1) {
    const size_t s = levels - 1;
    const int16_t stay = prev_column[s];
    const int16_t up = AddSat16(prev_column[s - 1], q_up);
    next_column[s] =
        AddSat16(std::max(stay, up), RowAccUnit(qrow[s], row_mult));
  }
  // Renormalize by the row maximum: with the invariant max(prev) == 0 and
  // all costs <= 0, every lane is in [-32768, 0], so the plain subtract
  // (value - max >= value) cannot overflow.
  int16_t max = next_column[0];
  for (size_t s = 1; s < levels; ++s) max = std::max(max, next_column[s]);
  for (size_t s = 0; s < levels; ++s) {
    next_column[s] = static_cast<int16_t>(next_column[s] - max);
  }
}

int QuantizedForwardLevel(const int16_t* column, size_t levels) {
  size_t level = 0;
  int16_t best = column[0];
  for (size_t s = 1; s < levels; ++s) {
    if (column[s] > best) {
      best = column[s];
      level = s;
    }
  }
  return static_cast<int>(level) + 1;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatchers.
// ---------------------------------------------------------------------------

#if defined(__x86_64__) || defined(_M_X64)
#define UPSKILL_DISPATCH_VECTOR(ns_fn, ...)           \
  do {                                                \
    if (ActiveBackend() == Backend::kAvx2) {          \
      avx2::ns_fn(__VA_ARGS__);                       \
      return;                                         \
    }                                                 \
  } while (0)
#elif defined(__aarch64__)
#define UPSKILL_DISPATCH_VECTOR(ns_fn, ...)           \
  do {                                                \
    if (ActiveBackend() == Backend::kNeon) {          \
      neon::ns_fn(__VA_ARGS__);                       \
      return;                                         \
    }                                                 \
  } while (0)
#else
#define UPSKILL_DISPATCH_VECTOR(ns_fn, ...) \
  do {                                      \
  } while (0)
#endif

void LookupLogProbBatch(std::span<const double> xs,
                        std::span<const double> table, std::span<double> out,
                        bool* any_table_overflow) {
  UPSKILL_CHECK(xs.size() == out.size());
#if defined(__x86_64__) || defined(_M_X64)
  if (ActiveBackend() == Backend::kAvx2) {
    avx2::LookupLogProbBatch(xs, table, out, any_table_overflow);
    return;
  }
#endif
  scalar::LookupLogProbBatch(xs, table, out, any_table_overflow);
}

void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out) {
  UPSKILL_CHECK(xs.size() == out.size());
  UPSKILL_CHECK(xs.size() == log_xs.size());
  UPSKILL_DISPATCH_VECTOR(GammaLogProbBatch, xs, log_xs, shape_minus_one,
                          scale, log_gamma_shape, shape_log_scale, out);
  scalar::GammaLogProbBatch(xs, log_xs, shape_minus_one, scale,
                            log_gamma_shape, shape_log_scale, out);
}

void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out) {
  UPSKILL_CHECK(xs.size() == out.size());
  UPSKILL_CHECK(xs.size() == log_xs.size());
  UPSKILL_DISPATCH_VECTOR(LogNormalLogProbBatch, xs, log_xs, mu, sigma,
                          log_sigma, half_log_two_pi, out);
  scalar::LogNormalLogProbBatch(xs, log_xs, mu, sigma, log_sigma,
                                half_log_two_pi, out);
}

void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from) {
  UPSKILL_DISPATCH_VECTOR(DpRowInterior, prev, row, levels, log_stay, log_up,
                          curr, from);
  scalar::DpRowInterior(prev, row, levels, log_stay, log_up, curr, from);
}

void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from) {
  UPSKILL_DISPATCH_VECTOR(DpRowInteriorWithDown, prev, row, levels, log_stay,
                          log_up, log_down, curr, from);
  scalar::DpRowInteriorWithDown(prev, row, levels, log_stay, log_up, log_down,
                                curr, from);
}

void QuantizedForwardInit(const int16_t* qrow, int16_t row_mult,
                          const int16_t* q_initial, size_t levels,
                          int16_t* column) {
  scalar::QuantizedForwardInit(qrow, row_mult, q_initial, levels, column);
}

void QuantizedForwardStep(const int16_t* prev_column, const int16_t* qrow,
                          int16_t row_mult, int16_t q_stay, int16_t q_up,
                          bool allow_down, int16_t q_down, size_t levels,
                          int16_t* next_column) {
#if defined(__x86_64__) || defined(_M_X64)
  if (ActiveBackend() == Backend::kAvx2) {
    avx2::QuantizedForwardStep(prev_column, qrow, row_mult, q_stay, q_up,
                               allow_down, q_down, levels, next_column);
    return;
  }
#endif
  scalar::QuantizedForwardStep(prev_column, qrow, row_mult, q_stay, q_up,
                               allow_down, q_down, levels, next_column);
}

int QuantizedForwardLevel(const int16_t* column, size_t levels) {
  return scalar::QuantizedForwardLevel(column, levels);
}

#undef UPSKILL_DISPATCH_VECTOR

}  // namespace simd
}  // namespace upskill
