#ifndef UPSKILL_SIMD_KERNELS_H_
#define UPSKILL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "simd/simd.h"

namespace upskill {
namespace simd {

// Dispatched hot-loop kernels. Each function picks the ActiveBackend()
// implementation; the `scalar::` namespace exposes the reference loops
// directly so equivalence tests can compare the dispatched path against
// the fallback bitwise (doubles) / bit-exact (integers) without touching
// the process-wide backend switch.
//
// Bitwise-exactness contract for the double kernels: the vector bodies
// perform exactly the scalar reference's operations (same IEEE adds,
// multiplies, divides, compares and selects, in the same per-element
// order) and never use FMA, so results are bitwise identical on every
// backend. Where a compiler could contract a*b+c into an FMA in ordinary
// code, these kernels are the anchor: the scalar references are written
// so the vector lanes can mirror them operation for operation.

// ---------------------------------------------------------------------------
// Batched log-prob kernels (SoA spans, one call per (feature, level) cell).
// ---------------------------------------------------------------------------

/// Integer-table lookup: out[i] = table[(int)xs[i]] when xs[i] is an exact
/// non-negative integer below table.size(), else -infinity. When
/// `any_table_overflow` is non-null it is set to true if any xs[i] was an
/// exact non-negative integer >= table.size() (those lanes still receive
/// -infinity; the caller patches them — the Poisson kernel recomputes the
/// rare counts beyond its precomputed table). Backs Categorical (table =
/// per-category log-probs) and Poisson (table = precomputed per-count
/// log-probs) batches.
void LookupLogProbBatch(std::span<const double> xs,
                        std::span<const double> table, std::span<double> out,
                        bool* any_table_overflow);

/// Gamma log-density body with the logs precomputed: for each i,
///   out[i] = xs[i] <= 0 ? -inf
///          : ((shape_minus_one * log_xs[i] - xs[i] / scale)
///             - log_gamma_shape) - shape_log_scale
/// log_xs[i] must equal std::log(xs[i]) for every xs[i] > 0 (other lanes
/// are ignored). The expression order matches Gamma::LogProb term for
/// term, so results are bitwise identical to the virtual scalar path.
void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out);

/// LogNormal log-density body with the logs precomputed: for each i,
///   z      = (log_xs[i] - mu) / sigma
///   out[i] = xs[i] <= 0 ? -inf
///          : ((-0.5 * z * z - log_xs[i]) - log_sigma) - half_log_two_pi
void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out);

// ---------------------------------------------------------------------------
// Two-row max-plus DP kernels (vectorized across the level dimension).
// ---------------------------------------------------------------------------

/// Interior of one DP row update (levels s in [1, levels - 1); the caller
/// peels the bottom and top levels, which carry boundary rules):
///   stay     = prev[s] + log_stay
///   up       = prev[s - 1] + log_up
///   up_wins  = up > stay            // strict: ties stay low
///   curr[s]  = (up_wins ? up : stay) + row[s]
///   from[s]  = up_wins ? 1 : 0
/// `from` may be null (streaming forward step — no backtracking).
void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from);

/// Forgetting variant (the down-edge is open for this transition):
///   down      = prev[s + 1] + log_down
///   down_wins = down > (up_wins ? up : stay)   // checked after stay/up
///   curr[s]   = (down_wins ? down : ...) + row[s]
///   from[s]   = down_wins ? 2 : (up_wins ? 1 : 0)
void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from);

// ---------------------------------------------------------------------------
// Quantized serving kernels (int16 column, NNUE-style fixed point).
// ---------------------------------------------------------------------------
// The session column lives in int16 "accumulator units" (a fixed global
// scale of kQuantAccScale units per log-unit — see serve/quantized_model.h).
// Item rows are stored as int16 residuals at a per-item scale; the Q15
// multiplier `row_mult` (in [0, 32767]) converts a stored lane into
// accumulator units, rounding to nearest:
//   row_acc[s] = (int32(qrow[s]) * row_mult + 2^14) >> 15   (arith. shift)
// which is exactly what vpmulhrsw computes for 16 lanes at once (the
// instruction's lone divergence, -32768 * -32768, is unreachable with a
// non-negative multiplier). The whole step stays in *saturating* int16
// arithmetic — adds clamp at the int16 rails like NNUE accumulators — so
// 16 levels move per instruction with no widening. Saturation only ever
// fires on lanes >= 128 nats below the column maximum, which the
// renormalize-and-clamp already pinned to the rail; argmax-relevant
// lanes are computed exactly. Every step renormalizes the column by its
// maximum (a uniform shift, which the argmax/relative DP is invariant
// to; the invariant max(column) == 0 also makes the renorm subtraction
// itself overflow-free), so the column never drifts no matter how long
// the session runs. All arithmetic is integer, so scalar and vector
// backends agree bit for bit.

/// First observation: column[s] = sat16(row_acc[s] + q_initial[s] - max),
/// with q_initial treated as all-zero when empty (free start).
void QuantizedForwardInit(const int16_t* qrow, int16_t row_mult,
                          const int16_t* q_initial, size_t levels,
                          int16_t* column);

/// One streaming step. Mirrors the double forward step's structure:
/// stay/up select via max (exact on ties), optional down-edge folded into
/// the same max, free stay at the top level; then renormalize by the row
/// maximum. `next_column` must not alias `prev_column`. `prev_column`
/// must satisfy the renormalized invariant (all lanes <= 0, maximum 0),
/// which Init and Step both establish.
void QuantizedForwardStep(const int16_t* prev_column, const int16_t* qrow,
                          int16_t row_mult, int16_t q_stay, int16_t q_up,
                          bool allow_down, int16_t q_down, size_t levels,
                          int16_t* next_column);

/// 1-based argmax of the int16 column, ties to the lowest level.
int QuantizedForwardLevel(const int16_t* column, size_t levels);

// ---------------------------------------------------------------------------
// Scalar reference implementations (always available; the dispatchers
// above fall back to these, and tests compare against them directly).
// ---------------------------------------------------------------------------
namespace scalar {

void LookupLogProbBatch(std::span<const double> xs,
                        std::span<const double> table, std::span<double> out,
                        bool* any_table_overflow);
void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out);
void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out);
void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from);
void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from);
void QuantizedForwardInit(const int16_t* qrow, int16_t row_mult,
                          const int16_t* q_initial, size_t levels,
                          int16_t* column);
void QuantizedForwardStep(const int16_t* prev_column, const int16_t* qrow,
                          int16_t row_mult, int16_t q_stay, int16_t q_up,
                          bool allow_down, int16_t q_down, size_t levels,
                          int16_t* next_column);
int QuantizedForwardLevel(const int16_t* column, size_t levels);

}  // namespace scalar

}  // namespace simd
}  // namespace upskill

#endif  // UPSKILL_SIMD_KERNELS_H_
