// AVX2 kernel bodies. This translation unit is compiled with -mavx2 (and
// nothing more — in particular no -mfma, and the project builds with
// -ffp-contract=off) so the vector code below uses exactly the IEEE
// operations of the scalar references: vaddpd/vsubpd/vmulpd/vdivpd are
// element-wise identical to their scalar counterparts, and cmp+blendv
// reproduces `a > b ? a : b` including its NaN behavior (_CMP_GT_OQ is
// false on unordered, like scalar >). kernels.cc only calls in here after
// the runtime cpuid / UPSKILL_FORCE_SCALAR check.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <array>
#include <cstring>
#include <limits>

#include "simd/kernels.h"
#include "simd/kernels_impl.h"

namespace upskill {
namespace simd {
namespace avx2 {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Expands a 4-bit movemask into 4 little-endian bytes of 0/1 so DP
// backpointer flags can be stored with one 32-bit write per vector.
constexpr std::array<uint32_t, 16> kLaneBytes = [] {
  std::array<uint32_t, 16> table{};
  for (int mask = 0; mask < 16; ++mask) {
    uint32_t value = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) value |= 1u << (8 * lane);
    }
    table[static_cast<size_t>(mask)] = value;
  }
  return table;
}();

}  // namespace

void LookupLogProbBatch(std::span<const double> xs,
                        std::span<const double> table, std::span<double> out,
                        bool* any_table_overflow) {
  const size_t n = xs.size();
  const __m256d neg_inf = _mm256_set1_pd(kNegInf);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d size_v = _mm256_set1_pd(static_cast<double>(table.size()));
  __m256d overflow_acc = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs.data() + i);
    const __m256d truncated =
        _mm256_round_pd(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    // NaN fails the EQ compare, so it lands in the invalid (-inf) lanes.
    const __m256d integral = _mm256_and_pd(
        _mm256_cmp_pd(truncated, x, _CMP_EQ_OQ),
        _mm256_cmp_pd(x, zero, _CMP_GE_OQ));
    const __m256d in_range = _mm256_cmp_pd(x, size_v, _CMP_LT_OQ);
    const __m256d valid = _mm256_and_pd(integral, in_range);
    overflow_acc =
        _mm256_or_pd(overflow_acc, _mm256_andnot_pd(in_range, integral));
    // Zero the invalid lanes' indices, and gather under the validity
    // mask (masked-off lanes never touch memory and keep the -inf src).
    const __m256d safe_x = _mm256_and_pd(x, valid);
    const __m128i idx = _mm256_cvttpd_epi32(safe_x);
    _mm256_storeu_pd(out.data() + i, _mm256_mask_i32gather_pd(
                                         neg_inf, table.data(), idx, valid, 8));
  }
  if (any_table_overflow != nullptr && _mm256_movemask_pd(overflow_acc) != 0) {
    *any_table_overflow = true;
  }
  if (i < n) {
    scalar::LookupLogProbBatch(xs.subspan(i), table, out.subspan(i),
                               any_table_overflow);
  }
}

void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out) {
  const size_t n = xs.size();
  const __m256d neg_inf = _mm256_set1_pd(kNegInf);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d sm1_v = _mm256_set1_pd(shape_minus_one);
  const __m256d scale_v = _mm256_set1_pd(scale);
  const __m256d lgs_v = _mm256_set1_pd(log_gamma_shape);
  const __m256d sls_v = _mm256_set1_pd(shape_log_scale);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs.data() + i);
    const __m256d log_x = _mm256_loadu_pd(log_xs.data() + i);
    // sm1 * log(x) - x / scale - log_gamma_shape - shape * log_scale,
    // left to right exactly as in Gamma::LogProbBatch.
    __m256d r = _mm256_sub_pd(_mm256_mul_pd(sm1_v, log_x),
                              _mm256_div_pd(x, scale_v));
    r = _mm256_sub_pd(r, lgs_v);
    r = _mm256_sub_pd(r, sls_v);
    const __m256d positive = _mm256_cmp_pd(x, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(out.data() + i, _mm256_blendv_pd(neg_inf, r, positive));
  }
  if (i < n) {
    scalar::GammaLogProbBatch(xs.subspan(i), log_xs.subspan(i),
                              shape_minus_one, scale, log_gamma_shape,
                              shape_log_scale, out.subspan(i));
  }
}

void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out) {
  const size_t n = xs.size();
  const __m256d neg_inf = _mm256_set1_pd(kNegInf);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d mu_v = _mm256_set1_pd(mu);
  const __m256d sigma_v = _mm256_set1_pd(sigma);
  const __m256d log_sigma_v = _mm256_set1_pd(log_sigma);
  const __m256d hltp_v = _mm256_set1_pd(half_log_two_pi);
  const __m256d neg_half = _mm256_set1_pd(-0.5);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs.data() + i);
    const __m256d log_x = _mm256_loadu_pd(log_xs.data() + i);
    const __m256d z = _mm256_div_pd(_mm256_sub_pd(log_x, mu_v), sigma_v);
    // (-0.5 * z) * z - log_x - log_sigma - half_log_two_pi, matching the
    // scalar association of -0.5 * z * z.
    __m256d r = _mm256_mul_pd(_mm256_mul_pd(neg_half, z), z);
    r = _mm256_sub_pd(r, log_x);
    r = _mm256_sub_pd(r, log_sigma_v);
    r = _mm256_sub_pd(r, hltp_v);
    const __m256d positive = _mm256_cmp_pd(x, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(out.data() + i, _mm256_blendv_pd(neg_inf, r, positive));
  }
  if (i < n) {
    scalar::LogNormalLogProbBatch(xs.subspan(i), log_xs.subspan(i), mu, sigma,
                                  log_sigma, half_log_two_pi, out.subspan(i));
  }
}

void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from) {
  if (levels < 2) return;
  const size_t end = levels - 1;
  const __m256d stay_v = _mm256_set1_pd(log_stay);
  const __m256d up_v = _mm256_set1_pd(log_up);
  size_t s = 1;
  for (; s + 4 <= end; s += 4) {
    const __m256d stay = _mm256_add_pd(_mm256_loadu_pd(prev + s), stay_v);
    const __m256d up = _mm256_add_pd(_mm256_loadu_pd(prev + s - 1), up_v);
    const __m256d up_wins = _mm256_cmp_pd(up, stay, _CMP_GT_OQ);
    const __m256d best = _mm256_blendv_pd(stay, up, up_wins);
    _mm256_storeu_pd(curr + s, _mm256_add_pd(best, _mm256_loadu_pd(row + s)));
    if (from != nullptr) {
      const uint32_t flags =
          kLaneBytes[static_cast<size_t>(_mm256_movemask_pd(up_wins))];
      std::memcpy(from + s, &flags, sizeof(flags));
    }
  }
  for (; s < end; ++s) {
    const double stay = prev[s] + log_stay;
    const double up = prev[s - 1] + log_up;
    const bool up_wins = up > stay;
    curr[s] = (up_wins ? up : stay) + row[s];
    if (from != nullptr) from[s] = static_cast<uint8_t>(up_wins);
  }
}

void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from) {
  if (levels < 2) return;
  const size_t end = levels - 1;
  const __m256d stay_v = _mm256_set1_pd(log_stay);
  const __m256d up_v = _mm256_set1_pd(log_up);
  const __m256d down_v = _mm256_set1_pd(log_down);
  size_t s = 1;
  for (; s + 4 <= end; s += 4) {
    const __m256d stay = _mm256_add_pd(_mm256_loadu_pd(prev + s), stay_v);
    const __m256d up = _mm256_add_pd(_mm256_loadu_pd(prev + s - 1), up_v);
    const __m256d down = _mm256_add_pd(_mm256_loadu_pd(prev + s + 1), down_v);
    const __m256d up_wins = _mm256_cmp_pd(up, stay, _CMP_GT_OQ);
    const __m256d best_su = _mm256_blendv_pd(stay, up, up_wins);
    const __m256d down_wins = _mm256_cmp_pd(down, best_su, _CMP_GT_OQ);
    const __m256d best = _mm256_blendv_pd(best_su, down, down_wins);
    _mm256_storeu_pd(curr + s, _mm256_add_pd(best, _mm256_loadu_pd(row + s)));
    if (from != nullptr) {
      const uint32_t u =
          static_cast<uint32_t>(_mm256_movemask_pd(up_wins)) & 0xFu;
      const uint32_t d =
          static_cast<uint32_t>(_mm256_movemask_pd(down_wins)) & 0xFu;
      // Per-lane byte: down ? 2 : (up ? 1 : 0). Single-bit bytes, so the
      // shifted add can never carry across lanes.
      const uint32_t flags = kLaneBytes[u & ~d] | (kLaneBytes[d] << 1);
      std::memcpy(from + s, &flags, sizeof(flags));
    }
  }
  for (; s < end; ++s) {
    const double stay = prev[s] + log_stay;
    const double up = prev[s - 1] + log_up;
    const bool up_wins = up > stay;
    double incoming = up_wins ? up : stay;
    uint8_t step = static_cast<uint8_t>(up_wins);
    const double down = prev[s + 1] + log_down;
    const bool down_wins = down > incoming;
    incoming = down_wins ? down : incoming;
    step = down_wins ? 2 : step;
    curr[s] = incoming + row[s];
    if (from != nullptr) from[s] = step;
  }
}

namespace {

inline __m256i Load16(const int16_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void Store16(int16_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

inline int16_t HorizontalMax16(__m256i v) {
  __m128i m = _mm_max_epi16(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_max_epi16(m, _mm_unpackhi_epi64(m, m));
  m = _mm_max_epi16(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(0, 0, 0, 1)));
  m = _mm_max_epi16(m, _mm_shufflelo_epi16(m, _MM_SHUFFLE(0, 0, 0, 1)));
  return static_cast<int16_t>(_mm_extract_epi16(m, 0));
}

}  // namespace

namespace {

// Spreads the maximum int16 lane of `v` to every lane: one cross-half
// fold, then three in-lane rotations (alignr works per 128-bit lane,
// which is enough once both halves agree). Keeping the reduction in ymm
// avoids the extract -> scalar -> rebroadcast round trip on the step's
// critical path.
inline __m256i BroadcastMax16(__m256i v) {
  v = _mm256_max_epi16(v, _mm256_permute2x128_si256(v, v, 1));
  v = _mm256_max_epi16(v, _mm256_alignr_epi8(v, v, 8));
  v = _mm256_max_epi16(v, _mm256_alignr_epi8(v, v, 4));
  v = _mm256_max_epi16(v, _mm256_alignr_epi8(v, v, 2));
  return v;
}

// Columns up to this many levels take the register-resident fast path
// below (at most 8 interior blocks incl. the overlapped tail).
constexpr size_t kRegisterPathMaxLevels = 128;

}  // namespace

void QuantizedForwardStep(const int16_t* prev_column, const int16_t* qrow,
                          int16_t row_mult, int16_t q_stay, int16_t q_up,
                          bool allow_down, int16_t q_down, size_t levels,
                          int16_t* next_column) {
  // Register-resident fast path: every interior block's value is held in
  // a ymm register until the column max is known, so the step makes a
  // single pass over memory — compute, reduce, subtract, store — instead
  // of storing unnormalized values and re-walking them to renormalize.
  // The serial step-to-step dependency in streaming serving makes that
  // second memory pass (store -> reload -> subtract -> store) the
  // dominant latency, not instruction throughput. Requires at least one
  // full interior block (levels >= 18) so the overlapped tail is legal,
  // and enough registers to hold the column (levels <= 128); everything
  // else falls through to the general path after this block.
  if (levels >= 18 && levels <= kRegisterPathMaxLevels) {
    const __m256i mult_v = _mm256_set1_epi16(row_mult);
    const __m256i stay_v = _mm256_set1_epi16(q_stay);
    const __m256i up_v = _mm256_set1_epi16(q_up);
    const __m256i down_v = _mm256_set1_epi16(q_down);

    int16_t edge0 = detail::AddSat16(prev_column[0], q_stay);
    if (allow_down) {
      edge0 = std::max(edge0, detail::AddSat16(prev_column[1], q_down));
    }
    edge0 = detail::AddSat16(edge0, detail::RowAccUnit(qrow[0], row_mult));

    const size_t top = levels - 1;
    const int16_t edge_top = detail::AddSat16(
        std::max(prev_column[top],
                 detail::AddSat16(prev_column[top - 1], q_up)),
        detail::RowAccUnit(qrow[top], row_mult));

    __m256i buf[8];
    size_t offs[8];
    size_t nb = 0;
    __m256i vmax = _mm256_set1_epi16(std::max(edge0, edge_top));
    const auto block = [&](size_t at) {
      const __m256i stay =
          _mm256_adds_epi16(Load16(prev_column + at), stay_v);
      const __m256i up =
          _mm256_adds_epi16(Load16(prev_column + at - 1), up_v);
      __m256i incoming = _mm256_max_epi16(stay, up);
      if (allow_down) {
        const __m256i down =
            _mm256_adds_epi16(Load16(prev_column + at + 1), down_v);
        incoming = _mm256_max_epi16(incoming, down);
      }
      const __m256i row_acc = _mm256_mulhrs_epi16(Load16(qrow + at), mult_v);
      const __m256i value = _mm256_adds_epi16(incoming, row_acc);
      buf[nb] = value;
      offs[nb] = at;
      ++nb;
      vmax = _mm256_max_epi16(vmax, value);
    };
    const size_t end = top;
    size_t s = 1;
    for (; s + 16 <= end; s += 16) block(s);
    if (s < end) block(end - 16);

    // Overlapped blocks recompute identical values from prev_column and
    // get the same subtrahend, so their overlapping stores agree.
    const __m256i max_v = BroadcastMax16(vmax);
    for (size_t k = 0; k < nb; ++k) {
      Store16(next_column + offs[k], _mm256_sub_epi16(buf[k], max_v));
    }
    const int16_t smax = static_cast<int16_t>(
        _mm_extract_epi16(_mm256_castsi256_si128(max_v), 0));
    next_column[0] = static_cast<int16_t>(edge0 - smax);
    next_column[top] = static_cast<int16_t>(edge_top - smax);
    return;
  }
  // Pure saturating-int16 arithmetic, 16 levels per instruction:
  // vpaddsw / vpmaxsw / vpmulhrsw are bit-exact twins of the scalar
  // reference's AddSat16 / max / RowAccUnit, so the backends always
  // produce identical columns. The bottom and top lanes carry boundary
  // rules and are peeled; the last partial interior block re-runs 16
  // lanes at an overlapping offset instead of a scalar tail (the step is
  // a pure function of prev_column, so overlapped stores write identical
  // bytes).
  const __m256i mult_v = _mm256_set1_epi16(row_mult);
  const __m256i stay_v = _mm256_set1_epi16(q_stay);
  const __m256i up_v = _mm256_set1_epi16(q_up);
  const __m256i down_v = _mm256_set1_epi16(q_down);

  int16_t smax;
  {
    int16_t incoming = levels > 1 ? detail::AddSat16(prev_column[0], q_stay)
                                  : prev_column[0];
    if (levels > 1 && allow_down) {
      incoming =
          std::max(incoming, detail::AddSat16(prev_column[1], q_down));
    }
    const int16_t value =
        detail::AddSat16(incoming, detail::RowAccUnit(qrow[0], row_mult));
    next_column[0] = value;
    smax = value;
  }

  const size_t end = levels > 0 ? levels - 1 : 0;
  __m256i vmax = _mm256_set1_epi16(-32768);
  const auto block = [&](size_t at) {
    const __m256i stay =
        _mm256_adds_epi16(Load16(prev_column + at), stay_v);
    const __m256i up =
        _mm256_adds_epi16(Load16(prev_column + at - 1), up_v);
    __m256i incoming = _mm256_max_epi16(stay, up);
    if (allow_down) {
      const __m256i down =
          _mm256_adds_epi16(Load16(prev_column + at + 1), down_v);
      incoming = _mm256_max_epi16(incoming, down);
    }
    const __m256i row_acc = _mm256_mulhrs_epi16(Load16(qrow + at), mult_v);
    const __m256i value = _mm256_adds_epi16(incoming, row_acc);
    Store16(next_column + at, value);
    vmax = _mm256_max_epi16(vmax, value);
  };
  size_t s = 1;
  for (; s + 16 <= end; s += 16) block(s);
  if (s < end && end > 16) {
    block(end - 16);
    s = end;
  }
  for (; s < end; ++s) {
    const int16_t stay = detail::AddSat16(prev_column[s], q_stay);
    const int16_t up = detail::AddSat16(prev_column[s - 1], q_up);
    int16_t incoming = std::max(stay, up);
    if (allow_down) {
      incoming =
          std::max(incoming, detail::AddSat16(prev_column[s + 1], q_down));
    }
    const int16_t value =
        detail::AddSat16(incoming, detail::RowAccUnit(qrow[s], row_mult));
    next_column[s] = value;
    smax = std::max(smax, value);
  }
  if (levels > 1) {
    const size_t top = levels - 1;
    const int16_t incoming =
        std::max(prev_column[top], detail::AddSat16(prev_column[top - 1], q_up));
    const int16_t value = detail::AddSat16(
        incoming, detail::RowAccUnit(qrow[top], row_mult));
    next_column[top] = value;
    smax = std::max(smax, value);
  }
  // Interior blocks only run when end > 16; skipping the horizontal
  // reduce otherwise keeps tiny columns (S <= 17) on a short scalar path.
  if (end > 16) smax = std::max(smax, HorizontalMax16(vmax));

  // Renormalize in place. value - max >= value, so the plain subtract
  // cannot overflow; no overlapped block here (the subtraction is not
  // idempotent), the remainder runs scalar.
  const __m256i max_v = _mm256_set1_epi16(smax);
  size_t j = 0;
  for (; j + 16 <= levels; j += 16) {
    Store16(next_column + j, _mm256_sub_epi16(Load16(next_column + j), max_v));
  }
  for (; j < levels; ++j) {
    next_column[j] = static_cast<int16_t>(next_column[j] - smax);
  }
}

}  // namespace avx2
}  // namespace simd
}  // namespace upskill

#endif  // x86-64
