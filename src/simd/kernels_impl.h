#ifndef UPSKILL_SIMD_KERNELS_IMPL_H_
#define UPSKILL_SIMD_KERNELS_IMPL_H_

// Internal: per-backend kernel bodies, shared between the dispatchers in
// kernels.cc and the backend translation units (kernels_avx2.cc is built
// with -mavx2; kernels_neon.cc only has bodies on aarch64). Not every
// backend implements every kernel — the dispatcher falls back to the
// scalar reference for the rest (see kernels.cc for the per-function
// coverage table).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

namespace upskill {
namespace simd {

// Scalar twins of the saturating-int16 instructions the quantized
// kernels are built from, shared between the scalar reference bodies and
// the peeled edge lanes inside the vector backends so every lane —
// vectorized or peeled — runs the exact same arithmetic.
namespace detail {

inline int16_t SaturateInt16(int32_t v) {
  return static_cast<int16_t>(std::clamp(v, -32768, 32767));
}

// vpaddsw.
inline int16_t AddSat16(int16_t a, int16_t b) {
  return SaturateInt16(static_cast<int32_t>(a) + static_cast<int32_t>(b));
}

// vpmulhrsw: (a * b + 2^14) >> 15, round to nearest. With the Q15 row
// multiplier in [0, 32767] the result is in [-32767, 0] and the
// instruction's lone saturation corner (-32768 * -32768) is unreachable,
// so the plain cast matches it bit for bit. C++20 defines >> on
// negatives as arithmetic shift.
inline int16_t RowAccUnit(int16_t qlane, int16_t mult) {
  return static_cast<int16_t>(
      (static_cast<int32_t>(qlane) * mult + (1 << 14)) >> 15);
}

}  // namespace detail

#if defined(__x86_64__) || defined(_M_X64)
namespace avx2 {

void LookupLogProbBatch(std::span<const double> xs,
                        std::span<const double> table, std::span<double> out,
                        bool* any_table_overflow);
void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out);
void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out);
void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from);
void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from);
void QuantizedForwardStep(const int16_t* prev_column, const int16_t* qrow,
                          int16_t row_mult, int16_t q_stay, int16_t q_up,
                          bool allow_down, int16_t q_down, size_t levels,
                          int16_t* next_column);

}  // namespace avx2
#endif  // x86-64

#if defined(__aarch64__)
namespace neon {

void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out);
void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out);
void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from);
void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from);

}  // namespace neon
#endif  // aarch64

}  // namespace simd
}  // namespace upskill

#endif  // UPSKILL_SIMD_KERNELS_IMPL_H_
