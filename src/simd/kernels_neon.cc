// NEON kernel bodies (aarch64, where NEON is baseline — no extra compile
// flags or runtime feature check needed). Two float64 lanes per vector.
// Same exactness contract as the AVX2 TU: plain IEEE add/sub/mul/div plus
// compare-and-select (vcgtq_f64 is false on unordered, like scalar >),
// never FMA, so results are bitwise identical to the scalar references.
// Gather-based and int16 kernels are not implemented here; kernels.cc
// dispatches those to the scalar reference on aarch64.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <limits>

#include "simd/kernels.h"
#include "simd/kernels_impl.h"

namespace upskill {
namespace simd {
namespace neon {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

void GammaLogProbBatch(std::span<const double> xs,
                       std::span<const double> log_xs, double shape_minus_one,
                       double scale, double log_gamma_shape,
                       double shape_log_scale, std::span<double> out) {
  const size_t n = xs.size();
  const float64x2_t neg_inf = vdupq_n_f64(kNegInf);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t sm1_v = vdupq_n_f64(shape_minus_one);
  const float64x2_t scale_v = vdupq_n_f64(scale);
  const float64x2_t lgs_v = vdupq_n_f64(log_gamma_shape);
  const float64x2_t sls_v = vdupq_n_f64(shape_log_scale);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(xs.data() + i);
    const float64x2_t log_x = vld1q_f64(log_xs.data() + i);
    float64x2_t r =
        vsubq_f64(vmulq_f64(sm1_v, log_x), vdivq_f64(x, scale_v));
    r = vsubq_f64(r, lgs_v);
    r = vsubq_f64(r, sls_v);
    const uint64x2_t positive = vcgtq_f64(x, zero);
    vst1q_f64(out.data() + i, vbslq_f64(positive, r, neg_inf));
  }
  if (i < n) {
    scalar::GammaLogProbBatch(xs.subspan(i), log_xs.subspan(i),
                              shape_minus_one, scale, log_gamma_shape,
                              shape_log_scale, out.subspan(i));
  }
}

void LogNormalLogProbBatch(std::span<const double> xs,
                           std::span<const double> log_xs, double mu,
                           double sigma, double log_sigma,
                           double half_log_two_pi, std::span<double> out) {
  const size_t n = xs.size();
  const float64x2_t neg_inf = vdupq_n_f64(kNegInf);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t mu_v = vdupq_n_f64(mu);
  const float64x2_t sigma_v = vdupq_n_f64(sigma);
  const float64x2_t log_sigma_v = vdupq_n_f64(log_sigma);
  const float64x2_t hltp_v = vdupq_n_f64(half_log_two_pi);
  const float64x2_t neg_half = vdupq_n_f64(-0.5);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(xs.data() + i);
    const float64x2_t log_x = vld1q_f64(log_xs.data() + i);
    const float64x2_t z = vdivq_f64(vsubq_f64(log_x, mu_v), sigma_v);
    float64x2_t r = vmulq_f64(vmulq_f64(neg_half, z), z);
    r = vsubq_f64(r, log_x);
    r = vsubq_f64(r, log_sigma_v);
    r = vsubq_f64(r, hltp_v);
    const uint64x2_t positive = vcgtq_f64(x, zero);
    vst1q_f64(out.data() + i, vbslq_f64(positive, r, neg_inf));
  }
  if (i < n) {
    scalar::LogNormalLogProbBatch(xs.subspan(i), log_xs.subspan(i), mu, sigma,
                                  log_sigma, half_log_two_pi, out.subspan(i));
  }
}

void DpRowInterior(const double* prev, const double* row, size_t levels,
                   double log_stay, double log_up, double* curr,
                   uint8_t* from) {
  if (levels < 2) return;
  const size_t end = levels - 1;
  const float64x2_t stay_v = vdupq_n_f64(log_stay);
  const float64x2_t up_v = vdupq_n_f64(log_up);
  size_t s = 1;
  for (; s + 2 <= end; s += 2) {
    const float64x2_t stay = vaddq_f64(vld1q_f64(prev + s), stay_v);
    const float64x2_t up = vaddq_f64(vld1q_f64(prev + s - 1), up_v);
    const uint64x2_t up_wins = vcgtq_f64(up, stay);
    const float64x2_t best = vbslq_f64(up_wins, up, stay);
    vst1q_f64(curr + s, vaddq_f64(best, vld1q_f64(row + s)));
    if (from != nullptr) {
      from[s] = static_cast<uint8_t>(vgetq_lane_u64(up_wins, 0) & 1u);
      from[s + 1] = static_cast<uint8_t>(vgetq_lane_u64(up_wins, 1) & 1u);
    }
  }
  for (; s < end; ++s) {
    const double stay = prev[s] + log_stay;
    const double up = prev[s - 1] + log_up;
    const bool up_wins = up > stay;
    curr[s] = (up_wins ? up : stay) + row[s];
    if (from != nullptr) from[s] = static_cast<uint8_t>(up_wins);
  }
}

void DpRowInteriorWithDown(const double* prev, const double* row,
                           size_t levels, double log_stay, double log_up,
                           double log_down, double* curr, uint8_t* from) {
  if (levels < 2) return;
  const size_t end = levels - 1;
  const float64x2_t stay_v = vdupq_n_f64(log_stay);
  const float64x2_t up_v = vdupq_n_f64(log_up);
  const float64x2_t down_v = vdupq_n_f64(log_down);
  size_t s = 1;
  for (; s + 2 <= end; s += 2) {
    const float64x2_t stay = vaddq_f64(vld1q_f64(prev + s), stay_v);
    const float64x2_t up = vaddq_f64(vld1q_f64(prev + s - 1), up_v);
    const float64x2_t down = vaddq_f64(vld1q_f64(prev + s + 1), down_v);
    const uint64x2_t up_wins = vcgtq_f64(up, stay);
    const float64x2_t best_su = vbslq_f64(up_wins, up, stay);
    const uint64x2_t down_wins = vcgtq_f64(down, best_su);
    const float64x2_t best = vbslq_f64(down_wins, down, best_su);
    vst1q_f64(curr + s, vaddq_f64(best, vld1q_f64(row + s)));
    if (from != nullptr) {
      // down ? 2 : (up ? 1 : 0), per lane.
      const uint64_t u0 = vgetq_lane_u64(up_wins, 0) & 1u;
      const uint64_t u1 = vgetq_lane_u64(up_wins, 1) & 1u;
      const uint64_t d0 = vgetq_lane_u64(down_wins, 0) & 1u;
      const uint64_t d1 = vgetq_lane_u64(down_wins, 1) & 1u;
      from[s] = static_cast<uint8_t>(d0 ? 2u : u0);
      from[s + 1] = static_cast<uint8_t>(d1 ? 2u : u1);
    }
  }
  for (; s < end; ++s) {
    const double stay = prev[s] + log_stay;
    const double up = prev[s - 1] + log_up;
    const bool up_wins = up > stay;
    double incoming = up_wins ? up : stay;
    uint8_t step = static_cast<uint8_t>(up_wins);
    const double down = prev[s + 1] + log_down;
    const bool down_wins = down > incoming;
    incoming = down_wins ? down : incoming;
    step = down_wins ? 2 : step;
    curr[s] = incoming + row[s];
    if (from != nullptr) from[s] = step;
  }
}

}  // namespace neon
}  // namespace simd
}  // namespace upskill

#endif  // aarch64
