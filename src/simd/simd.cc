#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace upskill {
namespace simd {

namespace {

// Best backend this binary was compiled for. The AVX2 kernel bodies live
// in kernels_avx2.cc (built with -mavx2); this TU only decides whether it
// is safe and wanted to call into them.
constexpr Backend CompiledBackend() {
#if defined(__x86_64__) || defined(_M_X64)
  return Backend::kAvx2;
#elif defined(__aarch64__)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

bool EnvForcesScalar() {
  const char* env = std::getenv("UPSKILL_FORCE_SCALAR");
  if (env == nullptr) return false;
  return env[0] != '\0' && std::strcmp(env, "0") != 0;
}

bool CpuSupportsCompiledBackend() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  // NEON is baseline on aarch64; the scalar backend needs nothing.
  return true;
#endif
}

Backend DetectBackend() {
  if (EnvForcesScalar()) return Backend::kScalar;
  if (!CpuSupportsCompiledBackend()) return Backend::kScalar;
  return CompiledBackend();
}

// 0 = undecided, otherwise 1 + static_cast<int>(Backend). Plain atomic:
// racing first calls all compute the same value.
std::atomic<int> g_backend{0};

}  // namespace

Backend ActiveBackend() {
  int state = g_backend.load(std::memory_order_acquire);
  if (state == 0) {
    state = 1 + static_cast<int>(DetectBackend());
    g_backend.store(state, std::memory_order_release);
  }
  return static_cast<Backend>(state - 1);
}

const char* BackendName() {
  switch (ActiveBackend()) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

void ForceScalarForTest(bool force) {
  const Backend backend = force ? Backend::kScalar : DetectBackend();
  g_backend.store(1 + static_cast<int>(backend), std::memory_order_release);
}

}  // namespace simd
}  // namespace upskill
