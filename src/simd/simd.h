#ifndef UPSKILL_SIMD_SIMD_H_
#define UPSKILL_SIMD_SIMD_H_

namespace upskill {
namespace simd {

/// Vector backend driving the hot kernels (batched log-probs, the two-row
/// assignment DP, the streaming forward column, the quantized serving
/// step). The backend is picked once per process:
///
///   compile time  — kAvx2 on x86-64 (the AVX2 bodies live in a dedicated
///                   translation unit built with -mavx2), kNeon on
///                   aarch64, kScalar everywhere else;
///   run time      — demoted to kScalar when the CPU lacks the compiled
///                   instruction set (cpuid / baseline check) or when the
///                   UPSKILL_FORCE_SCALAR environment variable is set to
///                   anything but "" or "0" (the kill switch CI uses to
///                   keep the fallback path green).
///
/// Every dispatched kernel is bitwise identical across backends for the
/// double kernels and bit-exact (integer arithmetic) for the quantized
/// ones, so the choice can never change results — only speed. That is
/// what lets tests sweep backends and compare with operator==.
enum class Backend {
  kScalar,
  kAvx2,
  kNeon,
};

/// The backend every dispatched kernel uses right now.
Backend ActiveBackend();

/// Stable lowercase name of ActiveBackend(): "scalar", "avx2", "neon".
const char* BackendName();

/// True when ActiveBackend() != kScalar.
inline bool VectorEnabled() { return ActiveBackend() != Backend::kScalar; }

/// Test/bench hook: forces the scalar fallback on (true) or restores the
/// detected backend (false), overriding UPSKILL_FORCE_SCALAR. Affects
/// subsequent kernel dispatches process-wide; not for production code.
void ForceScalarForTest(bool force);

}  // namespace simd
}  // namespace upskill

#endif  // UPSKILL_SIMD_SIMD_H_
