#include "store/compact.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/ingest_log.h"
#include "store/store_writer.h"

namespace upskill {
namespace store {

Result<CompactStats> CompactStore(const std::string& base_path,
                                  const std::string& log_path,
                                  const std::string& out_path,
                                  const StoreReader::Options& options) {
  obs::Span span("store/compact");
  Result<StoreReader> base = StoreReader::Open(base_path, options);
  if (!base.ok()) return base.status();
  Result<Dataset> mapped = base.value().MapDataset();
  if (!mapped.ok()) return mapped.status();
  const Dataset& dataset = mapped.value();

  CompactStats stats;
  stats.base_users = static_cast<uint64_t>(dataset.num_users());
  stats.base_actions = dataset.num_actions();

  // Gather the log grouped by user. The log is the small delta (the base
  // can be far larger than RAM; the log holds since-last-compaction
  // observations), so buffering it is the intended memory profile.
  std::unordered_map<std::string, UserId> user_ids;
  user_ids.reserve(static_cast<size_t>(dataset.num_users()) * 2);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    user_ids.emplace(dataset.user_name(u), u);
  }
  std::vector<std::vector<Action>> pending(
      static_cast<size_t>(dataset.num_users()));
  std::vector<std::string> new_user_names;  // first-appearance order
  std::vector<std::vector<Action>> new_user_actions;
  const int num_items = dataset.items().num_items();
  Result<IngestScan> replayed = ReplayIngestLog(
      log_path, [&](const IngestRecord& record) -> Status {
        if (record.item >= num_items) {
          return Status::OutOfRange(
              StringPrintf("log references item %d, base has %d items",
                           record.item, num_items));
        }
        const auto [it, inserted] = user_ids.emplace(
            record.user, static_cast<UserId>(user_ids.size()));
        if (inserted) {
          new_user_names.push_back(record.user);
          new_user_actions.emplace_back();
        }
        const UserId id = it->second;
        Action action{record.time, record.item, record.rating};
        if (id < dataset.num_users()) {
          pending[static_cast<size_t>(id)].push_back(action);
        } else {
          new_user_actions[static_cast<size_t>(id - dataset.num_users())]
              .push_back(action);
        }
        return Status::OK();
      });
  if (!replayed.ok()) return replayed.status();
  stats.log_records = replayed.value().num_records;
  stats.new_users = new_user_names.size();

  // Stable sort keeps append order among equal-time log actions.
  const auto by_time = [](const Action& a, const Action& b) {
    return a.time < b.time;
  };
  for (std::vector<Action>& actions : pending) {
    std::stable_sort(actions.begin(), actions.end(), by_time);
  }
  for (std::vector<Action>& actions : new_user_actions) {
    std::stable_sort(actions.begin(), actions.end(), by_time);
  }

  Result<std::unique_ptr<StoreWriter>> writer = StoreWriter::Create(out_path);
  if (!writer.ok()) return writer.status();
  StoreWriter& out = *writer.value();
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    UPSKILL_RETURN_IF_ERROR(out.BeginUser(dataset.user_name(u)));
    const std::span<const Action> old_actions = dataset.sequence(u);
    const std::vector<Action>& log_actions = pending[static_cast<size_t>(u)];
    // Two-pointer stable merge: at equal times the base action wins, so
    // replaying the same log twice (or compacting in two steps vs one)
    // yields identical bytes.
    size_t i = 0, j = 0;
    while (i < old_actions.size() || j < log_actions.size()) {
      const bool take_base =
          j >= log_actions.size() ||
          (i < old_actions.size() &&
           old_actions[i].time <= log_actions[j].time);
      const Action& action =
          take_base ? old_actions[i++] : log_actions[j++];
      UPSKILL_RETURN_IF_ERROR(
          out.Append(action.time, action.item, action.rating));
    }
  }
  for (size_t n = 0; n < new_user_names.size(); ++n) {
    UPSKILL_RETURN_IF_ERROR(out.BeginUser(new_user_names[n]));
    for (const Action& action : new_user_actions[n]) {
      UPSKILL_RETURN_IF_ERROR(
          out.Append(action.time, action.item, action.rating));
    }
  }
  UPSKILL_RETURN_IF_ERROR(out.Finish(dataset.items()));
  stats.total_actions = out.num_actions();
  obs::MetricsRegistry::Global()
      .GetCounter("upskill_store_compactions_total")
      .Increment();
  return stats;
}

}  // namespace store
}  // namespace upskill
