#ifndef UPSKILL_STORE_COMPACT_H_
#define UPSKILL_STORE_COMPACT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "store/store_reader.h"

namespace upskill {
namespace store {

struct CompactStats {
  uint64_t base_users = 0;
  uint64_t base_actions = 0;
  uint64_t log_records = 0;
  uint64_t new_users = 0;     // log users unseen in the base
  uint64_t total_actions = 0;  // actions in the compacted output
};

/// Folds the ingest log at `log_path` into the columnar base store at
/// `base_path`, writing a new store to `out_path` (atomically, via the
/// StoreWriter temp-and-rename protocol; `out_path` may equal
/// `base_path` only on filesystems where the source mapping survives the
/// rename, which is true on POSIX — the old mapping keeps the old inode
/// alive).
///
/// Deterministic merge contract (DESIGN.md §10): per user, base actions
/// and log actions are merged by time with a stable rule — at equal
/// times, base actions precede log actions, and log actions keep append
/// order. Users present only in the log are appended after all base
/// users, in order of first appearance in the log. The output is
/// therefore a pure function of (base bytes, log bytes), which is what
/// makes online-EM full replay bitwise reproducible.
///
/// The log's torn tail, if any, is ignored (same rule as recovery): only
/// intact frames are folded in.
Result<CompactStats> CompactStore(const std::string& base_path,
                                  const std::string& log_path,
                                  const std::string& out_path,
                                  const StoreReader::Options& options = {});

}  // namespace store
}  // namespace upskill

#endif  // UPSKILL_STORE_COMPACT_H_
