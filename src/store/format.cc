#include "store/format.h"

namespace upskill {
namespace store {

const char* SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kUserOffsets:
      return "user_offsets";
    case SegmentKind::kActions:
      return "actions";
    case SegmentKind::kUserNames:
      return "user_names";
    case SegmentKind::kSchema:
      return "schema";
    case SegmentKind::kItemColumns:
      return "item_columns";
    case SegmentKind::kItemNames:
      return "item_names";
    case SegmentKind::kItemMetadata:
      return "item_metadata";
  }
  return "unknown";
}

const char* StoreErrorToken(StoreError error) {
  switch (error) {
    case StoreError::kTruncated:
      return "store_truncated";
    case StoreError::kBadMagic:
      return "store_bad_magic";
    case StoreError::kBadVersion:
      return "store_bad_version";
    case StoreError::kHeaderCrc:
      return "store_header_crc";
    case StoreError::kBadSegment:
      return "store_bad_segment";
    case StoreError::kSegmentBounds:
      return "store_segment_bounds";
    case StoreError::kSegmentCrc:
      return "store_segment_crc";
    case StoreError::kBadShape:
      return "store_bad_shape";
    case StoreError::kBadValue:
      return "store_bad_value";
  }
  return "store_error";
}

Status StoreCorruption(StoreError error, const std::string& detail) {
  return Status::Corruption(std::string(StoreErrorToken(error)) + ": " +
                            detail);
}

}  // namespace store
}  // namespace upskill
