#ifndef UPSKILL_STORE_FORMAT_H_
#define UPSKILL_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/status.h"
#include "data/dataset.h"

namespace upskill {
namespace store {

// On-disk layout of a packed dataset (all values little-endian, see
// common/bytes.h; DESIGN.md §10 has the diagram):
//
//   [StoreHeader 64B][SegmentEntry × kNumSegments][segment payloads …]
//
// Segment payloads start 16-byte aligned and appear in the order of the
// directory. The directory is columnar — one contiguous segment per
// column family — while the action segment itself stores fixed-width
// 24-byte records whose layout is bit-identical to the in-memory
// `Action` struct (static_asserts below). That identity is what makes
// the reader zero-copy: `Dataset::sequence()` spans point straight into
// the mapping, and trainer/eval/exec run unmodified on datasets larger
// than RAM.

inline constexpr char kStoreMagic[8] = {'U', 'P', 'S', 'K',
                                        'C', 'O', 'L', '1'};
inline constexpr uint32_t kStoreVersion = 1;
inline constexpr size_t kSegmentAlignment = 16;

/// Segment kinds; exactly one of each per store file.
enum class SegmentKind : uint32_t {
  kUserOffsets = 1,   // (num_users + 1) × u64 prefix offsets into kActions
  kActions = 2,       // num_actions × 24B {i64 time, i32 item, pad, f64 rating}
  kUserNames = 3,     // num_users × (u32 len + bytes)
  kSchema = 4,        // SerializeSchema() bytes (data/schema_io.h)
  kItemColumns = 5,   // num_features × num_items f64, feature-major
  kItemNames = 6,     // num_items × (u32 len + bytes)
  kItemMetadata = 7,  // u32 count, per column: u32 len + key + num_items f64
};
inline constexpr uint32_t kNumSegments = 7;

const char* SegmentKindName(SegmentKind kind);

/// Fixed 64-byte file header. `header_crc` covers the header bytes (with
/// the crc field itself zeroed) followed by the segment directory, so a
/// torn or bit-flipped prologue is detected before any segment is
/// trusted.
struct StoreHeader {
  char magic[8];
  uint32_t version;
  uint32_t num_segments;
  uint64_t file_size;
  uint64_t num_users;
  uint64_t num_actions;
  uint32_t num_items;
  uint32_t num_features;
  uint32_t reserved;  // zero; room for future flags
  uint32_t header_crc;
  uint64_t reserved2;  // zero; pads the header to 64 bytes
};
static_assert(sizeof(StoreHeader) == 64, "header layout drifted");
static_assert(std::is_trivially_copyable_v<StoreHeader>);

/// One directory entry. `crc` is the CRC-32 of the segment payload bytes
/// (alignment padding between segments is not covered — it is required
/// to be zero by the writer but carries no data).
struct SegmentEntry {
  uint32_t kind;
  uint32_t reserved;  // zero
  uint64_t offset;    // from file start; 16-byte aligned
  uint64_t length;    // payload bytes
  uint32_t crc;
  uint32_t reserved2;  // zero
};
static_assert(sizeof(SegmentEntry) == 32, "directory layout drifted");
static_assert(std::is_trivially_copyable_v<SegmentEntry>);

inline constexpr size_t kDirectoryOffset = sizeof(StoreHeader);
inline constexpr size_t kFirstSegmentOffset =
    kDirectoryOffset + kNumSegments * sizeof(SegmentEntry);
static_assert(kFirstSegmentOffset % kSegmentAlignment == 0);

// The zero-copy contract: an action record on disk is byte-identical to
// the in-memory struct. The 4 padding bytes at offset 12 are written as
// zero by the packer so file bytes — and therefore segment CRCs — are a
// pure function of the logical content.
static_assert(sizeof(Action) == 24, "action record layout drifted");
static_assert(std::is_standard_layout_v<Action>);
static_assert(std::is_trivially_copyable_v<Action>);
static_assert(offsetof(Action, time) == 0);
static_assert(offsetof(Action, item) == 8);
static_assert(offsetof(Action, rating) == 16);

/// Distinct machine-parseable corruption classes. Every validation
/// failure in the reader maps to exactly one of these; the token is the
/// first word of the Status message, so scripts (and tests) can match on
/// it without parsing prose.
enum class StoreError {
  kTruncated,      // file shorter than the header/directory promise
  kBadMagic,       // not a store file
  kBadVersion,     // format version this build does not understand
  kHeaderCrc,      // header/directory checksum mismatch
  kBadSegment,     // missing, duplicate, unknown, or misaligned segment
  kSegmentBounds,  // segment offset/length outside the file (or overflow)
  kSegmentCrc,     // segment payload checksum mismatch
  kBadShape,       // segment sizes/contents disagree with the header
  kBadValue,       // decoded values fail domain validation
};

/// Stable token for `error` (e.g. "store_segment_bounds").
const char* StoreErrorToken(StoreError error);

/// Corruption status whose message is "<token>: <detail>".
Status StoreCorruption(StoreError error, const std::string& detail);

}  // namespace store
}  // namespace upskill

#endif  // UPSKILL_STORE_FORMAT_H_
