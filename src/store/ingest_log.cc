#include "store/ingest_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace upskill {
namespace store {
namespace {

constexpr uint32_t kFrameMagic = 0x42535055u;  // "UPSB" little-endian
constexpr size_t kFrameHeaderBytes = 16;
// A single observed action is tiny; anything bigger than this in the
// name-length field means we are reading garbage, not a record.
constexpr uint32_t kMaxUserNameBytes = 4096;
constexpr uint32_t kMaxFramePayloadBytes = 64u << 20;

obs::Counter& AppendCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("upskill_ingest_records_total");
  return counter;
}
obs::Counter& FrameCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("upskill_ingest_frames_total");
  return counter;
}
obs::Counter& FsyncCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("upskill_ingest_fsyncs_total");
  return counter;
}

Status WriteFully(int fd, const char* data, size_t size,
                  const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StringPrintf("write %s: %s", path.c_str(),
                                          std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<IngestLogWriter>> IngestLogWriter::Open(
    const std::string& path, const IngestLogOptions& options) {
  // Never append after a torn tail: recover (truncate) first, so the
  // file is a valid frame sequence before the first new frame lands.
  Result<IngestRecovery> recovered = RecoverIngestLog(path);
  if (!recovered.ok()) return recovered.status();
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  IngestLogOptions sane = options;
  if (sane.batch_records == 0) sane.batch_records = 1;
  if (sane.fsync_batches == 0) sane.fsync_batches = 1;
  return std::unique_ptr<IngestLogWriter>(
      new IngestLogWriter(fd, path, sane));
}

IngestLogWriter::IngestLogWriter(int fd, std::string path,
                                 const IngestLogOptions& options)
    : options_(options), path_(std::move(path)), fd_(fd) {}

IngestLogWriter::~IngestLogWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    (void)FlushLocked();
    (void)::fsync(fd_);
  }
  ::close(fd_);
}

Status IngestLogWriter::Append(const IngestRecord& record) {
  if (record.user.empty() || record.user.size() > kMaxUserNameBytes) {
    return Status::InvalidArgument(
        StringPrintf("user name of %zu bytes", record.user.size()));
  }
  if (record.item < 0) {
    return Status::OutOfRange(StringPrintf("item %d", record.item));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t name_len = static_cast<uint32_t>(record.user.size());
  frame_.append(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  frame_.append(record.user.data(), record.user.size());
  frame_.append(reinterpret_cast<const char*>(&record.time),
                sizeof(record.time));
  frame_.append(reinterpret_cast<const char*>(&record.item),
                sizeof(record.item));
  frame_.append(reinterpret_cast<const char*>(&record.rating),
                sizeof(record.rating));
  ++frame_records_;
  ++appended_;
  AppendCounter().Increment();
  if (frame_records_ >= options_.batch_records) {
    UPSKILL_RETURN_IF_ERROR(FlushLocked());
    if (unsynced_batches_ >= options_.fsync_batches) {
      if (::fsync(fd_) != 0) {
        return Status::IoError(StringPrintf("fsync %s: %s", path_.c_str(),
                                            std::strerror(errno)));
      }
      FsyncCounter().Increment();
      unsynced_batches_ = 0;
    }
  }
  return Status::OK();
}

Status IngestLogWriter::FlushLocked() {
  if (frame_records_ == 0) return Status::OK();
  // One contiguous write per frame: header then payload. O_APPEND makes
  // the write atomic with respect to other appenders of this process
  // (there is only this writer), and a crash mid-write tears at most
  // this frame, which recovery drops.
  std::string out;
  out.reserve(kFrameHeaderBytes + frame_.size());
  const uint32_t payload_bytes = static_cast<uint32_t>(frame_.size());
  const uint32_t crc = Crc32(frame_.data(), frame_.size());
  out.append(reinterpret_cast<const char*>(&kFrameMagic), 4);
  out.append(reinterpret_cast<const char*>(&payload_bytes), 4);
  out.append(reinterpret_cast<const char*>(&frame_records_), 4);
  out.append(reinterpret_cast<const char*>(&crc), 4);
  out.append(frame_);
  UPSKILL_RETURN_IF_ERROR(WriteFully(fd_, out.data(), out.size(), path_));
  frame_.clear();
  frame_records_ = 0;
  ++unsynced_batches_;
  FrameCounter().Increment();
  return Status::OK();
}

Status IngestLogWriter::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return FlushLocked();
}

Status IngestLogWriter::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  UPSKILL_RETURN_IF_ERROR(FlushLocked());
  if (::fsync(fd_) != 0) {
    return Status::IoError(
        StringPrintf("fsync %s: %s", path_.c_str(), std::strerror(errno)));
  }
  FsyncCounter().Increment();
  unsynced_batches_ = 0;
  return Status::OK();
}

uint64_t IngestLogWriter::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

Result<IngestScan> ReplayIngestLog(
    const std::string& path,
    const std::function<Status(const IngestRecord&)>& fn) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return IngestScan{};  // missing == empty log
    return Status::IoError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  IngestScan scan;
  std::string payload;
  IngestRecord record;
  for (;;) {
    // Read one frame; any shortfall or mismatch is a torn tail — stop at
    // the last intact frame, never partway into one.
    char header[kFrameHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    uint32_t magic, payload_bytes, record_count, crc;
    std::memcpy(&magic, header, 4);
    std::memcpy(&payload_bytes, header + 4, 4);
    std::memcpy(&record_count, header + 8, 4);
    std::memcpy(&crc, header + 12, 4);
    if (magic != kFrameMagic || payload_bytes > kMaxFramePayloadBytes) break;
    payload.resize(payload_bytes);
    if (std::fread(payload.data(), 1, payload_bytes, file) != payload_bytes) {
      break;
    }
    if (Crc32(payload.data(), payload.size()) != crc) break;
    // The frame is intact; decode its records. A decode failure here
    // means a corrupt-but-CRC-valid frame — that is real corruption, not
    // a torn tail, but the recovery contract is the same: the log is the
    // prefix up to the last good frame.
    ByteReader in(payload.data(), payload.size());
    std::vector<IngestRecord> records;
    records.reserve(record_count);
    bool frame_ok = true;
    for (uint32_t r = 0; r < record_count; ++r) {
      if (!in.Str(&record.user) || record.user.empty() ||
          record.user.size() > kMaxUserNameBytes || !in.I64(&record.time) ||
          !in.I32(&record.item) || !in.F64(&record.rating) ||
          record.item < 0) {
        frame_ok = false;
        break;
      }
      records.push_back(record);
    }
    if (!frame_ok || !in.exhausted()) break;
    for (const IngestRecord& r : records) {
      const Status status = fn(r);
      if (!status.ok()) {
        std::fclose(file);
        return status;
      }
    }
    scan.valid_bytes += kFrameHeaderBytes + payload_bytes;
    scan.num_batches += 1;
    scan.num_records += record_count;
  }
  std::fclose(file);
  return scan;
}

Result<IngestRecovery> RecoverIngestLog(const std::string& path) {
  Result<IngestScan> scan =
      ReplayIngestLog(path, [](const IngestRecord&) { return Status::OK(); });
  if (!scan.ok()) return scan.status();
  IngestRecovery recovery;
  recovery.scan = scan.value();

  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return recovery;  // nothing to truncate
    return Status::IoError(
        StringPrintf("stat %s: %s", path.c_str(), std::strerror(errno)));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size > recovery.scan.valid_bytes) {
    recovery.truncated_bytes = size - recovery.scan.valid_bytes;
    if (::truncate(path.c_str(),
                   static_cast<off_t>(recovery.scan.valid_bytes)) != 0) {
      return Status::IoError(
          StringPrintf("truncate %s: %s", path.c_str(), std::strerror(errno)));
    }
    obs::MetricsRegistry::Global()
        .GetCounter("upskill_ingest_truncated_bytes_total")
        .Increment(recovery.truncated_bytes);
  }
  return recovery;
}

}  // namespace store
}  // namespace upskill
