#ifndef UPSKILL_STORE_INGEST_LOG_H_
#define UPSKILL_STORE_INGEST_LOG_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace upskill {
namespace store {

/// One observed action, as appended by serve sessions. Users are keyed by
/// name (the serving identity); compaction resolves names to ids against
/// the base store, appending first-seen names as new users.
struct IngestRecord {
  std::string user;
  int64_t time = 0;
  ItemId item = -1;
  double rating = std::numeric_limits<double>::quiet_NaN();
};

struct IngestLogOptions {
  /// Records buffered before a batch frame is written to the file. A
  /// frame is all-or-nothing on recovery, so larger batches trade write
  /// amplification against the amount of recent data a crash can lose.
  size_t batch_records = 64;
  /// fsync after every N batch frames (1 = every frame). This is the
  /// durability bound: at most `batch_records * fsync_batches` appended
  /// records can be lost to a power failure.
  size_t fsync_batches = 8;
};

/// Append-only crash-safe log of observed actions. Thread-safe: serve
/// worker threads append concurrently; frames are assembled under a mutex
/// and written with a single write() each, so a crash can only ever tear
/// the final frame — which recovery detects (length/CRC) and truncates.
///
/// Frame layout (little-endian):
///   [u32 'UPSB'][u32 payload_bytes][u32 record_count][u32 crc32(payload)]
///   [payload: per record u32 name_len + name + i64 time + i32 item +
///             f64 rating]
class IngestLogWriter {
 public:
  /// Opens `path` for appending, first running RecoverIngestLog so a
  /// torn tail from a previous crash never gets appended after.
  static Result<std::unique_ptr<IngestLogWriter>> Open(
      const std::string& path, const IngestLogOptions& options = {});

  ~IngestLogWriter();
  IngestLogWriter(const IngestLogWriter&) = delete;
  IngestLogWriter& operator=(const IngestLogWriter&) = delete;

  /// Buffers one record; writes a frame when the batch fills.
  Status Append(const IngestRecord& record);

  /// Writes any buffered records as a (possibly short) frame.
  Status Flush();

  /// Flush + fsync: everything appended so far is durable on return.
  Status Sync();

  uint64_t appended() const;

 private:
  IngestLogWriter(int fd, std::string path, const IngestLogOptions& options);

  Status FlushLocked();

  const IngestLogOptions options_;
  const std::string path_;
  mutable std::mutex mutex_;
  int fd_;
  std::string frame_;  // serialized records of the open batch
  uint32_t frame_records_ = 0;
  size_t unsynced_batches_ = 0;
  uint64_t appended_ = 0;
};

/// Result of scanning a log: the byte length of the longest valid prefix
/// and what it contains.
struct IngestScan {
  uint64_t valid_bytes = 0;
  uint64_t num_batches = 0;
  uint64_t num_records = 0;
};

/// Streams every record of the longest valid frame prefix to `fn`,
/// stopping cleanly at a torn or corrupt tail (that is the crash-recovery
/// semantic, not an error). A missing file is an empty log. `fn` may
/// return a non-OK status to abort the replay.
Result<IngestScan> ReplayIngestLog(
    const std::string& path,
    const std::function<Status(const IngestRecord&)>& fn);

struct IngestRecovery {
  IngestScan scan;
  uint64_t truncated_bytes = 0;  // torn-tail bytes dropped
};

/// Truncates `path` to its longest valid prefix. Idempotent; a missing
/// file recovers to an empty log.
Result<IngestRecovery> RecoverIngestLog(const std::string& path);

}  // namespace store
}  // namespace upskill

#endif  // UPSKILL_STORE_INGEST_LOG_H_
