#include "store/mapping.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace upskill {
namespace store {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(
        StringPrintf("fstat %s: %s", path.c_str(), std::strerror(err)));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  uint8_t* data = nullptr;
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IoError(
          StringPrintf("mmap %s: %s", path.c_str(), std::strerror(err)));
    }
    data = static_cast<uint8_t*>(mapping);
  }
  // The mapping keeps the inode alive; the descriptor is not needed.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

void MappedFile::AdviseSequential() const {
  if (data_ != nullptr) {
    (void)::madvise(data_, size_, MADV_SEQUENTIAL);
  }
}

void MappedFile::AdviseRandom() const {
  if (data_ != nullptr) {
    (void)::madvise(data_, size_, MADV_RANDOM);
  }
}

}  // namespace store
}  // namespace upskill
