#ifndef UPSKILL_STORE_MAPPING_H_
#define UPSKILL_STORE_MAPPING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"

namespace upskill {
namespace store {

/// Read-only memory mapping of a whole file. Shared ownership: mapped
/// `Dataset`s hold a shared_ptr to the file so spans into the mapping
/// stay valid for as long as any consumer is alive, no matter how the
/// dataset is copied or moved across threads.
class MappedFile {
 public:
  /// Maps `path` read-only. An empty file maps to a valid object with
  /// size() == 0.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const { return {data_, size_}; }

  /// madvise hints. Sequential is right for the one-pass CRC/scan paths;
  /// Random for shard-parallel training where users are visited out of
  /// file order. Advisory only — failures are ignored.
  void AdviseSequential() const;
  void AdviseRandom() const;

 private:
  MappedFile(uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace store
}  // namespace upskill

#endif  // UPSKILL_STORE_MAPPING_H_
