#include "store/store_reader.h"

#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/string_util.h"
#include "data/schema_io.h"

namespace upskill {
namespace store {
namespace {

// Segment kinds whose payload is an array of 8-byte values; their file
// offsets must be 8-aligned for the zero-copy casts to be legal.
bool NeedsAlignment(SegmentKind kind) {
  return kind == SegmentKind::kUserOffsets || kind == SegmentKind::kActions ||
         kind == SegmentKind::kItemColumns;
}

}  // namespace

std::span<const uint8_t> StoreReader::segment(SegmentKind kind) const {
  for (const SegmentEntry& entry : directory_) {
    if (entry.kind == static_cast<uint32_t>(kind)) {
      return file_->bytes().subspan(entry.offset, entry.length);
    }
  }
  return {};
}

Result<StoreReader> StoreReader::Open(const std::string& path,
                                      const Options& options) {
  Result<std::shared_ptr<MappedFile>> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  StoreReader reader;
  reader.file_ = std::move(mapped).value();
  const std::span<const uint8_t> bytes = reader.file_->bytes();

  // Prologue: header, then directory, then the header/directory CRC —
  // nothing past the prologue is touched until the checksum clears.
  if (bytes.size() < sizeof(StoreHeader)) {
    return StoreCorruption(
        StoreError::kTruncated,
        StringPrintf("%zu bytes is smaller than the %zu-byte header",
                     bytes.size(), sizeof(StoreHeader)));
  }
  std::memcpy(&reader.header_, bytes.data(), sizeof(StoreHeader));
  const StoreHeader& header = reader.header_;
  if (std::memcmp(header.magic, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return StoreCorruption(StoreError::kBadMagic, "not a store file");
  }
  if (header.version != kStoreVersion) {
    return StoreCorruption(
        StoreError::kBadVersion,
        StringPrintf("file version %u, this build reads version %u",
                     header.version, kStoreVersion));
  }
  if (header.num_segments != kNumSegments) {
    return StoreCorruption(
        StoreError::kBadSegment,
        StringPrintf("directory has %u segments, expected %u",
                     header.num_segments, kNumSegments));
  }
  const size_t directory_bytes = kNumSegments * sizeof(SegmentEntry);
  if (bytes.size() < kFirstSegmentOffset) {
    return StoreCorruption(
        StoreError::kTruncated,
        StringPrintf("%zu bytes is smaller than the %zu-byte prologue",
                     bytes.size(), kFirstSegmentOffset));
  }
  reader.directory_.resize(kNumSegments);
  std::memcpy(reader.directory_.data(), bytes.data() + kDirectoryOffset,
              directory_bytes);

  StoreHeader crc_header = header;
  crc_header.header_crc = 0;
  Crc32Accumulator prologue_crc;
  prologue_crc.Update(&crc_header, sizeof(crc_header));
  prologue_crc.Update(reader.directory_.data(), directory_bytes);
  if (prologue_crc.Finish() != header.header_crc) {
    return StoreCorruption(StoreError::kHeaderCrc,
                           "header/directory checksum mismatch");
  }

  // The header's recorded size pins the durable extent: shorter means a
  // truncated copy, longer means trailing garbage was appended.
  if (bytes.size() < header.file_size) {
    return StoreCorruption(
        StoreError::kTruncated,
        StringPrintf("file is %zu bytes, header promises %llu", bytes.size(),
                     static_cast<unsigned long long>(header.file_size)));
  }
  if (bytes.size() > header.file_size) {
    return StoreCorruption(
        StoreError::kBadShape,
        StringPrintf("file is %zu bytes, header promises %llu", bytes.size(),
                     static_cast<unsigned long long>(header.file_size)));
  }

  // Directory: every kind exactly once, every segment in bounds.
  uint32_t seen_kinds = 0;
  for (const SegmentEntry& entry : reader.directory_) {
    const SegmentKind kind = static_cast<SegmentKind>(entry.kind);
    if (entry.kind < 1 || entry.kind > kNumSegments) {
      return StoreCorruption(
          StoreError::kBadSegment,
          StringPrintf("unknown segment kind %u", entry.kind));
    }
    const uint32_t bit = 1u << entry.kind;
    if (seen_kinds & bit) {
      return StoreCorruption(
          StoreError::kBadSegment,
          StringPrintf("duplicate %s segment", SegmentKindName(kind)));
    }
    seen_kinds |= bit;
    if (entry.offset < kFirstSegmentOffset ||
        entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return StoreCorruption(
          StoreError::kSegmentBounds,
          StringPrintf("%s segment [%llu, +%llu) exceeds the %zu-byte file",
                       SegmentKindName(kind),
                       static_cast<unsigned long long>(entry.offset),
                       static_cast<unsigned long long>(entry.length),
                       bytes.size()));
    }
    if (NeedsAlignment(kind) && entry.offset % 8 != 0) {
      return StoreCorruption(
          StoreError::kBadSegment,
          StringPrintf("%s segment at misaligned offset %llu",
                       SegmentKindName(kind),
                       static_cast<unsigned long long>(entry.offset)));
    }
  }

  // Shape: segment byte sizes must agree with the header's counts.
  const auto expect_length = [&](SegmentKind kind,
                                 uint64_t expected) -> Status {
    const std::span<const uint8_t> payload = reader.segment(kind);
    if (payload.size() != expected) {
      return StoreCorruption(
          StoreError::kBadShape,
          StringPrintf("%s segment is %zu bytes, header implies %llu",
                       SegmentKindName(kind), payload.size(),
                       static_cast<unsigned long long>(expected)));
    }
    return Status::OK();
  };
  UPSKILL_RETURN_IF_ERROR(expect_length(
      SegmentKind::kUserOffsets, (header.num_users + 1) * sizeof(uint64_t)));
  UPSKILL_RETURN_IF_ERROR(
      expect_length(SegmentKind::kActions, header.num_actions * sizeof(Action)));
  UPSKILL_RETURN_IF_ERROR(expect_length(
      SegmentKind::kItemColumns, static_cast<uint64_t>(header.num_features) *
                                     header.num_items * sizeof(double)));

  // User offsets must be a monotone prefix-sum ending at num_actions;
  // O(users) and cheap, so always checked — a bad offset would otherwise
  // produce spans pointing at other users' (or no one's) actions.
  const std::span<const uint8_t> offsets_bytes =
      reader.segment(SegmentKind::kUserOffsets);
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(offsets_bytes.data());
  if (offsets[0] != 0 || offsets[header.num_users] != header.num_actions) {
    return StoreCorruption(StoreError::kBadShape,
                           "user offsets do not span the action segment");
  }
  for (uint64_t u = 0; u < header.num_users; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return StoreCorruption(
          StoreError::kBadShape,
          StringPrintf("user offsets decrease at user %llu",
                       static_cast<unsigned long long>(u)));
    }
  }

  if (options.verify_checksums) {
    reader.file_->AdviseSequential();
    for (const SegmentEntry& entry : reader.directory_) {
      const std::span<const uint8_t> payload =
          bytes.subspan(entry.offset, entry.length);
      if (Crc32(payload.data(), payload.size()) != entry.crc) {
        return StoreCorruption(
            StoreError::kSegmentCrc,
            StringPrintf("%s segment checksum mismatch",
                         SegmentKindName(static_cast<SegmentKind>(entry.kind))));
      }
    }
    // With integrity established, domain-check the actions: item ids in
    // range and per-user chronological order (the DP relies on both).
    const Action* actions = reinterpret_cast<const Action*>(
        reader.segment(SegmentKind::kActions).data());
    for (uint64_t u = 0; u < header.num_users; ++u) {
      for (uint64_t n = offsets[u]; n < offsets[u + 1]; ++n) {
        const Action& action = actions[n];
        if (action.item < 0 ||
            action.item >= static_cast<ItemId>(header.num_items)) {
          return StoreCorruption(
              StoreError::kBadValue,
              StringPrintf("action %llu of user %llu references item %d",
                           static_cast<unsigned long long>(n - offsets[u]),
                           static_cast<unsigned long long>(u), action.item));
        }
        if (n > offsets[u] && actions[n - 1].time > action.time) {
          return StoreCorruption(
              StoreError::kBadValue,
              StringPrintf("user %llu actions are not chronological",
                           static_cast<unsigned long long>(u)));
        }
      }
    }
  }

  return reader;
}

Result<Dataset> StoreReader::MapDataset() const {
  // Small sections (schema, items, names) decode into RAM; only the
  // action sequences stay behind as views into the mapping.
  ByteReader schema_bytes(segment(SegmentKind::kSchema));
  Result<FeatureSchema> schema = DeserializeSchema(&schema_bytes);
  if (!schema.ok()) {
    return StoreCorruption(StoreError::kBadShape,
                           "schema segment: " + schema.status().message());
  }
  if (!schema_bytes.exhausted()) {
    return StoreCorruption(StoreError::kBadShape,
                           "trailing bytes after the schema");
  }
  if (schema.value().num_features() !=
      static_cast<int>(header_.num_features)) {
    return StoreCorruption(
        StoreError::kBadShape,
        StringPrintf("schema has %d features, header promises %u",
                     schema.value().num_features(), header_.num_features));
  }

  const auto read_names = [&](SegmentKind kind, uint64_t count,
                              std::vector<std::string>* names) -> Status {
    ByteReader in(segment(kind));
    names->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!in.Str(&(*names)[i])) {
        return StoreCorruption(
            StoreError::kBadShape,
            StringPrintf("%s segment truncated at entry %llu",
                         SegmentKindName(kind),
                         static_cast<unsigned long long>(i)));
      }
    }
    if (!in.exhausted()) {
      return StoreCorruption(
          StoreError::kBadShape,
          StringPrintf("trailing bytes in the %s segment",
                       SegmentKindName(kind)));
    }
    return Status::OK();
  };

  std::vector<std::string> item_names;
  UPSKILL_RETURN_IF_ERROR(
      read_names(SegmentKind::kItemNames, header_.num_items, &item_names));

  ItemTable items(std::move(schema).value());
  const std::span<const uint8_t> column_bytes =
      segment(SegmentKind::kItemColumns);
  const double* columns = reinterpret_cast<const double*>(column_bytes.data());
  std::vector<double> row(header_.num_features);
  for (uint32_t i = 0; i < header_.num_items; ++i) {
    for (uint32_t f = 0; f < header_.num_features; ++f) {
      row[f] = columns[static_cast<size_t>(f) * header_.num_items + i];
    }
    Result<ItemId> added = items.AddItem(row, std::move(item_names[i]));
    if (!added.ok()) {
      return StoreCorruption(
          StoreError::kBadValue,
          StringPrintf("item %u: %s", i, added.status().message().c_str()));
    }
  }

  ByteReader metadata(segment(SegmentKind::kItemMetadata));
  uint32_t num_metadata = 0;
  if (!metadata.U32(&num_metadata)) {
    return StoreCorruption(StoreError::kBadShape,
                           "item metadata segment truncated");
  }
  for (uint32_t m = 0; m < num_metadata; ++m) {
    std::string key;
    std::vector<double> values(header_.num_items);
    if (!metadata.Str(&key) || !metadata.Doubles(values)) {
      return StoreCorruption(
          StoreError::kBadShape,
          StringPrintf("item metadata column %u truncated", m));
    }
    const Status set = items.SetMetadata(key, std::move(values));
    if (!set.ok()) {
      return StoreCorruption(StoreError::kBadValue,
                             "item metadata: " + set.message());
    }
  }
  if (!metadata.exhausted()) {
    return StoreCorruption(StoreError::kBadShape,
                           "trailing bytes in the item metadata segment");
  }

  std::vector<std::string> user_names;
  UPSKILL_RETURN_IF_ERROR(
      read_names(SegmentKind::kUserNames, header_.num_users, &user_names));

  const uint64_t* offsets = reinterpret_cast<const uint64_t*>(
      segment(SegmentKind::kUserOffsets).data());
  const Action* actions =
      reinterpret_cast<const Action*>(segment(SegmentKind::kActions).data());
  std::vector<std::span<const Action>> views(header_.num_users);
  for (uint64_t u = 0; u < header_.num_users; ++u) {
    views[u] = std::span<const Action>(actions + offsets[u],
                                       offsets[u + 1] - offsets[u]);
  }

  return Dataset::FromMappedSequences(std::move(items), std::move(user_names),
                                      std::move(views), file_);
}

std::string StoreReader::Describe() const {
  std::string out = StringPrintf(
      "store version %u\n"
      "  file_size    %llu bytes\n"
      "  users        %llu\n"
      "  actions      %llu\n"
      "  items        %u\n"
      "  features     %u\n"
      "  segments:\n",
      header_.version, static_cast<unsigned long long>(header_.file_size),
      static_cast<unsigned long long>(header_.num_users),
      static_cast<unsigned long long>(header_.num_actions),
      header_.num_items, header_.num_features);
  for (const SegmentEntry& entry : directory_) {
    out += StringPrintf(
        "    %-14s offset %-12llu length %-12llu crc32 %08x\n",
        SegmentKindName(static_cast<SegmentKind>(entry.kind)),
        static_cast<unsigned long long>(entry.offset),
        static_cast<unsigned long long>(entry.length), entry.crc);
  }
  return out;
}

}  // namespace store
}  // namespace upskill
