#ifndef UPSKILL_STORE_STORE_READER_H_
#define UPSKILL_STORE_STORE_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "store/format.h"
#include "store/mapping.h"

namespace upskill {
namespace store {

/// Parsed view of one store file. Open() validates defensively — every
/// rejection carries a distinct machine-parseable token (StoreError) —
/// and MapDataset() then materializes a zero-copy `Dataset` whose
/// sequences are spans straight into the mapping.
class StoreReader {
 public:
  struct Options {
    /// Verify every segment's CRC-32 on open (one sequential pass over
    /// the file) and domain-check the action records. Turning this off
    /// skips the full-file read — the header/directory checksum and all
    /// structural bounds checks still run — for latency-sensitive opens
    /// of stores that were just written locally.
    bool verify_checksums = true;
  };

  static Result<StoreReader> Open(const std::string& path,
                                  const Options& options);
  static Result<StoreReader> Open(const std::string& path) {
    return Open(path, Options());
  }

  const StoreHeader& header() const { return header_; }
  const std::vector<SegmentEntry>& directory() const { return directory_; }
  const std::shared_ptr<MappedFile>& file() const { return file_; }

  /// Raw payload bytes of the segment of `kind`.
  std::span<const uint8_t> segment(SegmentKind kind) const;

  /// Builds the zero-copy mapped dataset: the item table, schema, names
  /// and metadata are decoded into RAM (small), while action sequences
  /// stay in the mapping, kept alive by a shared handle on the file.
  Result<Dataset> MapDataset() const;

  /// Human-readable multi-line description (the `dataset inspect` CLI).
  std::string Describe() const;

 private:
  StoreReader() = default;

  std::shared_ptr<MappedFile> file_;
  StoreHeader header_ = {};
  std::vector<SegmentEntry> directory_;
};

}  // namespace store
}  // namespace upskill

#endif  // UPSKILL_STORE_STORE_READER_H_
