#include "store/store_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/string_util.h"
#include "data/schema_io.h"
#include "store/format.h"

namespace upskill {
namespace store {
namespace {

// Best-effort fsync of the directory containing `path`, so the rename
// that publishes a finished store survives a crash.
void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Result<std::unique_ptr<StoreWriter>> StoreWriter::Create(
    const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(StringPrintf("open %s: %s", tmp_path.c_str(),
                                        std::strerror(errno)));
  }
  // A megabyte of stdio buffering keeps the 24-byte Append() writes off
  // the syscall path; glibc allocates the buffer itself.
  (void)std::setvbuf(file, nullptr, _IOFBF, 1 << 20);
  std::unique_ptr<StoreWriter> writer(
      new StoreWriter(file, path, tmp_path));
  // Reserve the prologue (header + directory); both are rewritten with
  // real contents by Finish(). The action segment streams right after.
  const std::string zeros(kFirstSegmentOffset, '\0');
  UPSKILL_RETURN_IF_ERROR(writer->WriteRaw(zeros.data(), zeros.size()));
  return writer;
}

StoreWriter::StoreWriter(std::FILE* file, std::string path,
                         std::string tmp_path)
    : file_(file), path_(std::move(path)), tmp_path_(std::move(tmp_path)) {}

StoreWriter::~StoreWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) {
    // Never leave a half-written temp file behind.
    (void)std::remove(tmp_path_.c_str());
  }
}

Status StoreWriter::WriteRaw(const void* data, size_t size) {
  if (failed_) return Status::IoError("store writer already failed");
  if (std::fwrite(data, 1, size, file_) != size) {
    failed_ = true;
    return Status::IoError(
        StringPrintf("write %s: %s", tmp_path_.c_str(), std::strerror(errno)));
  }
  file_offset_ += size;
  return Status::OK();
}

Status StoreWriter::AlignSegment() {
  static const char kZeros[kSegmentAlignment] = {0};
  const size_t misalign = file_offset_ % kSegmentAlignment;
  if (misalign == 0) return Status::OK();
  return WriteRaw(kZeros, kSegmentAlignment - misalign);
}

Status StoreWriter::BeginUser(const std::string& name) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  user_names_.push_back(name);
  user_action_end_.push_back(num_actions_);
  last_time_ = std::numeric_limits<int64_t>::min();
  return Status::OK();
}

Status StoreWriter::Append(int64_t time, ItemId item, double rating) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (user_action_end_.empty()) {
    return Status::FailedPrecondition("Append before BeginUser");
  }
  if (item < 0) {
    return Status::OutOfRange(StringPrintf("item %d", item));
  }
  if (time < last_time_) {
    return Status::FailedPrecondition(StringPrintf(
        "action at time %lld precedes the sequence tail at %lld",
        static_cast<long long>(time), static_cast<long long>(last_time_)));
  }
  last_time_ = time;
  if (item > max_item_) max_item_ = item;

  // On-disk record == in-memory Action (format.h static_asserts), with
  // the padding bytes explicitly zeroed so file bytes are deterministic.
  char record[sizeof(Action)] = {0};
  std::memcpy(record + offsetof(Action, time), &time, sizeof(time));
  std::memcpy(record + offsetof(Action, item), &item, sizeof(item));
  std::memcpy(record + offsetof(Action, rating), &rating, sizeof(rating));
  actions_crc_.Update(record, sizeof(record));
  UPSKILL_RETURN_IF_ERROR(WriteRaw(record, sizeof(record)));
  ++num_actions_;
  user_action_end_.back() = num_actions_;
  return Status::OK();
}

Status StoreWriter::Finish(const ItemTable& items) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (failed_) return Status::IoError("store writer already failed");
  if (max_item_ >= items.num_items()) {
    return Status::OutOfRange(StringPrintf("item %d out of range for %d items",
                                           max_item_, items.num_items()));
  }

  std::vector<SegmentEntry> directory;
  directory.reserve(kNumSegments);
  // The action segment has been streaming since Create().
  directory.push_back(SegmentEntry{
      static_cast<uint32_t>(SegmentKind::kActions), 0, kFirstSegmentOffset,
      num_actions_ * sizeof(Action), actions_crc_.Finish(), 0});

  // Writes one trailing segment: `body(emit)` produces the payload
  // through `emit`, which both hashes and writes.
  Crc32Accumulator crc;
  const auto emit = [&](const void* data, size_t size) -> Status {
    crc.Update(data, size);
    return WriteRaw(data, size);
  };
  const auto write_segment = [&](SegmentKind kind,
                                 auto&& body) -> Status {
    UPSKILL_RETURN_IF_ERROR(AlignSegment());
    const uint64_t offset = file_offset_;
    crc = Crc32Accumulator();
    UPSKILL_RETURN_IF_ERROR(body());
    directory.push_back(SegmentEntry{static_cast<uint32_t>(kind), 0, offset,
                                     file_offset_ - offset, crc.Finish(), 0});
    return Status::OK();
  };

  UPSKILL_RETURN_IF_ERROR(write_segment(SegmentKind::kUserOffsets, [&] {
    const uint64_t zero = 0;
    UPSKILL_RETURN_IF_ERROR(emit(&zero, sizeof(zero)));
    for (const uint64_t end : user_action_end_) {
      UPSKILL_RETURN_IF_ERROR(emit(&end, sizeof(end)));
    }
    return Status::OK();
  }));

  const auto emit_string = [&](const std::string& s) -> Status {
    const uint32_t size = static_cast<uint32_t>(s.size());
    UPSKILL_RETURN_IF_ERROR(emit(&size, sizeof(size)));
    return emit(s.data(), s.size());
  };

  UPSKILL_RETURN_IF_ERROR(write_segment(SegmentKind::kUserNames, [&] {
    for (const std::string& name : user_names_) {
      UPSKILL_RETURN_IF_ERROR(emit_string(name));
    }
    return Status::OK();
  }));

  UPSKILL_RETURN_IF_ERROR(write_segment(SegmentKind::kSchema, [&] {
    ByteWriter bytes;
    SerializeSchema(items.schema(), &bytes);
    return emit(bytes.buffer().data(), bytes.buffer().size());
  }));

  UPSKILL_RETURN_IF_ERROR(write_segment(SegmentKind::kItemColumns, [&] {
    for (int f = 0; f < items.schema().num_features(); ++f) {
      const std::span<const double> column = items.column(f);
      UPSKILL_RETURN_IF_ERROR(
          emit(column.data(), column.size() * sizeof(double)));
    }
    return Status::OK();
  }));

  UPSKILL_RETURN_IF_ERROR(write_segment(SegmentKind::kItemNames, [&] {
    for (ItemId i = 0; i < items.num_items(); ++i) {
      UPSKILL_RETURN_IF_ERROR(emit_string(items.name(i)));
    }
    return Status::OK();
  }));

  UPSKILL_RETURN_IF_ERROR(write_segment(SegmentKind::kItemMetadata, [&] {
    const uint32_t count = static_cast<uint32_t>(items.metadata().size());
    UPSKILL_RETURN_IF_ERROR(emit(&count, sizeof(count)));
    for (const auto& [key, values] : items.metadata()) {
      UPSKILL_RETURN_IF_ERROR(emit_string(key));
      UPSKILL_RETURN_IF_ERROR(
          emit(values.data(), values.size() * sizeof(double)));
    }
    return Status::OK();
  }));

  // Rewrite the prologue with real contents.
  StoreHeader header = {};
  std::memcpy(header.magic, kStoreMagic, sizeof(header.magic));
  header.version = kStoreVersion;
  header.num_segments = kNumSegments;
  header.file_size = file_offset_;
  header.num_users = user_names_.size();
  header.num_actions = num_actions_;
  header.num_items = static_cast<uint32_t>(items.num_items());
  header.num_features = static_cast<uint32_t>(items.schema().num_features());
  Crc32Accumulator header_crc;
  header_crc.Update(&header, sizeof(header));
  header_crc.Update(directory.data(),
                    directory.size() * sizeof(SegmentEntry));
  header.header_crc = header_crc.Finish();

  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    failed_ = true;
    return Status::IoError(StringPrintf("seek %s: %s", tmp_path_.c_str(),
                                        std::strerror(errno)));
  }
  file_offset_ = 0;
  UPSKILL_RETURN_IF_ERROR(WriteRaw(&header, sizeof(header)));
  UPSKILL_RETURN_IF_ERROR(
      WriteRaw(directory.data(), directory.size() * sizeof(SegmentEntry)));

  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0 ||
      std::fclose(file_) != 0) {
    file_ = nullptr;
    failed_ = true;
    return Status::IoError(StringPrintf("flush %s: %s", tmp_path_.c_str(),
                                        std::strerror(errno)));
  }
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    failed_ = true;
    return Status::IoError(StringPrintf("rename %s -> %s: %s",
                                        tmp_path_.c_str(), path_.c_str(),
                                        std::strerror(errno)));
  }
  SyncParentDirectory(path_);
  finished_ = true;
  return Status::OK();
}

Status PackDataset(const Dataset& dataset, const std::string& path) {
  Result<std::unique_ptr<StoreWriter>> writer = StoreWriter::Create(path);
  if (!writer.ok()) return writer.status();
  StoreWriter& out = *writer.value();
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    UPSKILL_RETURN_IF_ERROR(out.BeginUser(dataset.user_name(u)));
    for (const Action& action : dataset.sequence(u)) {
      UPSKILL_RETURN_IF_ERROR(out.Append(action.time, action.item,
                                         action.rating));
    }
  }
  return out.Finish(dataset.items());
}

}  // namespace store
}  // namespace upskill
