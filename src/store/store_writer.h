#ifndef UPSKILL_STORE_STORE_WRITER_H_
#define UPSKILL_STORE_STORE_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/status.h"
#include "data/dataset.h"

namespace upskill {
namespace store {

/// Streaming writer for the columnar store format (store/format.h).
/// Actions are appended user by user and flow straight to disk through a
/// bounded buffer, so packing never needs the dataset resident in RAM:
///
///   auto writer = StoreWriter::Create(path);
///   for each user:   writer->BeginUser(name);
///                    writer->Append(time, item, rating);  // chronological
///   writer->Finish(items);   // trailing segments + header, fsync, rename
///
/// The file is built at `path + ".tmp"` and atomically renamed into place
/// by Finish(), so a crashed pack never leaves a half-written store where
/// a reader could find it.
class StoreWriter {
 public:
  static Result<std::unique_ptr<StoreWriter>> Create(const std::string& path);

  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Starts the next user's sequence.
  Status BeginUser(const std::string& name);

  /// Appends an action to the current user. Times must be non-decreasing
  /// within a user; item range is validated against the table in Finish().
  Status Append(int64_t time, ItemId item,
                double rating = std::numeric_limits<double>::quiet_NaN());

  /// Writes the remaining segments, directory, and header; fsyncs; renames
  /// the temp file into place. The writer is unusable afterwards.
  Status Finish(const ItemTable& items);

  uint64_t num_users() const { return user_action_end_.size(); }
  uint64_t num_actions() const { return num_actions_; }

 private:
  StoreWriter(std::FILE* file, std::string path, std::string tmp_path);

  Status WriteRaw(const void* data, size_t size);
  Status AlignSegment();

  std::FILE* file_;
  std::string path_;
  std::string tmp_path_;
  bool finished_ = false;
  bool failed_ = false;

  uint64_t num_actions_ = 0;
  std::vector<uint64_t> user_action_end_;  // prefix sums, one per user
  std::vector<std::string> user_names_;
  int64_t last_time_ = 0;
  ItemId max_item_ = -1;
  Crc32Accumulator actions_crc_;
  uint64_t file_offset_ = 0;
};

/// Packs an in-RAM dataset into a store file at `path`.
Status PackDataset(const Dataset& dataset, const std::string& path);

}  // namespace store
}  // namespace upskill

#endif  // UPSKILL_STORE_STORE_WRITER_H_
