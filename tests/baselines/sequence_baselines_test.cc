#include "baselines/sequence_baselines.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

Dataset MakeDataset(int num_items) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(num_items).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {-1.0};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  return Dataset(std::move(items));
}

TEST(PopularityModelTest, RanksByCountWithIdTies) {
  Dataset train = MakeDataset(4);
  const UserId u = train.AddUser();
  // Item 2 x3, item 0 x2, items 1 and 3 x0 (tie broken by id).
  ASSERT_TRUE(train.AddAction(u, 1, 2).ok());
  ASSERT_TRUE(train.AddAction(u, 2, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 3, 2).ok());
  ASSERT_TRUE(train.AddAction(u, 4, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 5, 2).ok());
  const PopularityModel model = PopularityModel::Train(train);
  EXPECT_EQ(model.Rank(2).value(), 1);
  EXPECT_EQ(model.Rank(0).value(), 2);
  EXPECT_EQ(model.Rank(1).value(), 3);
  EXPECT_EQ(model.Rank(3).value(), 4);
  EXPECT_FALSE(model.Rank(99).ok());
  EXPECT_EQ(model.TopItems(2), (std::vector<ItemId>{2, 0}));
}

TEST(MarkovChainModelTest, TransitionProbabilities) {
  Dataset train = MakeDataset(3);
  const UserId u = train.AddUser();
  // Sequence 0 -> 1 -> 0 -> 2: transitions 0->1, 1->0, 0->2.
  ASSERT_TRUE(train.AddAction(u, 1, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 2, 1).ok());
  ASSERT_TRUE(train.AddAction(u, 3, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 4, 2).ok());
  const MarkovChainModel model = MarkovChainModel::Train(train, 0.01);
  // From 0: one transition each to 1 and 2; smoothed over 3 items.
  const double denom = 2.0 + 0.01 * 3;
  EXPECT_NEAR(model.TransitionProbability(0, 1), 1.01 / denom, 1e-12);
  EXPECT_NEAR(model.TransitionProbability(0, 2), 1.01 / denom, 1e-12);
  EXPECT_NEAR(model.TransitionProbability(0, 0), 0.01 / denom, 1e-12);
  // The full row is a distribution.
  double total = 0.0;
  for (int i = 0; i < 3; ++i) total += model.TransitionProbability(0, i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MarkovChainModelTest, RankOrdersSuccessorsThenFloor) {
  Dataset train = MakeDataset(4);
  const UserId u = train.AddUser();
  // From item 0: to 2 twice, to 1 once; items 0 and 3 never follow 0.
  ASSERT_TRUE(train.AddAction(u, 1, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 2, 2).ok());
  ASSERT_TRUE(train.AddAction(u, 3, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 4, 2).ok());
  ASSERT_TRUE(train.AddAction(u, 5, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 6, 1).ok());
  const MarkovChainModel model = MarkovChainModel::Train(train);
  EXPECT_EQ(model.Rank(0, 2).value(), 1);  // most frequent successor
  EXPECT_EQ(model.Rank(0, 1).value(), 2);
  // Floor ties: items 0 and 3, ordered by id after the 2 observed rows.
  EXPECT_EQ(model.Rank(0, 0).value(), 3);
  EXPECT_EQ(model.Rank(0, 3).value(), 4);
  EXPECT_FALSE(model.Rank(0, 99).ok());
  EXPECT_FALSE(model.Rank(-1, 0).ok());
}

TEST(MarkovChainModelTest, UnseenPredecessorFallsBackToPopularity) {
  Dataset train = MakeDataset(3);
  const UserId u0 = train.AddUser();
  const UserId u1 = train.AddUser();
  // Item 2 is globally most popular; item 1 was never a predecessor.
  ASSERT_TRUE(train.AddAction(u0, 1, 2).ok());
  ASSERT_TRUE(train.AddAction(u0, 2, 2).ok());
  ASSERT_TRUE(train.AddAction(u1, 1, 0).ok());
  const MarkovChainModel model = MarkovChainModel::Train(train);
  EXPECT_EQ(model.Rank(1, 2).value(), 1);  // popularity order
  EXPECT_EQ(model.Rank(1, 0).value(), 2);
}

TEST(EvaluateSequenceBaselinesTest, ScoresKnownScenario) {
  Dataset train = MakeDataset(3);
  const UserId u = train.AddUser();
  // Train: 0 -> 1 -> 0 -> 1 (0 and 1 equally popular; 0 -> 1 dominant).
  ASSERT_TRUE(train.AddAction(u, 1, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 2, 1).ok());
  ASSERT_TRUE(train.AddAction(u, 3, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 4, 1).ok());
  // Held out at time 5 after predecessor 1: true item 0 (1 -> 0 is the
  // dominant transition).
  const std::vector<HeldOutAction> test = {{u, Action{5, 0, 0.0}, 4}};
  const auto report = EvaluateSequenceBaselines(train, test, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().num_cases, 1u);
  // Popularity: 0 and 1 tie at 2 selections; id tie-break ranks 0 first.
  EXPECT_DOUBLE_EQ(report.value().popularity_accuracy_at_k, 1.0);
  // Markov: predecessor is the last train action before t=5, which is
  // item 1; 1 -> 0 is its only observed transition.
  EXPECT_DOUBLE_EQ(report.value().markov_accuracy_at_k, 1.0);
  EXPECT_DOUBLE_EQ(report.value().markov_mrr, 1.0);
  EXPECT_FALSE(EvaluateSequenceBaselines(train, test, 0).ok());
}

TEST(EvaluateSequenceBaselinesTest, EmptyTestIsZero) {
  Dataset train = MakeDataset(2);
  const UserId u = train.AddUser();
  ASSERT_TRUE(train.AddAction(u, 1, 0).ok());
  const auto report = EvaluateSequenceBaselines(train, {}, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().num_cases, 0u);
}

}  // namespace
}  // namespace upskill
