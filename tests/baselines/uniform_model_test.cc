#include "baselines/uniform_model.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "dist/poisson.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeData() {
  datagen::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 100;
  config.mean_sequence_length = 20.0;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(TrainUniformBaselineTest, SegmentsEverySequence) {
  const datagen::GeneratedData data = MakeData();
  SkillModelConfig config;
  config.num_levels = 5;
  const auto result = TrainUniformBaseline(data.dataset, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().assignments.size(),
            static_cast<size_t>(data.dataset.num_users()));
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    const auto& levels = result.value().assignments[static_cast<size_t>(u)];
    EXPECT_EQ(levels, SegmentUniformly(data.dataset.sequence(u).size(), 5));
  }
  EXPECT_TRUE(AssignmentsAreMonotone(result.value().assignments, 5));
}

TEST(TrainUniformBaselineTest, FitsParametersFromSegments) {
  const datagen::GeneratedData data = MakeData();
  SkillModelConfig config;
  config.num_levels = 5;
  const auto result = TrainUniformBaseline(data.dataset, config);
  ASSERT_TRUE(result.ok());
  // The Poisson "complexity" component must have been fitted away from its
  // default rate of 1.
  const auto idx = data.dataset.schema().FeatureIndex("complexity");
  ASSERT_TRUE(idx.ok());
  const auto& poisson = static_cast<const Poisson&>(
      result.value().model.component(idx.value(), 1));
  EXPECT_NE(poisson.rate(), 1.0);
}

TEST(TrainUniformBaselineTest, RejectsEmptyDataset) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("x").ok());
  Dataset dataset((ItemTable(std::move(schema))));
  EXPECT_FALSE(TrainUniformBaseline(dataset, SkillModelConfig{}).ok());
}

TEST(ProjectToIdOnlyTest, KeepsOnlyIdFeature) {
  const datagen::GeneratedData data = MakeData();
  const auto projected = ProjectToIdOnly(data.dataset);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().schema().num_features(), 1);
  EXPECT_EQ(projected.value().schema().id_feature(), 0);
  EXPECT_EQ(projected.value().items().num_items(),
            data.dataset.items().num_items());
  EXPECT_EQ(projected.value().num_actions(), data.dataset.num_actions());
  // Sequences are preserved exactly.
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    const auto& original = data.dataset.sequence(u);
    const auto& copy = projected.value().sequence(u);
    ASSERT_EQ(copy.size(), original.size());
    for (size_t n = 0; n < original.size(); ++n) {
      EXPECT_EQ(copy[n].item, original[n].item);
      EXPECT_EQ(copy[n].time, original[n].time);
    }
  }
}

TEST(ProjectToFeaturesTest, KeepsRequestedSubset) {
  const datagen::GeneratedData data = MakeData();
  const auto projected = ProjectToFeatures(data.dataset, {"intensity"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().schema().num_features(), 2);  // id + intensity
  EXPECT_TRUE(projected.value().schema().FeatureIndex("intensity").ok());
  EXPECT_FALSE(projected.value().schema().FeatureIndex("category").ok());
  // Feature values survive the projection.
  const int src = data.dataset.schema().FeatureIndex("intensity").value();
  const int dst = projected.value().schema().FeatureIndex("intensity").value();
  for (ItemId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(projected.value().items().value(i, dst),
                     data.dataset.items().value(i, src));
  }
}

TEST(ProjectToFeaturesTest, UnknownNamesAreIgnored) {
  const datagen::GeneratedData data = MakeData();
  const auto projected = ProjectToFeatures(data.dataset, {"no-such-feature"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().schema().num_features(), 1);  // id only
}

TEST(ProjectToFeaturesTest, RequiresIdFeature) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("x").ok());
  Dataset dataset((ItemTable(std::move(schema))));
  EXPECT_FALSE(ProjectToFeatures(dataset, {}).ok());
}

}  // namespace
}  // namespace upskill
