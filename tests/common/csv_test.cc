#include "common/csv.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace upskill {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  const auto fields = ParseCsvLine("a,b,c").value();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const auto fields = ParseCsvLine(",,").value();
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_EQ(f, "");
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  const auto fields = ParseCsvLine("x,\"a,b\",y").value();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
}

TEST(ParseCsvLineTest, EscapedQuote) {
  const auto fields = ParseCsvLine("\"he said \"\"hi\"\"\"").value();
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "he said \"hi\"");
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

TEST(ParseCsvLineTest, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsvLine("ab\"cd").ok());
}

TEST(FormatCsvLineTest, RoundTripsThroughParse) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with\"quote", ""};
  const auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), fields);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("upskill_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteAndReadBack) {
  const std::vector<std::vector<std::string>> rows = {
      {"h1", "h2"}, {"a", "1"}, {"b,x", "2"}};
  ASSERT_TRUE(WriteCsvFile(path_.string(), rows).ok());
  const auto read = ReadCsvFile(path_.string());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
}

TEST_F(CsvFileTest, MissingFileFails) {
  const auto read = ReadCsvFile(path_.string() + ".does-not-exist");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(CsvFileTest, SkipsBlankLinesAndCarriageReturns) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\r\n\r\nc,d\n\n", f);
    std::fclose(f);
  }
  const auto read = ReadCsvFile(path_.string());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_EQ(read.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(read.value()[1], (std::vector<std::string>{"c", "d"}));
}

TEST_F(CsvFileTest, CorruptFileSurfacesError) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("good,row\nbad\"row\n", f);
    std::fclose(f);
  }
  const auto read = ReadCsvFile(path_.string());
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST_F(CsvFileTest, ScannerStreamsRowsWithOffsets) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("h1,h2\na,1\r\n\nb,2", f);  // CRLF, blank line, no final \n
    std::fclose(f);
  }
  auto opened = CsvScanner::Open(path_.string());
  ASSERT_TRUE(opened.ok());
  CsvScanner scanner = std::move(opened).value();
  std::vector<std::string> row;
  ASSERT_TRUE(scanner.Next(&row).value());
  EXPECT_EQ(row, (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(scanner.line_number(), 1u);
  EXPECT_EQ(scanner.line_offset(), 0u);
  ASSERT_TRUE(scanner.Next(&row).value());
  EXPECT_EQ(row, (std::vector<std::string>{"a", "1"}));
  EXPECT_EQ(scanner.line_offset(), 6u);  // after "h1,h2\n"
  ASSERT_TRUE(scanner.Next(&row).value());  // blank line skipped
  EXPECT_EQ(row, (std::vector<std::string>{"b", "2"}));
  EXPECT_EQ(scanner.line_number(), 4u);
  EXPECT_EQ(scanner.line_offset(), 12u);  // "h1,h2\n" + "a,1\r\n" + "\n"
  EXPECT_FALSE(scanner.Next(&row).value());
  EXPECT_FALSE(scanner.Next(&row).value());  // stays at EOF
}

TEST_F(CsvFileTest, ScannerCitesByteOffsetOnParseError) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("good,row\nbad\"row\n", f);
    std::fclose(f);
  }
  auto opened = CsvScanner::Open(path_.string());
  ASSERT_TRUE(opened.ok());
  CsvScanner scanner = std::move(opened).value();
  std::vector<std::string> row;
  ASSERT_TRUE(scanner.Next(&row).value());
  const auto bad = scanner.Next(&row);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  // "good,row\n" is 9 bytes; the bad row starts at line 2, byte 9.
  EXPECT_NE(bad.status().message().find(":2 (byte 9)"), std::string::npos)
      << bad.status().message();
}

TEST_F(CsvFileTest, ScannerBoundsLineLength) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("short,line\n", f);
    const std::string longline(100, 'x');
    std::fputs((longline + "\n").c_str(), f);
    std::fclose(f);
  }
  auto opened = CsvScanner::Open(path_.string(), /*max_line_bytes=*/64);
  ASSERT_TRUE(opened.ok());
  CsvScanner scanner = std::move(opened).value();
  std::vector<std::string> row;
  ASSERT_TRUE(scanner.Next(&row).value());
  const auto bad = scanner.Next(&row);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad.status().message().find("exceeds"), std::string::npos)
      << bad.status().message();

  // The same file scans cleanly with a buffer that fits the long line,
  // and a line of exactly max_line_bytes is accepted.
  auto wide = CsvScanner::Open(path_.string(), /*max_line_bytes=*/100);
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(wide.value().Next(&row).value());
  ASSERT_TRUE(wide.value().Next(&row).value());
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], std::string(100, 'x'));
  EXPECT_FALSE(wide.value().Next(&row).value());
}

}  // namespace
}  // namespace upskill
