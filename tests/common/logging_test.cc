#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace upskill {
namespace {

// Keeps busy-wait loops from being optimized away.
volatile double benchmark_sink = 0.0;

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateNothingFatal) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These must compile and execute without emitting (visually verified by
  // the level filter) or crashing.
  UPSKILL_LOG(Debug) << "hidden " << 1;
  UPSKILL_LOG(Info) << "hidden " << 2;
  UPSKILL_LOG(Warning) << "hidden " << 3;
  SUCCEED();
}

TEST(LoggingTest, EmittingLevelsWork) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  UPSKILL_LOG(Debug) << "visible debug";
  UPSKILL_LOG(Error) << "visible error";
  SUCCEED();
}

TEST(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);  // keep test output clean
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        UPSKILL_LOG(Info) << "thread " << t << " message " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SUCCEED();
}

TEST(LoggingTest, ParseLogLevelAcceptsAllNamesCaseInsensitively) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("eRRoR", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("debu", &level));
  EXPECT_FALSE(ParseLogLevel("errors", &level));
  // A failed parse leaves the output untouched.
  EXPECT_EQ(level, LogLevel::kWarning);
}

// Drives the UPSKILL_LOG_LEVEL machinery through the unguarded re-read
// hook (the public InitLogLevelFromEnv applies only once per process, at
// static-init time, so it cannot be re-tested after setenv).
TEST(LoggingTest, EnvOverrideSetsThreshold) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("UPSKILL_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  EXPECT_TRUE(internal_logging::ApplyLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ASSERT_EQ(setenv("UPSKILL_LOG_LEVEL", "DEBUG", 1), 0);
  EXPECT_TRUE(internal_logging::ApplyLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  unsetenv("UPSKILL_LOG_LEVEL");
}

TEST(LoggingTest, EnvOverrideIgnoresInvalidAndUnsetValues) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ASSERT_EQ(setenv("UPSKILL_LOG_LEVEL", "loud", 1), 0);
  EXPECT_FALSE(internal_logging::ApplyLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  ASSERT_EQ(setenv("UPSKILL_LOG_LEVEL", "", 1), 0);
  EXPECT_FALSE(internal_logging::ApplyLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  unsetenv("UPSKILL_LOG_LEVEL");
  EXPECT_FALSE(internal_logging::ApplyLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(CheckTest, PassingCheckIsNoOp) {
  UPSKILL_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(UPSKILL_CHECK(false), "CHECK failed");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a tiny amount; elapsed must be non-negative and monotone.
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_sink = sink;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedMillis() * 0.5 + 1.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_sink = sink;
  const double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1e-3);
}

// Regression guard for the steady_clock monotonicity contract documented
// in stopwatch.h: elapsed time is never negative, no matter how tightly
// Reset() and ElapsedSeconds() are interleaved. (A wall-clock-backed
// stopwatch can violate this under NTP adjustments; steady_clock cannot.)
TEST(StopwatchTest, ElapsedNeverNegativeAcrossRepeatedResets) {
  Stopwatch watch;
  for (int i = 0; i < 10000; ++i) {
    watch.Reset();
    EXPECT_GE(watch.ElapsedSeconds(), 0.0);
    EXPECT_GE(watch.ElapsedMillis(), 0.0);
  }
  // Also immediately after construction, with no work in between.
  EXPECT_GE(Stopwatch().ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace upskill
