#include "common/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace upskill {
namespace {

TEST(MathTest, LogGammaKnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(MathTest, DigammaKnownValues) {
  // psi(1) = -gamma (Euler-Mascheroni).
  EXPECT_NEAR(Digamma(1.0), -0.5772156649015329, 1e-10);
  // psi(0.5) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -0.5772156649015329 - 2.0 * std::log(2.0), 1e-10);
  // psi(2) = 1 - gamma.
  EXPECT_NEAR(Digamma(2.0), 1.0 - 0.5772156649015329, 1e-10);
}

TEST(MathTest, DigammaRecurrence) {
  // psi(x+1) = psi(x) + 1/x across a range of magnitudes.
  for (double x : {0.1, 0.7, 1.3, 4.2, 11.0, 123.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(MathTest, TrigammaKnownValues) {
  // psi'(1) = pi^2 / 6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-10);
  // psi'(0.5) = pi^2 / 2.
  EXPECT_NEAR(Trigamma(0.5), M_PI * M_PI / 2.0, 1e-10);
}

TEST(MathTest, TrigammaRecurrence) {
  for (double x : {0.2, 1.1, 3.3, 9.0, 77.0}) {
    EXPECT_NEAR(Trigamma(x + 1.0), Trigamma(x) - 1.0 / (x * x), 1e-10)
        << "x=" << x;
  }
}

TEST(MathTest, TrigammaIsDigammaDerivative) {
  // Central difference check.
  for (double x : {0.8, 2.5, 6.0, 40.0}) {
    const double h = 1e-5;
    const double numeric = (Digamma(x + h) - Digamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(Trigamma(x), numeric, 1e-5) << "x=" << x;
  }
}

TEST(MathTest, LogFactorialSmall) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathTest, LogFactorialLargeMatchesLgamma) {
  for (long long k : {255LL, 256LL, 1000LL, 1000000LL}) {
    EXPECT_NEAR(LogFactorial(k), std::lgamma(static_cast<double>(k) + 1.0),
                1e-8)
        << "k=" << k;
  }
}

TEST(MathTest, LogFactorialTableBoundaryConsistent) {
  // Values straddling the internal table boundary must agree on the
  // recurrence log(k!) = log((k-1)!) + log(k).
  for (long long k = 250; k <= 260; ++k) {
    EXPECT_NEAR(LogFactorial(k),
                LogFactorial(k - 1) + std::log(static_cast<double>(k)), 1e-9);
  }
}

TEST(MathTest, LogSumExpBasics) {
  const std::vector<double> values = {std::log(1.0), std::log(2.0),
                                      std::log(3.0)};
  EXPECT_NEAR(LogSumExp(values), std::log(6.0), 1e-12);
}

TEST(MathTest, LogSumExpHandlesLargeMagnitudes) {
  const std::vector<double> values = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(values), 1000.0 + std::log(2.0), 1e-9);
  const std::vector<double> tiny = {-1000.0, -1001.0};
  EXPECT_NEAR(LogSumExp(tiny), -1000.0 + std::log(1.0 + std::exp(-1.0)),
              1e-9);
}

TEST(MathTest, LogSumExpEmptyAndInfinite) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
  const std::vector<double> with_neg_inf = {
      -std::numeric_limits<double>::infinity(), 0.0};
  EXPECT_NEAR(LogSumExp(with_neg_inf), 0.0, 1e-12);
  const std::vector<double> all_neg_inf = {
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
  EXPECT_EQ(LogSumExp(all_neg_inf), -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace upskill
