#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"

namespace upskill {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextIntRespectsBound) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const int64_t v = rng.NextInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma
  }
}

TEST(RngTest, NextIntInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextIntInRange(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

class PoissonMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMomentsTest, MeanAndVarianceMatchRate) {
  const double lambda = GetParam();
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(static_cast<double>(rng.NextPoisson(lambda)));
  }
  EXPECT_NEAR(stats.mean(), lambda, 0.05 * lambda + 0.05);
  EXPECT_NEAR(stats.variance(), lambda, 0.1 * lambda + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Rates, PoissonMomentsTest,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

struct GammaCase {
  double shape;
  double scale;
};

class GammaMomentsTest : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatch) {
  const GammaCase param = GetParam();
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextGamma(param.shape, param.scale);
    ASSERT_GT(x, 0.0);
    stats.Add(x);
  }
  const double mean = param.shape * param.scale;
  const double variance = param.shape * param.scale * param.scale;
  EXPECT_NEAR(stats.mean(), mean, 0.05 * mean);
  EXPECT_NEAR(stats.variance(), variance, 0.1 * variance);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMomentsTest,
                         ::testing::Values(GammaCase{0.5, 1.0},
                                           GammaCase{1.0, 2.0},
                                           GammaCase{4.0, 0.5},
                                           GammaCase{20.0, 3.0}));

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[static_cast<size_t>(rng.NextCategorical(weights))];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.01);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(37);
  std::vector<double> samples;
  for (int i = 0; i < 50001; ++i) samples.push_back(rng.NextLogNormal(1.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 25000, samples.end());
  EXPECT_NEAR(samples[25000], std::exp(1.0), 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Split();
  // The child stream should not mirror the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace upskill
