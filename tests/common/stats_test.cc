#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace upskill {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);      // population
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats whole;
  const std::vector<double> a = {1.0, 2.5, -3.0, 0.0};
  const std::vector<double> b = {10.0, 7.5, 2.0};
  for (double v : a) {
    left.Add(v);
    whole.Add(v);
  }
  for (double v : b) {
    right.Add(v);
    whole.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats stats;
  stats.Add(3.0);
  RunningStats empty;
  stats.Merge(empty);
  EXPECT_EQ(stats.count(), 1u);
  empty.Merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(StatsFreeFunctionsTest, MeanAndVariance) {
  const std::vector<double> values = {1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(Mean(values), 3.0);
  EXPECT_NEAR(Variance(values), 8.0 / 3.0, 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
}

}  // namespace
}  // namespace upskill
