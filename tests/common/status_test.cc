#include "common/status.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> result(NoDefault(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().value, 5);
  Result<NoDefault> error(Status::Internal("nope"));
  EXPECT_FALSE(error.ok());
}

Status FailingHelper() { return Status::IoError("disk"); }

Status UsesReturnIfError() {
  UPSKILL_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace upskill
