#include "common/string_util.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiter) {
  const auto parts = Split("solo", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "solo");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  hi \t\r\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseIntTest, Valid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt(" 13 ").value(), 13);
}

TEST(ParseIntTest, Invalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("12abc").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 0 ").value(), 0.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("meta:release", "meta:"));
  EXPECT_FALSE(StartsWith("met", "meta:"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

}  // namespace
}  // namespace upskill
