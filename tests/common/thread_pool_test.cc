#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace upskill {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> values(64, 0);
  ParallelFor(nullptr, 0, values.size(), [&values](size_t i) {
    values[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, [&calls](size_t) { ++calls; });
  ParallelFor(&pool, 7, 3, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SubrangeOffsets) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  ParallelFor(&pool, 5, 15, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<long long> contributions(n, 0);
  ParallelFor(&pool, 0, n, [&contributions](size_t i) {
    contributions[i] = static_cast<long long>(i) * 3 - 1;
  });
  long long expected = 0;
  for (size_t i = 0; i < n; ++i) expected += static_cast<long long>(i) * 3 - 1;
  EXPECT_EQ(std::accumulate(contributions.begin(), contributions.end(), 0LL),
            expected);
}

}  // namespace
}  // namespace upskill
