#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace upskill {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> values(64, 0);
  ParallelFor(nullptr, 0, values.size(), [&values](size_t i) {
    values[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, [&calls](size_t) { ++calls; });
  ParallelFor(&pool, 7, 3, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SubrangeOffsets) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  ParallelFor(&pool, 5, 15, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<long long> contributions(n, 0);
  ParallelFor(&pool, 0, n, [&contributions](size_t i) {
    contributions[i] = static_cast<long long>(i) * 3 - 1;
  });
  long long expected = 0;
  for (size_t i = 0; i < n; ++i) expected += static_cast<long long>(i) * 3 - 1;
  EXPECT_EQ(std::accumulate(contributions.begin(), contributions.end(), 0LL),
            expected);
}

// Regression test: ParallelFor used to block on the pool-global Wait(),
// so two concurrent loops on one pool could each return while the other's
// iterations were still running (or deadlock when nested). The per-call
// latch must make every loop observe exactly its own completed body.
TEST(ParallelForTest, ConcurrentLoopsOnOnePoolSeeOwnCompletion) {
  ThreadPool pool(4);
  constexpr int kLoops = 8;
  constexpr size_t kPerLoop = 500;
  std::vector<std::vector<int>> results(kLoops,
                                        std::vector<int>(kPerLoop, 0));
  std::vector<std::thread> callers;
  callers.reserve(kLoops);
  for (int loop = 0; loop < kLoops; ++loop) {
    callers.emplace_back([&pool, &results, loop] {
      ParallelFor(&pool, 0, kPerLoop, [&results, loop](size_t i) {
        results[loop][i] = loop + 1;
      });
      // The loop returned: all of *its* writes must be visible, even
      // while the other loops are still in flight.
      for (size_t i = 0; i < kPerLoop; ++i) {
        EXPECT_EQ(results[loop][i], loop + 1) << "loop " << loop << " i " << i;
      }
    });
  }
  for (std::thread& t : callers) t.join();
}

TEST(ParallelForTest, NestedLoopsOnOnePoolComplete) {
  ThreadPool pool(2);  // fewer workers than outer iterations
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::vector<std::atomic<int>>> hits(kOuter);
  for (auto& row : hits) {
    row = std::vector<std::atomic<int>>(kInner);
  }
  // Caller participation guarantees progress even when every worker is
  // blocked inside an outer iteration waiting on its inner loop.
  ParallelFor(&pool, 0, kOuter, [&](size_t outer) {
    ParallelFor(&pool, 0, kInner, [&hits, outer](size_t inner) {
      hits[outer][inner].fetch_add(1);
    });
  });
  for (size_t outer = 0; outer < kOuter; ++outer) {
    for (size_t inner = 0; inner < kInner; ++inner) {
      EXPECT_EQ(hits[outer][inner].load(), 1) << outer << "," << inner;
    }
  }
}

TEST(ParallelForChunkedTest, ChunksTileRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kBegin = 17;
  constexpr size_t kEnd = 4711;
  std::vector<std::atomic<int>> hits(kEnd);
  ParallelForChunked(&pool, kBegin, kEnd,
                     [&](int /*slot*/, size_t chunk_begin, size_t chunk_end) {
                       EXPECT_LT(chunk_begin, chunk_end);
                       for (size_t i = chunk_begin; i < chunk_end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  for (size_t i = 0; i < kEnd; ++i) {
    EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << i;
  }
}

TEST(ParallelForChunkedTest, SlotsStayWithinMaxSlots) {
  ThreadPool pool(3);
  const int max_slots = ParallelMaxSlots(&pool);
  EXPECT_EQ(max_slots, 4);  // 3 workers + calling thread
  std::atomic<int> bad_slots{0};
  std::vector<std::atomic<int>> slot_seen(static_cast<size_t>(max_slots));
  ParallelForChunked(&pool, 0, 10000,
                     [&](int slot, size_t chunk_begin, size_t chunk_end) {
                       if (slot < 0 || slot >= max_slots) {
                         bad_slots.fetch_add(1);
                         return;
                       }
                       slot_seen[static_cast<size_t>(slot)].fetch_add(
                           static_cast<int>(chunk_end - chunk_begin));
                     });
  EXPECT_EQ(bad_slots.load(), 0);
  int total = 0;
  for (auto& s : slot_seen) total += s.load();
  EXPECT_EQ(total, 10000);
}

TEST(ParallelForChunkedTest, NullPoolRunsInlineOnSlotZero) {
  EXPECT_EQ(ParallelMaxSlots(nullptr), 1);
  std::vector<int> values(100, 0);
  ParallelForChunked(nullptr, 0, values.size(),
                     [&](int slot, size_t chunk_begin, size_t chunk_end) {
                       EXPECT_EQ(slot, 0);
                       for (size_t i = chunk_begin; i < chunk_end; ++i) {
                         values[i] = 1;
                       }
                     });
  for (int v : values) EXPECT_EQ(v, 1);
}

TEST(ParallelForChunkedTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelForChunked(&pool, 9, 9, [&](int, size_t, size_t) { ++calls; });
  ParallelForChunked(&pool, 9, 4, [&](int, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace upskill
