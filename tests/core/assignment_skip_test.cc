// Dirty-user skipping in the assignment step must be invisible in the
// results: a trainer run with incremental_assignment enabled produces the
// exact assignments, likelihood trace, and model of a run that re-solves
// every user's DP each iteration. These tests pin that invariant across
// transition models and the forgetting extension, and exercise the
// AssignmentEngine's skip machinery directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/trainer.h"
#include "datagen/synthetic.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeData(uint64_t seed = 42) {
  datagen::SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 200;
  config.mean_sequence_length = 25.0;
  config.seed = seed;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

// Trains twice — skipping on vs. off — and requires bitwise-identical
// outcomes. Returns the skipping run's result for further checks.
TrainResult ExpectSkippingInvisible(SkillModelConfig config,
                                    const Dataset& dataset) {
  config.incremental_assignment = true;
  auto with_skip = Trainer(config).Train(dataset);
  EXPECT_TRUE(with_skip.ok());

  config.incremental_assignment = false;
  auto without_skip = Trainer(config).Train(dataset);
  EXPECT_TRUE(without_skip.ok());

  const TrainResult& a = with_skip.value();
  const TrainResult& b = without_skip.value();
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.log_likelihood_trace.size(), b.log_likelihood_trace.size());
  for (size_t i = 0; i < std::min(a.log_likelihood_trace.size(),
                                  b.log_likelihood_trace.size());
       ++i) {
    // Bitwise: carried-forward per-user log-likelihoods feed the same
    // serial reduction as freshly solved ones.
    EXPECT_EQ(a.log_likelihood_trace[i], b.log_likelihood_trace[i])
        << "iteration " << i;
  }
  EXPECT_EQ(a.user_classes, b.user_classes);

  // The full-pass run never skips; both account for every user-iteration.
  EXPECT_EQ(b.skipped_users, 0u);
  const size_t user_iterations =
      static_cast<size_t>(dataset.num_users()) *
      static_cast<size_t>(a.iterations);
  EXPECT_EQ(a.skipped_users + a.reassigned_users, user_iterations);
  EXPECT_EQ(b.reassigned_users, user_iterations);
  return a;
}

TEST(AssignmentSkipTest, InvisibleWithoutTransitions) {
  const datagen::GeneratedData data = MakeData(1);
  SkillModelConfig config;
  config.num_levels = 4;
  config.min_init_actions = 10;
  config.parallel.num_threads = 4;
  config.parallel.users = true;
  ExpectSkippingInvisible(config, data.dataset);
}

TEST(AssignmentSkipTest, InvisibleWithGlobalTransitions) {
  const datagen::GeneratedData data = MakeData(2);
  SkillModelConfig config;
  config.num_levels = 4;
  config.min_init_actions = 10;
  config.transitions = TransitionModel::kGlobal;
  ExpectSkippingInvisible(config, data.dataset);
}

TEST(AssignmentSkipTest, InvisibleWithForgetting) {
  const datagen::GeneratedData data = MakeData(3);
  SkillModelConfig config;
  config.num_levels = 4;
  config.min_init_actions = 10;
  config.forgetting.enabled = true;
  config.forgetting.gap_threshold = 50;
  config.forgetting.drop_probability = 0.1;
  ExpectSkippingInvisible(config, data.dataset);
}

TEST(AssignmentSkipTest, InvisibleWithProgressionClasses) {
  const datagen::GeneratedData data = MakeData(4);
  SkillModelConfig config;
  config.num_levels = 3;
  config.min_init_actions = 10;
  config.transitions = TransitionModel::kPerClass;
  config.num_progression_classes = 2;
  ExpectSkippingInvisible(config, data.dataset);
}

// A dataset whose uniform-segmentation initialization is already the DP
// optimum: 3 groups of level-pure items, every user playing 4 items of
// each group in order. Iteration 0 reproduces the initial assignments, so
// the refit leaves every parameter bitwise unchanged, iteration 1 finds
// zero dirty items, and the engine skips every user.
TEST(AssignmentSkipTest, StableDatasetSkipsEveryUser) {
  constexpr int kLevels = 3;
  constexpr int kItemsPerLevel = 10;
  constexpr int kUsers = 20;
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(kLevels * kItemsPerLevel).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < kLevels * kItemsPerLevel; ++i) {
    const double row[] = {static_cast<double>(i)};
    ASSERT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  for (int u = 0; u < kUsers; ++u) {
    const UserId user = dataset.AddUser();
    int64_t time = 0;
    for (int group = 0; group < kLevels; ++group) {
      for (int k = 0; k < 4; ++k) {
        const ItemId item = static_cast<ItemId>(
            group * kItemsPerLevel + (u + k) % kItemsPerLevel);
        ASSERT_TRUE(dataset.AddAction(user, time++, item).ok());
      }
    }
  }

  SkillModelConfig config;
  config.num_levels = kLevels;
  config.min_init_actions = 5;
  auto result = Trainer(config).Train(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().converged);
  // Iteration 0 is a full pass; iteration 1 skips everyone and converges.
  EXPECT_EQ(result.value().skipped_users, static_cast<size_t>(kUsers));
  for (const std::vector<int>& levels : result.value().assignments) {
    EXPECT_EQ(levels, (std::vector<int>{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}));
  }
}

// Engine-level: a pass with no dirty items skips everyone and changes
// nothing; dirtying one item re-solves exactly the users playing it, and
// the result matches a from-scratch full pass over the perturbed cache.
TEST(AssignmentSkipTest, EnginePartialDirtyPass) {
  const datagen::GeneratedData data = MakeData(5);
  const Dataset& dataset = data.dataset;
  SkillModelConfig config;
  config.num_levels = 4;
  auto created = SkillModel::Create(dataset.schema(), config);
  ASSERT_TRUE(created.ok());
  const SkillModel& model = created.value();
  std::vector<double> cache = model.ItemLogProbCache(dataset.items());
  const size_t num_users = static_cast<size_t>(dataset.num_users());
  const size_t num_items =
      cache.size() / static_cast<size_t>(config.num_levels);
  ASSERT_GE(num_items, 1u);

  AssignmentEngine engine(dataset, config.num_levels);
  const AssignmentStats full =
      engine.Assign(model, cache, nullptr, nullptr, {});
  EXPECT_EQ(full.reassigned_users, num_users);
  const SkillAssignments baseline = engine.assignments();

  // All-clean pass: every user skipped, results carried forward bitwise.
  const std::vector<uint8_t> clean(num_items, 0);
  const AssignmentStats skipped = engine.Assign(
      model, cache, nullptr, nullptr, {}, &clean, /*weights_changed=*/false);
  EXPECT_EQ(skipped.skipped_users, num_users);
  EXPECT_EQ(skipped.reassigned_users, 0u);
  EXPECT_FALSE(skipped.changed);
  EXPECT_EQ(skipped.log_likelihood, full.log_likelihood);
  EXPECT_EQ(engine.assignments(), baseline);

  // Perturb one item's rows and flag it: only its players re-solve.
  const ItemId dirty_item = static_cast<ItemId>(num_items / 2);
  for (int s = 0; s < config.num_levels; ++s) {
    cache[static_cast<size_t>(dirty_item) * config.num_levels + s] -=
        0.5 * (s + 1);
  }
  std::vector<uint8_t> dirty(num_items, 0);
  dirty[static_cast<size_t>(dirty_item)] = 1;
  size_t players = 0;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    for (const Action& a : dataset.sequence(u)) {
      if (a.item == dirty_item) {
        ++players;
        break;
      }
    }
  }
  const AssignmentStats partial = engine.Assign(
      model, cache, nullptr, nullptr, {}, &dirty, /*weights_changed=*/false);
  EXPECT_EQ(partial.reassigned_users, players);
  EXPECT_EQ(partial.skipped_users, num_users - players);

  AssignmentEngine fresh(dataset, config.num_levels);
  const AssignmentStats oracle =
      fresh.Assign(model, cache, nullptr, nullptr, {});
  EXPECT_EQ(engine.assignments(), fresh.assignments());
  EXPECT_EQ(partial.log_likelihood, oracle.log_likelihood);
}

}  // namespace
}  // namespace upskill
