#include "core/assignments_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace upskill {
namespace {

class AssignmentsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("upskill_assign_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void Write(const char* contents) {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(contents, f);
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(AssignmentsIoTest, RoundTrip) {
  const SkillAssignments original = {{1, 1, 2, 3}, {}, {2, 2}, {5}};
  ASSERT_TRUE(SaveAssignments(original, path_).ok());
  const auto loaded = LoadAssignments(path_, 4, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), original);
}

TEST_F(AssignmentsIoTest, EmptyAssignments) {
  ASSERT_TRUE(SaveAssignments({}, path_).ok());
  const auto loaded = LoadAssignments(path_, 3, 5);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  for (const auto& seq : loaded.value()) EXPECT_TRUE(seq.empty());
}

TEST_F(AssignmentsIoTest, OutOfOrderRowsAreAccepted) {
  Write("user,position,level\n0,1,2\n0,0,1\n");
  const auto loaded = LoadAssignments(path_, 1, 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0], (std::vector<int>{1, 2}));
}

TEST_F(AssignmentsIoTest, RejectsBadRows) {
  Write("user,position,level\n0,0\n");
  EXPECT_FALSE(LoadAssignments(path_, 1, 3).ok());
  Write("user,position,level\n5,0,1\n");
  EXPECT_FALSE(LoadAssignments(path_, 1, 3).ok());  // user out of range
  Write("user,position,level\n0,0,9\n");
  EXPECT_FALSE(LoadAssignments(path_, 1, 3).ok());  // level out of range
  Write("user,position,level\n0,0,1\n0,2,1\n");
  EXPECT_FALSE(LoadAssignments(path_, 1, 3).ok());  // gap at position 1
  Write("user,position,level\n0,0,1\n0,0,2\n");
  EXPECT_FALSE(LoadAssignments(path_, 1, 3).ok());  // duplicate position
  EXPECT_FALSE(LoadAssignments(path_, -1, 3).ok());
}

TEST_F(AssignmentsIoTest, DuplicateRowsAreAHardErrorDistinctFromGaps) {
  // A repeated (user, position) pair is reported as a duplicate, even when
  // the repeated row carries the same level (a silent last-writer-wins
  // here would mask corrupt writers).
  Write("user,position,level\n0,0,1\n0,1,2\n0,1,2\n");
  const auto duplicate = LoadAssignments(path_, 1, 3);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().ToString().find("duplicate"),
            std::string::npos)
      << duplicate.status().ToString();

  // A gap keeps its own message.
  Write("user,position,level\n0,0,1\n0,2,1\n");
  const auto gap = LoadAssignments(path_, 1, 3);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().ToString().find("duplicate"), std::string::npos);
  EXPECT_NE(gap.status().ToString().find("gapless"), std::string::npos)
      << gap.status().ToString();

  // Duplicates on other users are caught too.
  Write("user,position,level\n0,0,1\n1,0,2\n1,0,2\n");
  EXPECT_FALSE(LoadAssignments(path_, 2, 3).ok());
}

TEST_F(AssignmentsIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadAssignments(path_ + ".missing", 1, 3).ok());
}

}  // namespace
}  // namespace upskill
