#include "core/difficulty.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/categorical.h"
#include "dist/poisson.h"

namespace upskill {
namespace {

Dataset MakeDataset(int num_items) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(num_items).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {-1.0};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  return Dataset(std::move(items));
}

TEST(AssignmentDifficultyTest, AveragesSelectingLevels) {
  Dataset dataset = MakeDataset(3);
  const UserId u0 = dataset.AddUser();
  const UserId u1 = dataset.AddUser();
  // Item 0 selected at levels 1 and 5 -> difficulty 3 (the paper's
  // illustration below Equation 8). Item 1 selected once at level 2.
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u0, 2, 1).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 1, 0).ok());
  const SkillAssignments assignments = {{1, 2}, {5}};
  const std::vector<double> difficulty =
      EstimateDifficultyByAssignment(dataset, assignments);
  ASSERT_EQ(difficulty.size(), 3u);
  EXPECT_DOUBLE_EQ(difficulty[0], 3.0);
  EXPECT_DOUBLE_EQ(difficulty[1], 2.0);
  EXPECT_TRUE(std::isnan(difficulty[2]));  // never selected
}

TEST(PriorTest, UniformPrior) {
  const std::vector<double> prior = UniformSkillPrior(4);
  ASSERT_EQ(prior.size(), 4u);
  for (double p : prior) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(PriorTest, EmpiricalPriorCountsLevels) {
  const SkillAssignments assignments = {{1, 1, 2}, {3}};
  const std::vector<double> prior = EmpiricalSkillPrior(assignments, 3);
  ASSERT_EQ(prior.size(), 3u);
  EXPECT_DOUBLE_EQ(prior[0], 0.5);
  EXPECT_DOUBLE_EQ(prior[1], 0.25);
  EXPECT_DOUBLE_EQ(prior[2], 0.25);
}

TEST(PriorTest, EmpiricalPriorFallsBackToUniform) {
  const std::vector<double> prior = EmpiricalSkillPrior({}, 2);
  EXPECT_DOUBLE_EQ(prior[0], 0.5);
  EXPECT_DOUBLE_EQ(prior[1], 0.5);
}

// Model where item generation cleanly separates two levels.
class GenerationDifficultyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FeatureSchema schema;
    ASSERT_TRUE(schema.AddIdFeature(2).ok());
    SkillModelConfig config;
    config.num_levels = 2;
    auto created = SkillModel::Create(schema, config);
    ASSERT_TRUE(created.ok());
    model_ = std::make_unique<SkillModel>(std::move(created).value());
    auto* level1 = static_cast<Categorical*>(model_->mutable_component(0, 1));
    ASSERT_TRUE(level1->SetProbabilities(std::vector<double>{0.9, 0.1}).ok());
    auto* level2 = static_cast<Categorical*>(model_->mutable_component(0, 2));
    ASSERT_TRUE(level2->SetProbabilities(std::vector<double>{0.1, 0.9}).ok());

    FeatureSchema item_schema;
    ASSERT_TRUE(item_schema.AddIdFeature(2).ok());
    items_ = std::make_unique<ItemTable>(std::move(item_schema));
    for (int i = 0; i < 2; ++i) {
      const double row[] = {-1.0};
      ASSERT_TRUE(items_->AddItem(row).ok());
    }
  }

  std::unique_ptr<SkillModel> model_;
  std::unique_ptr<ItemTable> items_;
};

TEST_F(GenerationDifficultyTest, UniformPriorMatchesBayesByHand) {
  const auto difficulty = EstimateDifficultyByGeneration(
      *items_, *model_, UniformSkillPrior(2));
  ASSERT_TRUE(difficulty.ok());
  // Item 0: P(s=1|i) = 0.9 / (0.9 + 0.1) = 0.9 -> d = 1*0.9 + 2*0.1 = 1.1.
  EXPECT_NEAR(difficulty.value()[0], 1.1, 1e-9);
  EXPECT_NEAR(difficulty.value()[1], 1.9, 1e-9);
}

TEST_F(GenerationDifficultyTest, SkewedPriorShiftsEstimates) {
  const std::vector<double> prior = {0.99, 0.01};
  const auto difficulty =
      EstimateDifficultyByGeneration(*items_, *model_, prior);
  ASSERT_TRUE(difficulty.ok());
  // Posterior for item 1: P(2|i) = 0.9*0.01 / (0.1*0.99 + 0.9*0.01).
  const double p2 = 0.9 * 0.01 / (0.1 * 0.99 + 0.9 * 0.01);
  EXPECT_NEAR(difficulty.value()[1], 1.0 + p2, 1e-9);
  EXPECT_LT(difficulty.value()[1], 1.9);  // pulled toward the prior
}

TEST_F(GenerationDifficultyTest, EnumOverloadWiresPriors) {
  const SkillAssignments assignments = {{1, 1, 1, 2}};
  const auto uniform = EstimateDifficultyByGeneration(
      *items_, *model_, DifficultyPrior::kUniform, assignments);
  const auto empirical = EstimateDifficultyByGeneration(
      *items_, *model_, DifficultyPrior::kEmpirical, assignments);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(empirical.ok());
  // The empirical prior (75% level 1) pulls difficulty down.
  EXPECT_LT(empirical.value()[1], uniform.value()[1]);
}

TEST_F(GenerationDifficultyTest, ValidatesPrior) {
  EXPECT_FALSE(EstimateDifficultyByGeneration(*items_, *model_,
                                              std::vector<double>{1.0})
                   .ok());
  EXPECT_FALSE(EstimateDifficultyByGeneration(
                   *items_, *model_, std::vector<double>{-0.5, 1.5})
                   .ok());
  EXPECT_FALSE(EstimateDifficultyByGeneration(*items_, *model_,
                                              std::vector<double>{0.0, 0.0})
                   .ok());
}

TEST_F(GenerationDifficultyTest, ShrunkenBlendsBySupport) {
  // Dataset: item 0 selected 8 times at level 2, item 1 never selected.
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(2).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 2; ++i) {
    const double row[] = {-1.0};
    ASSERT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  const UserId u = dataset.AddUser();
  for (int n = 0; n < 8; ++n) {
    ASSERT_TRUE(dataset.AddAction(u, n, 0).ok());
  }
  const SkillAssignments assignments = {{2, 2, 2, 2, 2, 2, 2, 2}};

  const auto generation = EstimateDifficultyByGeneration(
      dataset.items(), *model_, DifficultyPrior::kUniform, assignments);
  ASSERT_TRUE(generation.ok());
  const auto shrunken = EstimateDifficultyShrunken(
      dataset, *model_, assignments, DifficultyPrior::kUniform,
      /*generation_weight=*/4.0);
  ASSERT_TRUE(shrunken.ok());

  // Item 0: blend of assignment (2.0, weight 8) and generation (weight 4).
  const double expected0 =
      (8.0 * 2.0 + 4.0 * generation.value()[0]) / 12.0;
  EXPECT_NEAR(shrunken.value()[0], expected0, 1e-9);
  // Item 1 (unseen): pure generation estimate.
  EXPECT_DOUBLE_EQ(shrunken.value()[1], generation.value()[1]);
  // Weight must be positive.
  EXPECT_FALSE(EstimateDifficultyShrunken(dataset, *model_, assignments,
                                          DifficultyPrior::kUniform, 0.0)
                   .ok());
}

TEST_F(GenerationDifficultyTest, ShrunkenLimitsRecoverComponents) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(2).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 2; ++i) {
    const double row[] = {-1.0};
    ASSERT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 0, 0).ok());
  const SkillAssignments assignments = {{1}};

  // Tiny weight ~ assignment value for selected items.
  const auto tiny = EstimateDifficultyShrunken(
      dataset, *model_, assignments, DifficultyPrior::kUniform, 1e-9);
  ASSERT_TRUE(tiny.ok());
  EXPECT_NEAR(tiny.value()[0], 1.0, 1e-6);
  // Huge weight ~ generation value.
  const auto generation = EstimateDifficultyByGeneration(
      dataset.items(), *model_, DifficultyPrior::kUniform, assignments);
  ASSERT_TRUE(generation.ok());
  const auto huge = EstimateDifficultyShrunken(
      dataset, *model_, assignments, DifficultyPrior::kUniform, 1e9);
  ASSERT_TRUE(huge.ok());
  EXPECT_NEAR(huge.value()[0], generation.value()[0], 1e-6);
}

TEST_F(GenerationDifficultyTest, DifficultyStaysOnScale) {
  const auto difficulty = EstimateDifficultyByGeneration(
      *items_, *model_, UniformSkillPrior(2));
  ASSERT_TRUE(difficulty.ok());
  for (double d : difficulty.value()) {
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 2.0);
  }
}

}  // namespace
}  // namespace upskill
