#include "core/dominance.h"

#include <gtest/gtest.h>

#include "dist/categorical.h"

namespace upskill {
namespace {

class DominanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FeatureSchema schema;
    ASSERT_TRUE(
        schema.AddCategorical("style", 4, {"lager", "ale", "ipa", "stout"})
            .ok());
    ASSERT_TRUE(schema.AddCount("steps").ok());
    SkillModelConfig config;
    config.num_levels = 3;
    auto created = SkillModel::Create(schema, config);
    ASSERT_TRUE(created.ok());
    model_ = std::make_unique<SkillModel>(std::move(created).value());
    auto* low = static_cast<Categorical*>(model_->mutable_component(0, 1));
    ASSERT_TRUE(
        low->SetProbabilities(std::vector<double>{0.6, 0.2, 0.1, 0.1}).ok());
    auto* high = static_cast<Categorical*>(model_->mutable_component(0, 3));
    ASSERT_TRUE(
        high->SetProbabilities(std::vector<double>{0.1, 0.2, 0.4, 0.3}).ok());
  }

  std::unique_ptr<SkillModel> model_;
};

TEST_F(DominanceTest, SkilledDominanceIsHighMinusLow) {
  const auto top = TopDominantCategories(*model_, 0, 2, /*skilled=*/true);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.value().size(), 2u);
  EXPECT_EQ(top.value()[0].label, "ipa");      // +0.3
  EXPECT_NEAR(top.value()[0].score, 0.3, 1e-12);
  EXPECT_EQ(top.value()[1].label, "stout");    // +0.2
}

TEST_F(DominanceTest, UnskilledDominanceIsMostNegative) {
  const auto top = TopDominantCategories(*model_, 0, 2, /*skilled=*/false);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value()[0].label, "lager");    // -0.5
  EXPECT_NEAR(top.value()[0].score, -0.5, 1e-12);
  EXPECT_EQ(top.value()[1].label, "ale");      // 0.0 (least positive left)
}

TEST_F(DominanceTest, KLargerThanCardinalityIsClamped) {
  const auto top = TopDominantCategories(*model_, 0, 99, true);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value().size(), 4u);
}

TEST_F(DominanceTest, RejectsNonCategoricalFeature) {
  EXPECT_FALSE(TopDominantCategories(*model_, 1, 3, true).ok());
  EXPECT_FALSE(TopFrequentCategories(*model_, 1, 1, 3).ok());
  EXPECT_FALSE(TopDominantCategories(*model_, 9, 3, true).ok());
}

TEST_F(DominanceTest, TopFrequentCategoriesSortsByProbability) {
  const auto top = TopFrequentCategories(*model_, 0, 1, 3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.value().size(), 3u);
  EXPECT_EQ(top.value()[0].label, "lager");
  EXPECT_NEAR(top.value()[0].score, 0.6, 1e-12);
  EXPECT_EQ(top.value()[1].label, "ale");
}

TEST_F(DominanceTest, TopFrequentValidatesLevel) {
  EXPECT_FALSE(TopFrequentCategories(*model_, 0, 0, 3).ok());
  EXPECT_FALSE(TopFrequentCategories(*model_, 0, 4, 3).ok());
}

TEST_F(DominanceTest, MissingLabelsYieldEmptyStrings) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCategorical("unlabeled", 3).ok());
  SkillModelConfig config;
  config.num_levels = 2;
  auto model = SkillModel::Create(schema, config);
  ASSERT_TRUE(model.ok());
  const auto top = TopFrequentCategories(model.value(), 0, 1, 2);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value()[0].label, "");
}

}  // namespace
}  // namespace upskill
