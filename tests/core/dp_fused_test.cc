#include "core/dp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Gathers the per-user n×S lattice the materialized solvers consume, the
// way the seed assignment step used to.
std::vector<double> Materialize(const std::vector<double>& item_log_probs,
                                const std::vector<int32_t>& items,
                                int levels) {
  std::vector<double> log_probs(items.size() * static_cast<size_t>(levels));
  for (size_t t = 0; t < items.size(); ++t) {
    for (int s = 0; s < levels; ++s) {
      log_probs[t * static_cast<size_t>(levels) + static_cast<size_t>(s)] =
          item_log_probs[static_cast<size_t>(items[t]) * levels + s];
    }
  }
  return log_probs;
}

struct RandomConfig {
  int levels;
  std::vector<double> item_log_probs;  // [item * S + s]
  std::vector<int32_t> items;          // sequence
  std::vector<double> log_initial;     // may be empty
  double log_stay;
  double log_up;
  std::vector<uint8_t> allow_down;     // size n - 1 (or empty for n <= 1)
  double log_down;
};

RandomConfig MakeRandomConfig(Rng& rng) {
  RandomConfig config;
  config.levels = static_cast<int>(rng.NextIntInRange(1, 8));
  const int num_items = static_cast<int>(rng.NextIntInRange(1, 50));
  config.item_log_probs.resize(static_cast<size_t>(num_items) *
                               config.levels);
  for (double& v : config.item_log_probs) {
    // Mostly finite log-probs, occasionally -inf (zero-probability cells
    // happen with unsmoothed categorical features).
    v = rng.NextBernoulli(0.05) ? kNegInf : -10.0 * rng.NextDouble();
  }
  const size_t n = static_cast<size_t>(rng.NextIntInRange(0, 40));
  config.items.resize(n);
  for (int32_t& item : config.items) {
    item = static_cast<int32_t>(rng.NextInt(num_items));
  }
  if (rng.NextBernoulli(0.5)) {
    config.log_initial.resize(static_cast<size_t>(config.levels));
    for (double& v : config.log_initial) {
      v = rng.NextBernoulli(0.05) ? kNegInf : -5.0 * rng.NextDouble();
    }
  }
  // Sometimes zero transition costs (the plain-DP special case).
  if (rng.NextBernoulli(0.25)) {
    config.log_stay = 0.0;
    config.log_up = 0.0;
  } else {
    config.log_stay = -3.0 * rng.NextDouble();
    config.log_up = -3.0 * rng.NextDouble();
  }
  if (n > 1) {
    config.allow_down.resize(n - 1);
    for (uint8_t& flag : config.allow_down) {
      flag = rng.NextBernoulli(0.3) ? 1 : 0;
    }
  }
  config.log_down = -4.0 * rng.NextDouble();
  return config;
}

TEST(DpFusedTest, MatchesMaterializedSolverOnRandomConfigs) {
  Rng rng(20260806);
  DpScratch scratch;  // reused across trials, like the assignment engine
  for (int trial = 0; trial < 200; ++trial) {
    const RandomConfig config = MakeRandomConfig(rng);
    const std::vector<double> log_probs =
        Materialize(config.item_log_probs, config.items, config.levels);

    const MonotonePath expected = SolveMonotonePathWithTransitions(
        log_probs, config.levels, config.log_initial, config.log_stay,
        config.log_up);
    const double ll = SolveMonotonePathItems(
        config.item_log_probs, config.items, config.levels,
        config.log_initial, config.log_stay, config.log_up, scratch);
    EXPECT_EQ(expected.levels, scratch.levels) << "trial " << trial;
    // Bitwise: the fused kernel must follow the exact arithmetic order.
    EXPECT_EQ(expected.log_likelihood, ll) << "trial " << trial;
  }
}

TEST(DpFusedTest, MatchesPlainSolverWithZeroCosts) {
  Rng rng(7);
  DpScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    const RandomConfig config = MakeRandomConfig(rng);
    const std::vector<double> log_probs =
        Materialize(config.item_log_probs, config.items, config.levels);
    const MonotonePath expected = SolveMonotonePath(log_probs, config.levels);
    const double ll =
        SolveMonotonePathItems(config.item_log_probs, config.items,
                               config.levels, {}, 0.0, 0.0, scratch);
    EXPECT_EQ(expected.levels, scratch.levels) << "trial " << trial;
    EXPECT_EQ(expected.log_likelihood, ll) << "trial " << trial;
  }
}

TEST(DpFusedTest, MatchesForgettingSolverOnRandomConfigs) {
  Rng rng(31337);
  DpScratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    const RandomConfig config = MakeRandomConfig(rng);
    const std::vector<double> log_probs =
        Materialize(config.item_log_probs, config.items, config.levels);

    const MonotonePath expected = SolveMonotonePathWithForgetting(
        log_probs, config.levels, config.log_initial, config.log_stay,
        config.log_up, config.allow_down, config.log_down);
    const double ll = SolveMonotonePathItemsWithForgetting(
        config.item_log_probs, config.items, config.levels,
        config.log_initial, config.log_stay, config.log_up,
        config.allow_down, config.log_down, scratch);
    EXPECT_EQ(expected.levels, scratch.levels) << "trial " << trial;
    EXPECT_EQ(expected.log_likelihood, ll) << "trial " << trial;
  }
}

TEST(DpFusedTest, EmptySequenceYieldsEmptyPath) {
  DpScratch scratch;
  scratch.levels.assign(3, 7);  // stale content must be cleared
  const std::vector<double> item_log_probs(4, -1.0);
  const double ll =
      SolveMonotonePathItems(item_log_probs, {}, 2, {}, -0.5, -1.5, scratch);
  EXPECT_TRUE(scratch.levels.empty());
  EXPECT_EQ(0.0, ll);
  const double forgetting_ll = SolveMonotonePathItemsWithForgetting(
      item_log_probs, {}, 2, {}, -0.5, -1.5, {}, -2.0, scratch);
  EXPECT_TRUE(scratch.levels.empty());
  EXPECT_EQ(0.0, forgetting_ll);
}

}  // namespace
}  // namespace upskill
