#include "core/dp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace {

// Brute-force reference: enumerate all monotone unit-step paths.
double BestPathByEnumeration(const std::vector<double>& log_probs, size_t n,
                             int levels) {
  double best = -std::numeric_limits<double>::infinity();
  // A path is determined by the start level and the (sorted) set of
  // positions where it steps up; enumerate recursively.
  struct Enumerator {
    const std::vector<double>& lp;
    size_t n;
    int levels;
    double best = -std::numeric_limits<double>::infinity();
    void Visit(size_t t, int level, double sum) {
      sum += lp[t * static_cast<size_t>(levels) + static_cast<size_t>(level - 1)];
      if (t + 1 == n) {
        best = std::max(best, sum);
        return;
      }
      Visit(t + 1, level, sum);
      if (level < levels) Visit(t + 1, level + 1, sum);
    }
  };
  Enumerator enumerator{log_probs, n, levels};
  for (int start = 1; start <= levels; ++start) {
    enumerator.Visit(0, start, 0.0);
  }
  best = enumerator.best;
  return best;
}

double PathScore(const std::vector<double>& log_probs,
                 const std::vector<int>& path, int levels) {
  double sum = 0.0;
  for (size_t t = 0; t < path.size(); ++t) {
    sum += log_probs[t * static_cast<size_t>(levels) +
                     static_cast<size_t>(path[t] - 1)];
  }
  return sum;
}

bool IsMonotoneUnitStep(const std::vector<int>& path, int levels) {
  for (size_t t = 0; t < path.size(); ++t) {
    if (path[t] < 1 || path[t] > levels) return false;
    if (t > 0 && (path[t] < path[t - 1] || path[t] > path[t - 1] + 1)) {
      return false;
    }
  }
  return true;
}

TEST(SolveMonotonePathTest, EmptyInput) {
  const MonotonePath path = SolveMonotonePath({}, 3);
  EXPECT_TRUE(path.levels.empty());
  EXPECT_EQ(path.log_likelihood, 0.0);
}

TEST(SolveMonotonePathTest, SingleActionPicksArgmax) {
  const std::vector<double> lp = {-3.0, -1.0, -2.0};
  const MonotonePath path = SolveMonotonePath(lp, 3);
  ASSERT_EQ(path.levels.size(), 1u);
  EXPECT_EQ(path.levels[0], 2);
  EXPECT_DOUBLE_EQ(path.log_likelihood, -1.0);
}

TEST(SolveMonotonePathTest, SingleLevelIsTrivial) {
  const std::vector<double> lp = {-1.0, -2.0, -3.0};
  const MonotonePath path = SolveMonotonePath(lp, 1);
  EXPECT_EQ(path.levels, (std::vector<int>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(path.log_likelihood, -6.0);
}

TEST(SolveMonotonePathTest, ClimbsWhenEvidenceDemands) {
  // Three actions whose best levels are 1, 2, 3.
  const std::vector<double> lp = {
      -1.0, -9.0, -9.0,  // t=0 favors level 1
      -9.0, -1.0, -9.0,  // t=1 favors level 2
      -9.0, -9.0, -1.0,  // t=2 favors level 3
  };
  const MonotonePath path = SolveMonotonePath(lp, 3);
  EXPECT_EQ(path.levels, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(path.log_likelihood, -3.0);
}

TEST(SolveMonotonePathTest, CanStartAboveLevelOne) {
  const std::vector<double> lp = {
      -9.0, -9.0, -1.0,
      -9.0, -9.0, -1.0,
  };
  const MonotonePath path = SolveMonotonePath(lp, 3);
  EXPECT_EQ(path.levels, (std::vector<int>{3, 3}));
}

TEST(SolveMonotonePathTest, CannotSkipLevels) {
  // Evidence wants 1 then 3, but unit steps force an intermediate cost.
  const std::vector<double> lp = {
      0.0, -10.0, -10.0,
      -10.0, -10.0, 0.0,
  };
  const MonotonePath path = SolveMonotonePath(lp, 3);
  EXPECT_TRUE(IsMonotoneUnitStep(path.levels, 3));
  // Either stay at 1->2 or start 2->3; both cost -10.
  EXPECT_DOUBLE_EQ(path.log_likelihood, -10.0);
}

TEST(SolveMonotonePathTest, TiesPreferLowerLevel) {
  // All entries equal: the path should hug level 1.
  const std::vector<double> lp(4 * 3, -1.0);
  const MonotonePath path = SolveMonotonePath(lp, 3);
  EXPECT_EQ(path.levels, (std::vector<int>{1, 1, 1, 1}));
}

TEST(SolveMonotonePathTest, HandlesNegativeInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> lp = {
      -inf, -1.0,
      -2.0, -inf,
  };
  // Start at 2 then... cannot go down; -inf at t=1 level 2 forces the
  // only finite path to be impossible — the solver must still return a
  // valid monotone path.
  const MonotonePath path = SolveMonotonePath(lp, 2);
  EXPECT_TRUE(IsMonotoneUnitStep(path.levels, 2));
}

class DpRandomizedTest : public ::testing::TestWithParam<int> {};

TEST_P(DpRandomizedTest, MatchesBruteForceEnumeration) {
  const int levels = GetParam();
  Rng rng(static_cast<uint64_t>(levels) * 1000 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.NextInt(10));
    std::vector<double> lp(n * static_cast<size_t>(levels));
    for (double& v : lp) v = -5.0 * rng.NextDouble();
    const MonotonePath path = SolveMonotonePath(lp, levels);
    ASSERT_EQ(path.levels.size(), n);
    EXPECT_TRUE(IsMonotoneUnitStep(path.levels, levels));
    const double expected = BestPathByEnumeration(lp, n, levels);
    EXPECT_NEAR(path.log_likelihood, expected, 1e-9);
    EXPECT_NEAR(PathScore(lp, path.levels, levels), path.log_likelihood,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DpRandomizedTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(SolveMonotonePathWithTransitionsTest, ZeroWeightsMatchPlainSolver) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.NextInt(12));
    std::vector<double> lp(n * 4);
    for (double& v : lp) v = -8.0 * rng.NextDouble();
    const MonotonePath plain = SolveMonotonePath(lp, 4);
    const MonotonePath weighted =
        SolveMonotonePathWithTransitions(lp, 4, {}, 0.0, 0.0);
    EXPECT_EQ(plain.levels, weighted.levels);
    EXPECT_DOUBLE_EQ(plain.log_likelihood, weighted.log_likelihood);
  }
}

TEST(SolveMonotonePathWithTransitionsTest, InitialDistributionBiasesStart) {
  // Emissions are flat; only the initial weights differ.
  const std::vector<double> lp(3 * 3, -1.0);
  const std::vector<double> favor_top = {std::log(0.05), std::log(0.05),
                                         std::log(0.9)};
  const MonotonePath path =
      SolveMonotonePathWithTransitions(lp, 3, favor_top, std::log(0.9),
                                       std::log(0.1));
  EXPECT_EQ(path.levels, (std::vector<int>{3, 3, 3}));
}

TEST(SolveMonotonePathWithTransitionsTest, UpCostDiscouragesClimbing) {
  // Evidence mildly prefers climbing 1 -> 2 (level 3 is implausible, so
  // the free stay at the top cannot interfere); each up-step may cost.
  const std::vector<double> lp = {
      -1.0, -1.2, -9.0,
      -1.2, -1.0, -9.0,
  };
  const MonotonePath cheap = SolveMonotonePathWithTransitions(
      lp, 3, {}, std::log(0.5), std::log(0.5));
  EXPECT_EQ(cheap.levels, (std::vector<int>{1, 2}));
  const MonotonePath expensive = SolveMonotonePathWithTransitions(
      lp, 3, {}, std::log(0.99), std::log(0.01));
  EXPECT_EQ(expensive.levels, (std::vector<int>{1, 1}));
}

TEST(SolveMonotonePathWithTransitionsTest, TopLevelStayIsFree) {
  // A path pinned at the top by the initial distribution must not pay the
  // stay cost (there is no alternative move at the top).
  const std::vector<double> lp(4 * 2, -1.0);
  const std::vector<double> top_only = {
      -std::numeric_limits<double>::infinity(), 0.0};
  const MonotonePath path = SolveMonotonePathWithTransitions(
      lp, 2, top_only, std::log(1e-9), std::log(1.0 - 1e-9));
  EXPECT_EQ(path.levels, (std::vector<int>{2, 2, 2, 2}));
  // Score: 4 emissions + initial 0; stays at the top cost nothing.
  EXPECT_NEAR(path.log_likelihood, -4.0, 1e-9);
}

}  // namespace
}  // namespace upskill
