#include "core/em_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/posterior.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeData(int num_users = 150, int num_items = 400,
                                uint64_t seed = 555) {
  datagen::SyntheticConfig config;
  config.num_users = num_users;
  config.num_items = num_items;
  config.mean_sequence_length = 25.0;
  config.seed = seed;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

EmTrainerConfig MakeConfig(int max_iterations = 20) {
  EmTrainerConfig config;
  config.model.num_levels = 5;
  config.model.min_init_actions = 15;
  config.model.max_iterations = max_iterations;
  return config;
}

TEST(EmTrainerTest, RejectsBadInput) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("x").ok());
  Dataset empty((ItemTable(std::move(schema))));
  EXPECT_FALSE(EmTrainer(MakeConfig()).Train(empty).ok());

  const datagen::GeneratedData data = MakeData(10, 50);
  EmTrainerConfig config = MakeConfig();
  config.initial_level_up_probability = 0.0;
  EXPECT_FALSE(EmTrainer(config).Train(data.dataset).ok());
  config.initial_level_up_probability = 1.0;
  EXPECT_FALSE(EmTrainer(config).Train(data.dataset).ok());
}

TEST(EmTrainerTest, MarginalLikelihoodIsNonDecreasing) {
  const datagen::GeneratedData data = MakeData();
  const auto result = EmTrainer(MakeConfig()).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  const auto& trace = result.value().log_likelihood_trace;
  ASSERT_GE(trace.size(), 2u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-6 * std::abs(trace[i - 1]))
        << "iteration " << i;
  }
}

TEST(EmTrainerTest, AssignmentsAreMonotone) {
  const datagen::GeneratedData data = MakeData();
  const auto result = EmTrainer(MakeConfig()).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(result.value().assignments, 5));
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    EXPECT_EQ(result.value().assignments[static_cast<size_t>(u)].size(),
              data.dataset.sequence(u).size());
  }
}

TEST(EmTrainerTest, LearnsTransitionParameters) {
  const datagen::GeneratedData data = MakeData(250, 500);
  const auto result = EmTrainer(MakeConfig()).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  // pi is a probability distribution.
  double total = 0.0;
  for (double p : result.value().initial_distribution) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  // p_up moved off its initial value and stayed in (0, 1).
  EXPECT_GT(result.value().level_up_probability, 0.0);
  EXPECT_LT(result.value().level_up_probability, 1.0);
  EXPECT_NE(result.value().level_up_probability, 0.1);
}

TEST(EmTrainerTest, FixedTransitionsStayFixed) {
  const datagen::GeneratedData data = MakeData(60, 200);
  EmTrainerConfig config = MakeConfig(5);
  config.learn_transitions = false;
  config.initial_level_up_probability = 0.25;
  const auto result = EmTrainer(config).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().level_up_probability, 0.25);
}

TEST(EmTrainerTest, RecoveryComparableToHardTrainer) {
  const datagen::GeneratedData data = MakeData(300, 600, 808);
  const std::vector<double> truth = [&] {
    std::vector<double> flat;
    for (const auto& seq : data.truth.skill) {
      for (int level : seq) flat.push_back(level);
    }
    return flat;
  }();
  const auto flatten = [](const SkillAssignments& assignments) {
    std::vector<double> flat;
    for (const auto& seq : assignments) {
      for (int level : seq) flat.push_back(level);
    }
    return flat;
  };

  const auto em = EmTrainer(MakeConfig(25)).Train(data.dataset);
  ASSERT_TRUE(em.ok());
  SkillModelConfig hard_config = MakeConfig().model;
  const auto hard = Trainer(hard_config).Train(data.dataset);
  ASSERT_TRUE(hard.ok());

  const double r_em =
      eval::PearsonCorrelation(flatten(em.value().assignments), truth);
  const double r_hard =
      eval::PearsonCorrelation(flatten(hard.value().assignments), truth);
  EXPECT_GT(r_em, 0.4);
  // The paper reports comparable fitting quality; allow a modest band.
  EXPECT_GT(r_em, r_hard - 0.2) << "EM dramatically worse than hard";
}

TEST(EmTrainerTest, FinalLikelihoodMatchesPosteriorMarginals) {
  // Cross-module consistency: the marginal log-likelihood the EM loop
  // reports at its final E-step must equal the sum of per-user
  // ComputeSequencePosterior marginals under the SAME parameters. Run EM
  // for exactly one extra iteration from a converged state so the trace's
  // last entry was measured with the returned parameters.
  const datagen::GeneratedData data = MakeData(60, 150, 202);
  EmTrainerConfig config = MakeConfig(100);
  config.model.relative_tolerance = 1e-7;
  const auto result = EmTrainer(config).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().converged)
      << "need convergence so parameters match the last E-step";

  TransitionWeights weights;
  weights.log_initial.resize(5);
  for (int s = 0; s < 5; ++s) {
    weights.log_initial[static_cast<size_t>(s)] =
        std::log(result.value().initial_distribution[static_cast<size_t>(s)]);
  }
  weights.log_up = std::log(result.value().level_up_probability);
  weights.log_stay = std::log(1.0 - result.value().level_up_probability);

  double total = 0.0;
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    if (data.dataset.sequence(u).empty()) continue;
    const auto posterior = ComputeSequencePosterior(
        data.dataset.items(), data.dataset.sequence(u),
        result.value().model, weights);
    ASSERT_TRUE(posterior.ok());
    total += posterior.value().log_marginal;
  }
  // The trace's final entry was computed one M-step earlier than the
  // returned parameters only if not converged; at convergence the change
  // is below tolerance, so the values agree to a loose bound.
  EXPECT_NEAR(total, result.value().final_log_likelihood,
              1e-4 * std::abs(total) + 1.0);
}

TEST(EmTrainerTest, ParallelMatchesSequential) {
  const datagen::GeneratedData data = MakeData(80, 200);
  EmTrainerConfig sequential = MakeConfig(6);
  EmTrainerConfig parallel = sequential;
  parallel.model.parallel.num_threads = 4;
  parallel.model.parallel.users = true;
  const auto a = EmTrainer(sequential).Train(data.dataset);
  const auto b = EmTrainer(parallel).Train(data.dataset);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignments, b.value().assignments);
  EXPECT_NEAR(a.value().final_log_likelihood,
              b.value().final_log_likelihood, 1e-6);
}

}  // namespace
}  // namespace upskill
