// Tests for the forgetting extension (Section VII future work): the
// down-edge DP variant and the trainer integration.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/dp.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace upskill {
namespace {

TEST(ForgettingDpTest, NoBreaksMatchesMonotoneSolver) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.NextInt(10));
    std::vector<double> lp(n * 4);
    for (double& v : lp) v = -7.0 * rng.NextDouble();
    const std::vector<uint8_t> no_breaks(n - 1, 0);
    const MonotonePath plain = SolveMonotonePath(lp, 4);
    const MonotonePath forgetting = SolveMonotonePathWithForgetting(
        lp, 4, {}, 0.0, 0.0, no_breaks, std::log(0.05));
    EXPECT_EQ(plain.levels, forgetting.levels);
    EXPECT_DOUBLE_EQ(plain.log_likelihood, forgetting.log_likelihood);
  }
}

TEST(ForgettingDpTest, DropsLevelAfterBreakWhenEvidenceDemands) {
  // Strong evidence: 3, 3, then (after a break) 2, 2.
  const std::vector<double> lp = {
      -9.0, -9.0, -0.1,
      -9.0, -9.0, -0.1,
      -9.0, -0.1, -9.0,
      -9.0, -0.1, -9.0,
  };
  const std::vector<uint8_t> breaks = {0, 1, 0};
  const MonotonePath path = SolveMonotonePathWithForgetting(
      lp, 3, {}, 0.0, 0.0, breaks, std::log(0.1));
  EXPECT_EQ(path.levels, (std::vector<int>{3, 3, 2, 2}));
}

TEST(ForgettingDpTest, NoDropWithoutBreakEvenWithEvidence) {
  const std::vector<double> lp = {
      -9.0, -9.0, -0.1,
      -9.0, -9.0, -0.1,
      -9.0, -0.1, -9.0,
      -9.0, -0.1, -9.0,
  };
  const std::vector<uint8_t> no_breaks = {0, 0, 0};
  const MonotonePath path = SolveMonotonePathWithForgetting(
      lp, 3, {}, 0.0, 0.0, no_breaks, std::log(0.1));
  // The path must stay monotone: it either eats the bad emissions at 3 or
  // never climbs; both are monotone.
  for (size_t t = 1; t < path.levels.size(); ++t) {
    EXPECT_GE(path.levels[t], path.levels[t - 1]);
  }
}

TEST(ForgettingDpTest, DownCostWeighsAgainstDrop) {
  // Mild evidence for a drop; prohibitive down cost keeps the level.
  const std::vector<double> lp = {
      -5.0, -1.0,
      -1.0, -1.4,
  };
  const std::vector<uint8_t> breaks = {1};
  const MonotonePath cheap = SolveMonotonePathWithForgetting(
      lp, 2, {}, 0.0, 0.0, breaks, std::log(0.9));
  EXPECT_EQ(cheap.levels, (std::vector<int>{2, 1}));
  const MonotonePath expensive = SolveMonotonePathWithForgetting(
      lp, 2, {}, 0.0, 0.0, breaks, -10.0);
  EXPECT_EQ(expensive.levels, (std::vector<int>{2, 2}));
}

TEST(ForgettingDpTest, CanDropMultipleTimesAcrossBreaks) {
  const std::vector<double> lp = {
      -9.0, -9.0, -0.1,
      -9.0, -0.1, -9.0,
      -0.1, -9.0, -9.0,
  };
  const std::vector<uint8_t> breaks = {1, 1};
  const MonotonePath path = SolveMonotonePathWithForgetting(
      lp, 3, {}, 0.0, 0.0, breaks, std::log(0.2));
  EXPECT_EQ(path.levels, (std::vector<int>{3, 2, 1}));
}

// Levels must never move by more than one, and only drop at break points.
void ExpectValidForgetfulPath(const std::vector<int>& levels,
                              std::span<const Action> seq,
                              int64_t gap_threshold, int num_levels) {
  for (size_t n = 0; n < levels.size(); ++n) {
    EXPECT_GE(levels[n], 1);
    EXPECT_LE(levels[n], num_levels);
    if (n == 0) continue;
    const int step = levels[n] - levels[n - 1];
    EXPECT_LE(step, 1);
    EXPECT_GE(step, -1);
    if (step < 0) {
      EXPECT_GT(seq[n].time - seq[n - 1].time, gap_threshold)
          << "drop without a long break at position " << n;
    }
  }
}

TEST(ForgettingTrainerTest, RecoversDecayBetterThanMonotoneModel) {
  datagen::SyntheticConfig gen;
  gen.num_users = 250;
  gen.num_items = 500;
  gen.mean_sequence_length = 40.0;
  gen.break_probability = 0.05;
  gen.break_gap = 1000;
  gen.forget_probability = 0.9;
  gen.seed = 4242;
  auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok());

  SkillModelConfig monotone_config;
  monotone_config.num_levels = 5;
  monotone_config.min_init_actions = 25;
  SkillModelConfig forgetting_config = monotone_config;
  forgetting_config.forgetting.enabled = true;
  forgetting_config.forgetting.gap_threshold = 100;
  forgetting_config.forgetting.drop_probability = 0.1;

  const auto monotone = Trainer(monotone_config).Train(data.value().dataset);
  const auto forgetting =
      Trainer(forgetting_config).Train(data.value().dataset);
  ASSERT_TRUE(monotone.ok());
  ASSERT_TRUE(forgetting.ok());

  // Structural validity of forgetful paths.
  for (UserId u = 0; u < data.value().dataset.num_users(); ++u) {
    ExpectValidForgetfulPath(
        forgetting.value().assignments[static_cast<size_t>(u)],
        data.value().dataset.sequence(u), 100, 5);
  }

  // The forgetful model should fit the decaying truth at least as well.
  const auto flatten = [](const SkillAssignments& assignments) {
    std::vector<double> flat;
    for (const auto& seq : assignments) {
      for (int level : seq) flat.push_back(level);
    }
    return flat;
  };
  std::vector<double> truth;
  for (const auto& seq : data.value().truth.skill) {
    for (int level : seq) truth.push_back(level);
  }
  const double r_monotone =
      eval::PearsonCorrelation(flatten(monotone.value().assignments), truth);
  const double r_forgetting = eval::PearsonCorrelation(
      flatten(forgetting.value().assignments), truth);
  EXPECT_GT(r_forgetting, r_monotone - 0.02)
      << "forgetting model much worse on forgetful data";
  // And its likelihood should be at least as high (extra edges can only
  // help the optimal path).
  EXPECT_GE(forgetting.value().final_log_likelihood,
            monotone.value().final_log_likelihood - 1e-6);
}

TEST(ForgettingTrainerTest, DisabledForgettingKeepsMonotonicity) {
  datagen::SyntheticConfig gen;
  gen.num_users = 60;
  gen.num_items = 200;
  gen.break_probability = 0.05;
  auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok());
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 25;
  const auto result = Trainer(config).Train(data.value().dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(result.value().assignments, 5));
}

}  // namespace
}  // namespace upskill
