#include "core/inference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/categorical.h"

namespace upskill {
namespace {

TEST(NearestActionLevelTest, PicksChronologicallyClosest) {
  const std::vector<Action> seq = {{10, 0, 0.0}, {20, 1, 0.0}, {30, 2, 0.0}};
  const std::vector<int> levels = {1, 2, 3};
  EXPECT_EQ(NearestActionLevel(seq, levels, 5), 1);    // before everything
  EXPECT_EQ(NearestActionLevel(seq, levels, 100), 3);  // after everything
  EXPECT_EQ(NearestActionLevel(seq, levels, 12), 1);
  EXPECT_EQ(NearestActionLevel(seq, levels, 19), 2);
  EXPECT_EQ(NearestActionLevel(seq, levels, 20), 2);   // exact hit
}

TEST(NearestActionLevelTest, TiesPreferEarlierAction) {
  const std::vector<Action> seq = {{10, 0, 0.0}, {20, 1, 0.0}};
  const std::vector<int> levels = {1, 2};
  EXPECT_EQ(NearestActionLevel(seq, levels, 15), 1);  // equidistant
}

TEST(NearestActionLevelTest, EmptySequenceDefaultsToLevelOne) {
  EXPECT_EQ(NearestActionLevel({}, {}, 42), 1);
}

// Fixture with a hand-crafted ID-feature model.
class ItemRankingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FeatureSchema schema;
    ASSERT_TRUE(schema.AddIdFeature(4).ok());
    SkillModelConfig config;
    config.num_levels = 2;
    auto created = SkillModel::Create(schema, config);
    ASSERT_TRUE(created.ok());
    model_ = std::make_unique<SkillModel>(std::move(created).value());
    // Level 1: item 2 most likely, then 0, then 1, then 3.
    auto* level1 = static_cast<Categorical*>(model_->mutable_component(0, 1));
    ASSERT_TRUE(
        level1->SetProbabilities(std::vector<double>{0.3, 0.2, 0.4, 0.1})
            .ok());
    // Level 2: uniform (full tie).
    auto* level2 = static_cast<Categorical*>(model_->mutable_component(0, 2));
    ASSERT_TRUE(
        level2->SetProbabilities(std::vector<double>{0.25, 0.25, 0.25, 0.25})
            .ok());
  }

  std::unique_ptr<SkillModel> model_;
};

TEST_F(ItemRankingTest, RanksByProbability) {
  EXPECT_EQ(ItemRankAtLevel(*model_, 1, 2).value(), 1);
  EXPECT_EQ(ItemRankAtLevel(*model_, 1, 0).value(), 2);
  EXPECT_EQ(ItemRankAtLevel(*model_, 1, 1).value(), 3);
  EXPECT_EQ(ItemRankAtLevel(*model_, 1, 3).value(), 4);
}

TEST_F(ItemRankingTest, TiesBreakBySmallerId) {
  EXPECT_EQ(ItemRankAtLevel(*model_, 2, 0).value(), 1);
  EXPECT_EQ(ItemRankAtLevel(*model_, 2, 1).value(), 2);
  EXPECT_EQ(ItemRankAtLevel(*model_, 2, 3).value(), 4);
}

TEST_F(ItemRankingTest, RejectsOutOfRangeItem) {
  EXPECT_FALSE(ItemRankAtLevel(*model_, 1, 99).ok());
  EXPECT_FALSE(ItemRankAtLevel(*model_, 1, -1).ok());
}

TEST_F(ItemRankingTest, TopItemsMatchesRanks) {
  const auto top = TopItemsAtLevel(*model_, 1, 3);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value(), (std::vector<ItemId>{2, 0, 1}));
  const auto all = TopItemsAtLevel(*model_, 1, 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 4u);
}

TEST(ItemRankingNoIdTest, FailsWithoutIdFeature) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("steps").ok());
  SkillModelConfig config;
  config.num_levels = 2;
  auto model = SkillModel::Create(schema, config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(ItemRankAtLevel(model.value(), 1, 0).ok());
  EXPECT_FALSE(TopItemsAtLevel(model.value(), 1, 3).ok());
}

TEST(HeldOutLogLikelihoodTest, SumsNearestLevelLogProbs) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(2).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 2; ++i) {
    const double row[] = {-1.0};
    ASSERT_TRUE(items.AddItem(row).ok());
  }
  Dataset train(std::move(items));
  const UserId u = train.AddUser();
  ASSERT_TRUE(train.AddAction(u, 10, 0).ok());
  ASSERT_TRUE(train.AddAction(u, 20, 1).ok());

  SkillModelConfig config;
  config.num_levels = 2;
  auto created = SkillModel::Create(train.schema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  auto* level1 = static_cast<Categorical*>(model.mutable_component(0, 1));
  ASSERT_TRUE(level1->SetProbabilities(std::vector<double>{0.9, 0.1}).ok());
  auto* level2 = static_cast<Categorical*>(model.mutable_component(0, 2));
  ASSERT_TRUE(level2->SetProbabilities(std::vector<double>{0.2, 0.8}).ok());

  const SkillAssignments assignments = {{1, 2}};
  // Test action at time 11 -> nearest train action at time 10 -> level 1;
  // item 1 under level 1 has probability 0.1.
  const std::vector<HeldOutAction> test = {{u, Action{11, 1, 0.0}, 0}};
  EXPECT_NEAR(HeldOutLogLikelihood(train, assignments, model, test),
              std::log(0.1), 1e-12);
  // At time 19 the nearest is time-20 -> level 2 -> probability 0.8.
  const std::vector<HeldOutAction> test2 = {{u, Action{19, 1, 0.0}, 0}};
  EXPECT_NEAR(HeldOutLogLikelihood(train, assignments, model, test2),
              std::log(0.8), 1e-12);
}

}  // namespace
}  // namespace upskill
