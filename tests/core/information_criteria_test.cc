#include "core/information_criteria.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "datagen/synthetic.h"

namespace upskill {
namespace {

TEST(CountModelParametersTest, PerKindCounts) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCategorical("c", 10).ok());  // 9 free per level
  ASSERT_TRUE(schema.AddCount("n").ok());            // 1 per level
  ASSERT_TRUE(schema.AddReal("g").ok());             // 2 per level
  ASSERT_TRUE(
      schema.AddReal("l", DistributionKind::kLogNormal).ok());  // 2
  EXPECT_EQ(CountModelParameters(schema, 1), 14);
  EXPECT_EQ(CountModelParameters(schema, 5), 70);
}

TEST(CountModelParametersTest, IdFeatureCountsLikeCategorical) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(100).ok());
  EXPECT_EQ(CountModelParameters(schema, 3), 3 * 99);
}

class InformationCriteriaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig gen;
    gen.num_users = 120;
    gen.num_items = 250;
    gen.mean_sequence_length = 25.0;
    auto data = datagen::GenerateSynthetic(gen);
    ASSERT_TRUE(data.ok());
    data_ = std::make_unique<datagen::GeneratedData>(std::move(data).value());
  }

  Result<InformationCriteria> CriteriaForLevels(int num_levels) {
    SkillModelConfig config;
    config.num_levels = num_levels;
    config.min_init_actions = 15;
    config.max_iterations = 15;
    Trainer trainer(config);
    auto trained = trainer.Train(data_->dataset);
    if (!trained.ok()) return trained.status();
    return ComputeInformationCriteria(data_->dataset,
                                      trained.value().model);
  }

  std::unique_ptr<datagen::GeneratedData> data_;
};

TEST_F(InformationCriteriaTest, FormulasAreConsistent) {
  const auto criteria = CriteriaForLevels(5);
  ASSERT_TRUE(criteria.ok());
  const auto& c = criteria.value();
  EXPECT_LT(c.log_likelihood, 0.0);
  EXPECT_GT(c.num_parameters, 0);
  EXPECT_EQ(c.num_actions, data_->dataset.num_actions());
  EXPECT_NEAR(c.bic,
              -2.0 * c.log_likelihood +
                  static_cast<double>(c.num_parameters) *
                      std::log(static_cast<double>(c.num_actions)),
              1e-6);
  EXPECT_NEAR(c.aic,
              -2.0 * c.log_likelihood +
                  2.0 * static_cast<double>(c.num_parameters),
              1e-6);
  // BIC penalizes harder than AIC whenever ln(n) > 2.
  EXPECT_GT(c.bic, c.aic);
}

TEST_F(InformationCriteriaTest, MoreLevelsFitBetterButPayPenalty) {
  const auto small = CriteriaForLevels(2);
  const auto large = CriteriaForLevels(8);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // Training likelihood is (weakly) better with more levels...
  EXPECT_GE(large.value().log_likelihood,
            small.value().log_likelihood - 1e-6);
  // ...but the parameter count grows linearly in S.
  EXPECT_EQ(large.value().num_parameters,
            4 * small.value().num_parameters);
}

TEST_F(InformationCriteriaTest, RejectsEmptyDataset) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("x").ok());
  Dataset empty((ItemTable(std::move(schema))));
  SkillModelConfig config;
  auto model = SkillModel::Create(empty.schema(), config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(ComputeInformationCriteria(empty, model.value()).ok());
}

}  // namespace
}  // namespace upskill
