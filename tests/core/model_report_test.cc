#include "core/model_report.h"

#include <gtest/gtest.h>

#include "dist/categorical.h"

namespace upskill {
namespace {

TEST(ModelReportTest, IncludesAllFeaturesAndLevels) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(4).ok());
  ASSERT_TRUE(schema.AddCategorical("style", 3, {"lager", "ale", "stout"}).ok());
  ASSERT_TRUE(schema.AddCount("steps").ok());
  ASSERT_TRUE(schema.AddReal("abv").ok());
  SkillModelConfig config;
  config.num_levels = 2;
  auto created = SkillModel::Create(schema, config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  auto* style = static_cast<Categorical*>(model.mutable_component(1, 2));
  ASSERT_TRUE(
      style->SetProbabilities(std::vector<double>{0.1, 0.2, 0.7}).ok());

  const std::string report = FormatModelReport(model, 2);
  EXPECT_NE(report.find("item_id"), std::string::npos);
  EXPECT_NE(report.find("[item id]"), std::string::npos);
  EXPECT_NE(report.find("style"), std::string::npos);
  EXPECT_NE(report.find("steps"), std::string::npos);
  EXPECT_NE(report.find("abv"), std::string::npos);
  EXPECT_NE(report.find("level 1"), std::string::npos);
  EXPECT_NE(report.find("level 2"), std::string::npos);
  // The dominant category appears with its label and probability.
  EXPECT_NE(report.find("stout=0.700"), std::string::npos) << report;
  // Numeric components print their parameterization.
  EXPECT_NE(report.find("Poisson"), std::string::npos);
  EXPECT_NE(report.find("Gamma"), std::string::npos);
}

TEST(ModelReportTest, UnlabeledCategoriesUseIndices) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCategorical("c", 3).ok());
  SkillModelConfig config;
  config.num_levels = 1;
  auto model = SkillModel::Create(schema, config);
  ASSERT_TRUE(model.ok());
  const std::string report = FormatModelReport(model.value(), 1);
  EXPECT_NE(report.find("#0="), std::string::npos) << report;
}

TEST(ModelReportTest, TopCategoriesBounded) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCategorical("c", 10).ok());
  SkillModelConfig config;
  config.num_levels = 1;
  auto model = SkillModel::Create(schema, config);
  ASSERT_TRUE(model.ok());
  const std::string one = FormatModelReport(model.value(), 1);
  const std::string three = FormatModelReport(model.value(), 3);
  EXPECT_LT(one.size(), three.size());
}

}  // namespace
}  // namespace upskill
