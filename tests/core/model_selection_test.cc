#include "core/model_selection.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace upskill {
namespace {

TEST(SelectSkillCountTest, RejectsEmptyCandidates) {
  datagen::SyntheticConfig gen;
  gen.num_users = 20;
  gen.num_items = 50;
  const auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok());
  Rng rng(1);
  EXPECT_FALSE(SelectSkillCount(data.value().dataset, {},
                                SkillModelConfig{}, 0.1, rng)
                   .ok());
}

TEST(SelectSkillCountTest, ReturnsCurvePointPerCandidate) {
  datagen::SyntheticConfig gen;
  gen.num_users = 80;
  gen.num_items = 200;
  gen.mean_sequence_length = 25.0;
  const auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok());
  SkillModelConfig base;
  base.min_init_actions = 15;
  base.max_iterations = 10;
  const std::vector<int> candidates = {2, 3, 5};
  Rng rng(5);
  const auto selection =
      SelectSkillCount(data.value().dataset, candidates, base, 0.1, rng);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  ASSERT_EQ(selection.value().curve.size(), 3u);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(selection.value().curve[i].num_levels, candidates[i]);
    EXPECT_LT(selection.value().curve[i].held_out_log_likelihood, 0.0);
  }
  // The winner is on the curve with the max likelihood.
  double best = selection.value().curve[0].held_out_log_likelihood;
  int best_s = selection.value().curve[0].num_levels;
  for (const auto& point : selection.value().curve) {
    if (point.held_out_log_likelihood > best) {
      best = point.held_out_log_likelihood;
      best_s = point.num_levels;
    }
  }
  EXPECT_EQ(selection.value().best_num_levels, best_s);
}

TEST(SelectSkillCountTest, DeterministicGivenSeed) {
  datagen::SyntheticConfig gen;
  gen.num_users = 50;
  gen.num_items = 100;
  const auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok());
  SkillModelConfig base;
  base.min_init_actions = 15;
  base.max_iterations = 5;
  const std::vector<int> candidates = {2, 4};
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a =
      SelectSkillCount(data.value().dataset, candidates, base, 0.1, rng_a);
  const auto b =
      SelectSkillCount(data.value().dataset, candidates, base, 0.1, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().best_num_levels, b.value().best_num_levels);
  for (size_t i = 0; i < a.value().curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value().curve[i].held_out_log_likelihood,
                     b.value().curve[i].held_out_log_likelihood);
  }
}

}  // namespace
}  // namespace upskill
