#include "core/posterior.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/categorical.h"

namespace upskill {
namespace {

// Two items, two levels, hand-set emission probabilities.
class PosteriorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FeatureSchema schema;
    ASSERT_TRUE(schema.AddIdFeature(2).ok());
    ItemTable items(std::move(schema));
    for (int i = 0; i < 2; ++i) {
      const double row[] = {-1.0};
      ASSERT_TRUE(items.AddItem(row).ok());
    }
    items_ = std::make_unique<ItemTable>(std::move(items));

    SkillModelConfig config;
    config.num_levels = 2;
    auto model = SkillModel::Create(items_->schema(), config);
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<SkillModel>(std::move(model).value());
    auto* level1 = static_cast<Categorical*>(model_->mutable_component(0, 1));
    ASSERT_TRUE(level1->SetProbabilities(std::vector<double>{0.8, 0.2}).ok());
    auto* level2 = static_cast<Categorical*>(model_->mutable_component(0, 2));
    ASSERT_TRUE(level2->SetProbabilities(std::vector<double>{0.3, 0.7}).ok());
  }

  std::unique_ptr<ItemTable> items_;
  std::unique_ptr<SkillModel> model_;
};

TEST_F(PosteriorTest, SingleActionMatchesBayesByHand) {
  const std::vector<Action> seq = {{0, 0, 0.0}};  // item 0
  const auto posterior = ComputeSequencePosterior(
      *items_, seq, *model_, UninformativeTransitions(2));
  ASSERT_TRUE(posterior.ok());
  // P(s=1 | i=0) = 0.8 / (0.8 + 0.3) with a uniform initial distribution.
  EXPECT_NEAR(posterior.value().Probability(0, 1), 0.8 / 1.1, 1e-12);
  EXPECT_NEAR(posterior.value().Probability(0, 2), 0.3 / 1.1, 1e-12);
  // log marginal = log(0.5 * 0.8 + 0.5 * 0.3).
  EXPECT_NEAR(posterior.value().log_marginal, std::log(0.55), 1e-12);
  EXPECT_NEAR(posterior.value().MeanLevel(0), 1.0 + 0.3 / 1.1, 1e-12);
}

TEST_F(PosteriorTest, RowsAreDistributions) {
  Rng rng(3);
  std::vector<Action> seq;
  for (int n = 0; n < 20; ++n) {
    seq.push_back(Action{n, static_cast<ItemId>(rng.NextInt(2)), 0.0});
  }
  const auto posterior = ComputeSequencePosterior(
      *items_, seq, *model_, UninformativeTransitions(2));
  ASSERT_TRUE(posterior.ok());
  for (size_t t = 0; t < seq.size(); ++t) {
    double total = 0.0;
    for (int s = 1; s <= 2; ++s) {
      const double p = posterior.value().Probability(t, s);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-12);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "t=" << t;
  }
}

TEST_F(PosteriorTest, MarginalMatchesPathEnumeration) {
  // Brute-force: sum P(path) * P(items | path) over all monotone paths.
  const std::vector<Action> seq = {{0, 0, 0.0}, {1, 1, 0.0}, {2, 1, 0.0}};
  const TransitionWeights weights = UninformativeTransitions(2);
  double total = 0.0;
  for (int start = 1; start <= 2; ++start) {
    // Enumerate paths by the position of the single possible up-step.
    for (int up_at = 1; up_at <= 3; ++up_at) {  // 3 = never
      std::vector<int> path(3);
      int level = start;
      double log_p = weights.log_initial[static_cast<size_t>(start - 1)];
      path[0] = level;
      bool valid = true;
      for (int t = 1; t < 3; ++t) {
        if (t == up_at) {
          if (level == 2) {
            valid = false;
            break;
          }
          ++level;
          log_p += weights.log_up;
        } else {
          log_p += level < 2 ? weights.log_stay : 0.0;
        }
        path[t] = level;
      }
      if (!valid) continue;
      for (int t = 0; t < 3; ++t) {
        log_p += model_->ItemLogProb(*items_, seq[static_cast<size_t>(t)].item,
                                     path[static_cast<size_t>(t)]);
      }
      total += std::exp(log_p);
    }
  }
  const auto posterior =
      ComputeSequencePosterior(*items_, seq, *model_, weights);
  ASSERT_TRUE(posterior.ok());
  EXPECT_NEAR(posterior.value().log_marginal, std::log(total), 1e-9);
}

TEST_F(PosteriorTest, MonotoneEvidenceShiftsPosteriorUpward) {
  // Early actions favor level 1 (item 0), late ones level 2 (item 1).
  const std::vector<Action> seq = {{0, 0, 0.0}, {1, 0, 0.0}, {2, 1, 0.0},
                                   {3, 1, 0.0}};
  const auto posterior = ComputeSequencePosterior(
      *items_, seq, *model_, UninformativeTransitions(2));
  ASSERT_TRUE(posterior.ok());
  EXPECT_GT(posterior.value().Probability(0, 1), 0.5);
  EXPECT_GT(posterior.value().Probability(3, 2), 0.5);
  // Posterior mean level is non-decreasing for this evidence pattern.
  for (size_t t = 1; t < seq.size(); ++t) {
    EXPECT_GE(posterior.value().MeanLevel(t),
              posterior.value().MeanLevel(t - 1) - 1e-9);
  }
}

TEST_F(PosteriorTest, ValidatesInput) {
  EXPECT_FALSE(ComputeSequencePosterior(*items_, {}, *model_,
                                        UninformativeTransitions(2))
                   .ok());
  const std::vector<Action> bad_item = {{0, 99, 0.0}};
  EXPECT_FALSE(ComputeSequencePosterior(*items_, bad_item, *model_,
                                        UninformativeTransitions(2))
                   .ok());
  const std::vector<Action> seq = {{0, 0, 0.0}};
  EXPECT_FALSE(ComputeSequencePosterior(*items_, seq, *model_,
                                        UninformativeTransitions(3))
                   .ok());
}

TEST_F(PosteriorTest, ItemLevelPosteriorMatchesHandComputation) {
  const std::vector<double> uniform = {0.5, 0.5};
  const auto posterior =
      ItemLevelPosterior(*items_, *model_, 1, uniform);
  ASSERT_TRUE(posterior.ok());
  // P(s=2 | item 1) = 0.7 / (0.2 + 0.7).
  EXPECT_NEAR(posterior.value()[1], 0.7 / 0.9, 1e-12);
  // Skewed prior pulls the posterior.
  const std::vector<double> skewed = {0.9, 0.1};
  const auto pulled = ItemLevelPosterior(*items_, *model_, 1, skewed);
  ASSERT_TRUE(pulled.ok());
  EXPECT_LT(pulled.value()[1], posterior.value()[1]);
}

TEST_F(PosteriorTest, ItemLevelPosteriorValidates) {
  const std::vector<double> uniform = {0.5, 0.5};
  EXPECT_FALSE(ItemLevelPosterior(*items_, *model_, 99, uniform).ok());
  const std::vector<double> short_prior = {1.0};
  EXPECT_FALSE(ItemLevelPosterior(*items_, *model_, 0, short_prior).ok());
  const std::vector<double> negative = {1.5, -0.5};
  EXPECT_FALSE(ItemLevelPosterior(*items_, *model_, 0, negative).ok());
}

}  // namespace
}  // namespace upskill
