// Tests for TransitionModel::kPerClass — the full progression-class
// component of Yang et al. (fast vs. slow learners).

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeHeterogeneousData(uint64_t seed = 31337) {
  datagen::SyntheticConfig config;
  config.num_users = 300;
  config.num_items = 500;
  config.mean_sequence_length = 40.0;
  config.level_up_probability = 0.04;  // slow learners
  config.fast_user_fraction = 0.4;
  config.fast_multiplier = 6.0;        // fast learners: 0.24 per action
  config.seed = seed;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

SkillModelConfig PerClassConfig(int num_classes = 2) {
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 25;
  config.transitions = TransitionModel::kPerClass;
  config.num_progression_classes = num_classes;
  return config;
}

TEST(ProgressionClassTest, GeneratorRecordsClasses) {
  const datagen::GeneratedData data = MakeHeterogeneousData();
  ASSERT_EQ(data.truth.user_class.size(),
            static_cast<size_t>(data.dataset.num_users()));
  size_t fast = 0;
  for (int c : data.truth.user_class) fast += c == 1;
  EXPECT_NEAR(static_cast<double>(fast) / data.truth.user_class.size(), 0.4,
              0.1);
}

TEST(ProgressionClassTest, RejectsBadClassCount) {
  const datagen::GeneratedData data = MakeHeterogeneousData();
  SkillModelConfig config = PerClassConfig(0);
  EXPECT_FALSE(Trainer(config).Train(data.dataset).ok());
}

TEST(ProgressionClassTest, LearnsTwoDistinctSpeeds) {
  const datagen::GeneratedData data = MakeHeterogeneousData();
  const auto result = Trainer(PerClassConfig()).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().progression_classes.size(), 2u);
  ASSERT_EQ(result.value().user_classes.size(),
            static_cast<size_t>(data.dataset.num_users()));

  double p0 = std::exp(result.value().progression_classes[0].weights.log_up);
  double p1 = std::exp(result.value().progression_classes[1].weights.log_up);
  if (p0 > p1) std::swap(p0, p1);
  // The two learned speeds must clearly separate.
  EXPECT_LT(p0, 0.5 * p1) << "p0=" << p0 << " p1=" << p1;
  // Both classes claim a non-trivial share of users.
  int counts[2] = {0, 0};
  for (int c : result.value().user_classes) ++counts[c];
  EXPECT_GT(counts[0], data.dataset.num_users() / 10);
  EXPECT_GT(counts[1], data.dataset.num_users() / 10);
}

TEST(ProgressionClassTest, ClassLabelsCorrelateWithTruth) {
  const datagen::GeneratedData data = MakeHeterogeneousData();
  const auto result = Trainer(PerClassConfig()).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  // Identify which learned class is the fast one.
  const double p0 =
      std::exp(result.value().progression_classes[0].weights.log_up);
  const double p1 =
      std::exp(result.value().progression_classes[1].weights.log_up);
  const int fast_class = p1 > p0 ? 1 : 0;
  // Agreement between learned labels and planted classes (users with a
  // meaningful number of actions only — short sequences are ambiguous).
  size_t agree = 0;
  size_t total = 0;
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    if (data.dataset.sequence(u).size() < 20) continue;
    ++total;
    const int truth = data.truth.user_class[static_cast<size_t>(u)];
    const int learned =
        result.value().user_classes[static_cast<size_t>(u)] == fast_class
            ? 1
            : 0;
    agree += truth == learned;
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.6)
      << agree << "/" << total;
}

TEST(ProgressionClassTest, MonotoneAssignmentsAndReasonableRecovery) {
  const datagen::GeneratedData data = MakeHeterogeneousData();
  const auto result = Trainer(PerClassConfig()).Train(data.dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(result.value().assignments, 5));

  std::vector<double> estimated;
  std::vector<double> truth;
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    const auto& est = result.value().assignments[static_cast<size_t>(u)];
    const auto& ref = data.truth.skill[static_cast<size_t>(u)];
    for (size_t n = 0; n < est.size(); ++n) {
      estimated.push_back(est[n]);
      truth.push_back(ref[n]);
    }
  }
  EXPECT_GT(eval::PearsonCorrelation(estimated, truth), 0.4);
}

TEST(ProgressionClassTest, SingleClassMatchesGlobalBehaviour) {
  const datagen::GeneratedData data = MakeHeterogeneousData(999);
  const auto per_class = Trainer(PerClassConfig(1)).Train(data.dataset);
  ASSERT_TRUE(per_class.ok());
  SkillModelConfig global_config = PerClassConfig();
  global_config.transitions = TransitionModel::kGlobal;
  const auto global = Trainer(global_config).Train(data.dataset);
  ASSERT_TRUE(global.ok());
  // One class == one global transition model up to the constant class
  // prior; the assignments should coincide.
  EXPECT_EQ(per_class.value().assignments, global.value().assignments);
}

TEST(ProgressionClassTest, ParallelMatchesSequential) {
  const datagen::GeneratedData data = MakeHeterogeneousData(424242);
  SkillModelConfig sequential = PerClassConfig();
  sequential.max_iterations = 8;
  SkillModelConfig parallel = sequential;
  parallel.parallel.num_threads = 4;
  parallel.parallel.users = true;
  const auto a = Trainer(sequential).Train(data.dataset);
  const auto b = Trainer(parallel).Train(data.dataset);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignments, b.value().assignments);
  EXPECT_EQ(a.value().user_classes, b.value().user_classes);
}

}  // namespace
}  // namespace upskill
