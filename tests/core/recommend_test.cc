#include "core/recommend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dist/categorical.h"

namespace upskill {
namespace {

// Fixture: 5 items; user 0 is at level 1 (of 3) and has tried item 0.
class RecommendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FeatureSchema schema;
    ASSERT_TRUE(schema.AddIdFeature(5).ok());
    ItemTable items(std::move(schema));
    for (int i = 0; i < 5; ++i) {
      const double row[] = {-1.0};
      ASSERT_TRUE(items.AddItem(row).ok());
    }
    dataset_ = std::make_unique<Dataset>(std::move(items));
    const UserId u = dataset_->AddUser();
    ASSERT_TRUE(dataset_->AddAction(u, 1, 0).ok());
    ASSERT_TRUE(dataset_->AddAction(u, 2, 0).ok());
    assignments_ = {{1, 1}};

    SkillModelConfig config;
    config.num_levels = 3;
    auto model = SkillModel::Create(dataset_->schema(), config);
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<SkillModel>(std::move(model).value());
    // Level-2 taste: item 2 likeliest, then 1, 3, 4, 0.
    auto* level2 = static_cast<Categorical*>(model_->mutable_component(0, 2));
    ASSERT_TRUE(level2
                    ->SetProbabilities(
                        std::vector<double>{0.05, 0.25, 0.4, 0.2, 0.1})
                    .ok());

    difficulty_ = {1.0, 1.5, 1.8, 2.5, std::numeric_limits<double>::quiet_NaN()};
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SkillModel> model_;
  SkillAssignments assignments_;
  std::vector<double> difficulty_;
};

TEST_F(RecommendTest, PicksStretchWindowRankedByNextLevel) {
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0);
  ASSERT_TRUE(picks.ok());
  // Eligible: difficulty in (1, 2]: items 1 (1.5) and 2 (1.8); item 3 is
  // 2.5 (outside), item 4 is NaN, item 0 is at-level and tried anyway.
  ASSERT_EQ(picks.value().size(), 2u);
  // Ranked by level-2 plausibility: item 2 (0.4) above item 1 (0.25).
  EXPECT_EQ(picks.value()[0].item, 2);
  EXPECT_EQ(picks.value()[1].item, 1);
  EXPECT_DOUBLE_EQ(picks.value()[0].difficulty, 1.8);
  EXPECT_NEAR(picks.value()[0].log_prob, std::log(0.4), 1e-12);
}

TEST_F(RecommendTest, StretchControlsTheWindow) {
  UpskillRecommendationOptions options;
  options.stretch = 2.0;  // (1, 3]: items 1, 2, 3
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0, options);
  ASSERT_TRUE(picks.ok());
  EXPECT_EQ(picks.value().size(), 3u);
  options.stretch = 0.4;  // (1, 1.4]: nothing
  const auto none = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                           difficulty_, 0, options);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(RecommendTest, MaxResultsTruncates) {
  UpskillRecommendationOptions options;
  options.max_results = 1;
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0, options);
  ASSERT_TRUE(picks.ok());
  ASSERT_EQ(picks.value().size(), 1u);
  EXPECT_EQ(picks.value()[0].item, 2);
}

TEST_F(RecommendTest, TriedItemsCanBeIncluded) {
  // Make the tried item 0 eligible by raising its difficulty.
  difficulty_[0] = 1.5;
  UpskillRecommendationOptions options;
  options.exclude_tried = false;
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0, options);
  ASSERT_TRUE(picks.ok());
  bool found = false;
  for (const auto& pick : picks.value()) found = found || pick.item == 0;
  EXPECT_TRUE(found);
}

TEST_F(RecommendTest, RankByCurrentLevelUsesCurrentTaste) {
  // Level-1 taste: item 1 likelier than item 2 (reversed vs level 2).
  auto* level1 = static_cast<Categorical*>(model_->mutable_component(0, 1));
  ASSERT_TRUE(level1
                  ->SetProbabilities(
                      std::vector<double>{0.05, 0.5, 0.2, 0.15, 0.1})
                  .ok());
  UpskillRecommendationOptions options;
  options.rank_by_next_level = false;
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0, options);
  ASSERT_TRUE(picks.ok());
  ASSERT_EQ(picks.value().size(), 2u);
  EXPECT_EQ(picks.value()[0].item, 1);
}

TEST_F(RecommendTest, ValidatesInputs) {
  EXPECT_FALSE(RecommendForUpskilling(*dataset_, *model_, assignments_,
                                      difficulty_, 99)
                   .ok());
  const std::vector<double> short_difficulty = {1.0};
  EXPECT_FALSE(RecommendForUpskilling(*dataset_, *model_, assignments_,
                                      short_difficulty, 0)
                   .ok());
  UpskillRecommendationOptions bad;
  bad.max_results = 0;
  EXPECT_FALSE(RecommendForUpskilling(*dataset_, *model_, assignments_,
                                      difficulty_, 0, bad)
                   .ok());
  bad = {};
  bad.stretch = 0.0;
  EXPECT_FALSE(RecommendForUpskilling(*dataset_, *model_, assignments_,
                                      difficulty_, 0, bad)
                   .ok());
}

TEST_F(RecommendTest, TopLevelUserStillGetsWindowAboveCurrent) {
  // A user already at the top has no items above; expect empty, not error.
  assignments_ = {{3, 3}};
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0);
  ASSERT_TRUE(picks.ok());
  EXPECT_TRUE(picks.value().empty());
}

TEST_F(RecommendTest, TopLevelUserClampsRankingLevelToS) {
  // An item whose estimated difficulty exceeds S keeps the window
  // non-empty even at the top level; ranking must clamp the "next" level
  // to S instead of asking the model for level S + 1.
  assignments_ = {{3, 3}};
  difficulty_[3] = 3.4;  // in (3, 4]
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0);
  ASSERT_TRUE(picks.ok());
  ASSERT_EQ(picks.value().size(), 1u);
  EXPECT_EQ(picks.value()[0].item, 3);
}

TEST_F(RecommendTest, NanDifficultyItemsAreSkippedNotReturned) {
  // Item 4 (NaN difficulty) would otherwise dominate: give it the highest
  // level-2 plausibility and keep everything else in the window.
  auto* level2 = static_cast<Categorical*>(model_->mutable_component(0, 2));
  ASSERT_TRUE(level2
                  ->SetProbabilities(
                      std::vector<double>{0.05, 0.1, 0.1, 0.05, 0.7})
                  .ok());
  UpskillRecommendationOptions options;
  options.stretch = 5.0;  // every non-NaN difficulty is eligible
  options.exclude_tried = false;
  const auto picks = RecommendForUpskilling(*dataset_, *model_, assignments_,
                                            difficulty_, 0, options);
  ASSERT_TRUE(picks.ok());
  ASSERT_FALSE(picks.value().empty());
  for (const auto& pick : picks.value()) {
    EXPECT_NE(pick.item, 4);
    EXPECT_FALSE(std::isnan(pick.difficulty));
  }
}

TEST_F(RecommendTest, RejectsAssignmentsThatDoNotCoverTheDataset) {
  // In-range user, but the assignments table is too short — previously an
  // out-of-bounds read, now a validation error.
  const SkillAssignments empty;
  EXPECT_FALSE(RecommendForUpskilling(*dataset_, *model_, empty, difficulty_,
                                      0)
                   .ok());
}

}  // namespace
}  // namespace upskill
