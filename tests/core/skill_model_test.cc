#include "core/skill_model.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "dist/categorical.h"
#include "dist/gamma.h"
#include "dist/poisson.h"

namespace upskill {
namespace {

FeatureSchema MakeSchema() {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(4).ok());
  EXPECT_TRUE(schema.AddCount("steps").ok());
  EXPECT_TRUE(schema.AddReal("abv").ok());
  return schema;
}

ItemTable MakeItems() {
  ItemTable items(MakeSchema());
  for (int i = 0; i < 4; ++i) {
    const double row[] = {-1.0, static_cast<double>(i), 1.0 + i};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  return items;
}

TEST(SkillModelTest, CreateBuildsComponentGrid) {
  SkillModelConfig config;
  config.num_levels = 3;
  const auto model = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_levels(), 3);
  EXPECT_EQ(model.value().num_features(), 3);
  EXPECT_EQ(model.value().component(0, 1).kind(),
            DistributionKind::kCategorical);
  EXPECT_EQ(model.value().component(1, 2).kind(), DistributionKind::kPoisson);
  EXPECT_EQ(model.value().component(2, 3).kind(), DistributionKind::kGamma);
}

TEST(SkillModelTest, CreateValidatesInputs) {
  SkillModelConfig config;
  config.num_levels = 0;
  EXPECT_FALSE(SkillModel::Create(MakeSchema(), config).ok());
  config.num_levels = 3;
  EXPECT_FALSE(SkillModel::Create(FeatureSchema(), config).ok());
  config.smoothing = -1.0;
  EXPECT_FALSE(SkillModel::Create(MakeSchema(), config).ok());
}

TEST(SkillModelTest, CategoricalComponentsUseConfiguredSmoothing) {
  SkillModelConfig config;
  config.num_levels = 2;
  config.smoothing = 0.5;
  const auto model = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(model.ok());
  const auto& categorical =
      static_cast<const Categorical&>(model.value().component(0, 1));
  EXPECT_DOUBLE_EQ(categorical.smoothing(), 0.5);
}

TEST(SkillModelTest, ItemLogProbSumsComponents) {
  SkillModelConfig config;
  config.num_levels = 2;
  auto created = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  const ItemTable items = MakeItems();

  const double expected = model.component(0, 1).LogProb(2.0) +
                          model.component(1, 1).LogProb(2.0) +
                          model.component(2, 1).LogProb(3.0);
  EXPECT_NEAR(model.ItemLogProb(items, 2, 1), expected, 1e-12);
}

TEST(SkillModelTest, ItemLogProbCacheMatchesDirectComputation) {
  SkillModelConfig config;
  config.num_levels = 3;
  auto created = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  const ItemTable items = MakeItems();
  const std::vector<double> cache = model.ItemLogProbCache(items);
  ASSERT_EQ(cache.size(), 4u * 3u);
  for (ItemId i = 0; i < 4; ++i) {
    for (int s = 1; s <= 3; ++s) {
      EXPECT_NEAR(cache[static_cast<size_t>(i) * 3 + static_cast<size_t>(s - 1)],
                  model.ItemLogProb(items, i, s), 1e-12);
    }
  }
}

TEST(SkillModelTest, CacheParallelMatchesSequential) {
  SkillModelConfig config;
  config.num_levels = 3;
  auto created = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  const ItemTable items = MakeItems();
  ThreadPool pool(4);
  EXPECT_EQ(model.ItemLogProbCache(items),
            model.ItemLogProbCache(items, &pool));
}

TEST(SkillModelTest, CopyIsDeep) {
  SkillModelConfig config;
  config.num_levels = 2;
  auto created = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  SkillModel copy = model;  // deep copy
  const std::vector<double> values = {9.0, 9.0};
  copy.mutable_component(1, 1)->Fit(values);
  const auto& original = static_cast<const Poisson&>(model.component(1, 1));
  const auto& changed = static_cast<const Poisson&>(copy.component(1, 1));
  EXPECT_DOUBLE_EQ(changed.rate(), 9.0);
  EXPECT_NE(original.rate(), 9.0);
}

TEST(SkillModelTest, SaveLoadRoundTrip) {
  SkillModelConfig config;
  config.num_levels = 2;
  auto created = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  const std::vector<double> poisson_values = {3.0, 5.0};
  model.mutable_component(1, 2)->Fit(poisson_values);
  const std::vector<double> gamma_values = {1.0, 2.0, 4.0};
  model.mutable_component(2, 1)->Fit(gamma_values);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("upskill_model_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ASSERT_TRUE(model.Save(path).ok());
  const auto loaded = SkillModel::Load(path, MakeSchema(), config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int f = 0; f < model.num_features(); ++f) {
    for (int s = 1; s <= 2; ++s) {
      EXPECT_EQ(loaded.value().component(f, s).Parameters(),
                model.component(f, s).Parameters())
          << "f=" << f << " s=" << s;
    }
  }
  std::filesystem::remove(path);
}

TEST(SkillModelTest, LoadRejectsWrongShape) {
  SkillModelConfig config;
  config.num_levels = 2;
  auto created = SkillModel::Create(MakeSchema(), config);
  ASSERT_TRUE(created.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("upskill_model_bad_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ASSERT_TRUE(created.value().Save(path).ok());
  // Loading with a different level count must fail (component mismatch).
  SkillModelConfig other = config;
  other.num_levels = 3;
  EXPECT_FALSE(SkillModel::Load(path, MakeSchema(), other).ok());
  std::filesystem::remove(path);
}

TEST(AssignmentsAreMonotoneTest, AcceptsAndRejects) {
  EXPECT_TRUE(AssignmentsAreMonotone({{1, 1, 2, 3}, {2, 3}}, 3));
  EXPECT_TRUE(AssignmentsAreMonotone({{}, {3}}, 3));
  EXPECT_FALSE(AssignmentsAreMonotone({{1, 3}}, 3));   // skipped a level
  EXPECT_FALSE(AssignmentsAreMonotone({{2, 1}}, 3));   // decreased
  EXPECT_FALSE(AssignmentsAreMonotone({{0, 1}}, 3));   // below range
  EXPECT_FALSE(AssignmentsAreMonotone({{1, 4}}, 3));   // above range
}

}  // namespace
}  // namespace upskill
