// End-to-end equivalence of the sufficient-statistics update step and the
// incremental log-prob cache against the reference implementations:
//  - FitParameters vs FitParametersReference (exact for integer-statistic
//    kinds, <= 1e-12 relative where log-sums reassociate);
//  - serial vs multi-threaded training is bitwise identical (the chunk
//    structure depends only on the data);
//  - Trainer::Train vs a hand-rolled reference loop built from
//    FitParametersReference + AssignSkills;
//  - LogProbCache dirty-cell tracking.

#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/skill_model.h"
#include "data/dataset.h"
#include "datagen/synthetic.h"
#include "dist/distribution.h"

namespace upskill {
namespace {

const Dataset& TestData() {
  static const Dataset* dataset = [] {
    datagen::SyntheticConfig config;
    config.num_levels = 4;
    config.num_users = 150;
    config.num_items = 400;
    config.mean_sequence_length = 35.0;
    auto generated = datagen::GenerateSynthetic(config);
    return new Dataset(std::move(generated).value().dataset);
  }();
  return *dataset;
}

SkillModelConfig TestConfig() {
  SkillModelConfig config;
  config.num_levels = 4;
  config.min_init_actions = 20;
  config.max_iterations = 8;
  return config;
}

bool IsExactKind(DistributionKind kind) {
  return kind == DistributionKind::kCategorical ||
         kind == DistributionKind::kPoisson;
}

void ExpectModelsMatch(const SkillModel& actual, const SkillModel& expected,
                       double rel_tol) {
  ASSERT_EQ(actual.num_features(), expected.num_features());
  ASSERT_EQ(actual.num_levels(), expected.num_levels());
  for (int f = 0; f < actual.num_features(); ++f) {
    for (int s = 1; s <= actual.num_levels(); ++s) {
      const std::vector<double> got = actual.component(f, s).Parameters();
      const std::vector<double> want = expected.component(f, s).Parameters();
      ASSERT_EQ(got.size(), want.size());
      if (IsExactKind(actual.component(f, s).kind())) {
        EXPECT_EQ(got, want) << "feature " << f << " level " << s;
        continue;
      }
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want[i],
                    rel_tol * std::max(1.0, std::abs(want[i])))
            << "feature " << f << " level " << s << " parameter " << i;
      }
    }
  }
}

TEST(FitParametersEquivalenceTest, MatchesReferenceImplementation) {
  const Dataset& dataset = TestData();
  const SkillModelConfig config = TestConfig();
  const SkillAssignments assignments = InitializeAssignments(
      dataset, config.num_levels, config.min_init_actions);

  SkillModel fast = SkillModel::Create(dataset.schema(), config).value();
  SkillModel reference = SkillModel::Create(dataset.schema(), config).value();
  FitParameters(dataset, assignments, &fast);
  FitParametersReference(dataset, assignments, &reference);
  ExpectModelsMatch(fast, reference, 1e-12);
}

TEST(FitParametersEquivalenceTest, ParallelIsBitwiseIdenticalToSerial) {
  const Dataset& dataset = TestData();
  const SkillModelConfig config = TestConfig();
  const SkillAssignments assignments = InitializeAssignments(
      dataset, config.num_levels, config.min_init_actions);

  SkillModel serial = SkillModel::Create(dataset.schema(), config).value();
  FitParameters(dataset, assignments, &serial);

  ThreadPool pool(8);
  for (const bool levels : {false, true}) {
    for (const bool features : {false, true}) {
      ParallelOptions parallel;
      parallel.num_threads = 8;
      parallel.levels = levels;
      parallel.features = features;
      SkillModel model = SkillModel::Create(dataset.schema(), config).value();
      FitParameters(dataset, assignments, &model, &pool, parallel);
      for (int f = 0; f < model.num_features(); ++f) {
        for (int s = 1; s <= model.num_levels(); ++s) {
          EXPECT_EQ(model.component(f, s).Parameters(),
                    serial.component(f, s).Parameters())
              << "levels=" << levels << " features=" << features
              << " feature " << f << " level " << s;
        }
      }
    }
  }
}

TEST(TrainerEquivalenceTest, SerialAndParallelTrainingAreBitwiseIdentical) {
  const Dataset& dataset = TestData();

  Trainer serial_trainer(TestConfig());
  const TrainResult serial = serial_trainer.Train(dataset).value();

  SkillModelConfig parallel_config = TestConfig();
  parallel_config.parallel.num_threads = 8;
  parallel_config.parallel.users = true;
  parallel_config.parallel.levels = true;
  parallel_config.parallel.features = true;
  Trainer parallel_trainer(parallel_config);
  const TrainResult parallel = parallel_trainer.Train(dataset).value();

  EXPECT_EQ(parallel.iterations, serial.iterations);
  EXPECT_EQ(parallel.converged, serial.converged);
  EXPECT_EQ(parallel.assignments, serial.assignments);
  EXPECT_EQ(parallel.log_likelihood_trace, serial.log_likelihood_trace);
  ExpectModelsMatch(parallel.model, serial.model, 0.0);
}

// Reference coordinate-ascent loop assembled from the reference update
// step and the standalone assignment step, mirroring Trainer::Train's
// convergence logic without the incremental cache.
TrainResult ReferenceTrain(const Dataset& dataset,
                           const SkillModelConfig& config) {
  TrainResult result;
  result.model = SkillModel::Create(dataset.schema(), config).value();
  const SkillAssignments init = InitializeAssignments(
      dataset, config.num_levels, config.min_init_actions);
  FitParametersReference(dataset, init, &result.model);

  double previous_ll = -std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < config.max_iterations; ++iteration) {
    double ll = 0.0;
    SkillAssignments assignments =
        AssignSkills(dataset, result.model, nullptr, {}, &ll);
    const bool unchanged = iteration > 0 && assignments == result.assignments;
    result.assignments = std::move(assignments);
    result.log_likelihood_trace.push_back(ll);
    result.iterations = iteration + 1;
    const bool small_gain =
        std::isfinite(previous_ll) &&
        ll - previous_ll <= config.relative_tolerance * std::abs(previous_ll);
    if (unchanged || small_gain) {
      result.converged = true;
      result.final_log_likelihood = ll;
      break;
    }
    previous_ll = ll;
    FitParametersReference(dataset, result.assignments, &result.model);
    result.final_log_likelihood = ll;
  }
  return result;
}

TEST(TrainerEquivalenceTest, MatchesReferenceTrainingLoop) {
  const Dataset& dataset = TestData();
  const SkillModelConfig config = TestConfig();

  Trainer trainer(config);
  const TrainResult fast = trainer.Train(dataset).value();
  const TrainResult reference = ReferenceTrain(dataset, config);

  // The gamma cells differ from the reference at the last few ulps, so the
  // hard argmax assignments must coincide while the traces agree to a
  // tight relative tolerance.
  EXPECT_EQ(fast.iterations, reference.iterations);
  EXPECT_EQ(fast.converged, reference.converged);
  EXPECT_EQ(fast.assignments, reference.assignments);
  ASSERT_EQ(fast.log_likelihood_trace.size(),
            reference.log_likelihood_trace.size());
  for (size_t i = 0; i < fast.log_likelihood_trace.size(); ++i) {
    EXPECT_NEAR(fast.log_likelihood_trace[i],
                reference.log_likelihood_trace[i],
                1e-9 * std::abs(reference.log_likelihood_trace[i]))
        << "iteration " << i;
  }
  ExpectModelsMatch(fast.model, reference.model, 1e-12);
}

TEST(LogProbCacheTest, TracksDirtyCellsAndMatchesFullRecompute) {
  const Dataset& dataset = TestData();
  const SkillModelConfig config = TestConfig();
  SkillModel model = SkillModel::Create(dataset.schema(), config).value();
  const SkillAssignments assignments = InitializeAssignments(
      dataset, config.num_levels, config.min_init_actions);
  FitParameters(dataset, assignments, &model);

  LogProbCache cache;
  cache.Update(model, dataset.items());
  EXPECT_EQ(cache.last_dirty_cells(),
            model.num_features() * model.num_levels());
  EXPECT_EQ(cache.values(), model.ItemLogProbCache(dataset.items()));

  // No parameter changed: nothing recomputes and the totals are stable.
  const std::vector<double> before = cache.values();
  cache.Update(model, dataset.items());
  EXPECT_EQ(cache.last_dirty_cells(), 0);
  EXPECT_EQ(cache.values(), before);

  // Perturb exactly one component (the gamma "intensity" feature, whose
  // SetParameters accepts any positive values); only its cell may
  // recompute, and the totals must equal a from-scratch cache bitwise.
  ASSERT_EQ(model.component(2, 2).kind(), DistributionKind::kGamma);
  std::vector<double> params = model.component(2, 2).Parameters();
  params[0] += 0.125;
  ASSERT_TRUE(model.mutable_component(2, 2)->SetParameters(params).ok());
  cache.Update(model, dataset.items());
  EXPECT_EQ(cache.last_dirty_cells(), 1);
  EXPECT_EQ(cache.values(), model.ItemLogProbCache(dataset.items()));

  // Setting a parameter to its current value keeps the cell clean.
  ASSERT_TRUE(model.mutable_component(2, 2)->SetParameters(params).ok());
  cache.Update(model, dataset.items());
  EXPECT_EQ(cache.last_dirty_cells(), 0);
}

}  // namespace
}  // namespace upskill
