#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/synthetic.h"
#include "dist/poisson.h"
#include "eval/metrics.h"

namespace upskill {
namespace {

// Small synthetic dataset with clearly separated levels.
datagen::GeneratedData MakeData(int num_users = 200, int num_items = 500,
                                uint64_t seed = 99) {
  datagen::SyntheticConfig config;
  config.num_users = num_users;
  config.num_items = num_items;
  config.mean_sequence_length = 30.0;
  config.seed = seed;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(SegmentUniformlyTest, SplitsEvenly) {
  EXPECT_EQ(SegmentUniformly(6, 3), (std::vector<int>{1, 1, 2, 2, 3, 3}));
  EXPECT_EQ(SegmentUniformly(3, 3), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(SegmentUniformly(1, 3), (std::vector<int>{1}));
  // Shorter than S: climbs one level per action instead of skipping.
  EXPECT_EQ(SegmentUniformly(2, 5), (std::vector<int>{1, 2}));
  EXPECT_TRUE(SegmentUniformly(0, 3).empty());
}

TEST(SegmentUniformlyTest, AlwaysMonotoneInRange) {
  for (size_t len = 1; len <= 40; ++len) {
    for (int s = 1; s <= 7; ++s) {
      const std::vector<int> levels = SegmentUniformly(len, s);
      EXPECT_TRUE(AssignmentsAreMonotone({levels}, s))
          << "len=" << len << " s=" << s;
    }
  }
}

TEST(InitializeAssignmentsTest, OnlyLongSequencesParticipate) {
  const datagen::GeneratedData data = MakeData(50, 100);
  const SkillAssignments init =
      InitializeAssignments(data.dataset, 5, /*min_init_actions=*/40);
  bool any_long = false;
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    const size_t len = data.dataset.sequence(u).size();
    const auto& levels = init[static_cast<size_t>(u)];
    if (len >= 40) {
      EXPECT_EQ(levels.size(), len);
      any_long = true;
    } else {
      EXPECT_TRUE(levels.empty());
    }
  }
  EXPECT_TRUE(any_long);
}

TEST(InitializeAssignmentsTest, FallsBackWhenNobodyQualifies) {
  const datagen::GeneratedData data = MakeData(20, 100);
  const SkillAssignments init =
      InitializeAssignments(data.dataset, 5, /*min_init_actions=*/100000);
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    EXPECT_EQ(init[static_cast<size_t>(u)].size(),
              data.dataset.sequence(u).size());
  }
}

TEST(FitParametersTest, FitsPerLevelMle) {
  // Two users, two levels; Poisson feature values differ by level.
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("steps").ok());
  ItemTable items(std::move(schema));
  for (double v : {2.0, 2.0, 8.0, 8.0}) {
    const double row[] = {v};
    ASSERT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  const UserId u = dataset.AddUser();
  for (int n = 0; n < 4; ++n) {
    ASSERT_TRUE(dataset.AddAction(u, n, static_cast<ItemId>(n)).ok());
  }
  SkillModelConfig config;
  config.num_levels = 2;
  auto model = SkillModel::Create(dataset.schema(), config);
  ASSERT_TRUE(model.ok());
  const SkillAssignments assignments = {{1, 1, 2, 2}};
  FitParameters(dataset, assignments, &model.value());
  EXPECT_DOUBLE_EQ(
      static_cast<const Poisson&>(model.value().component(0, 1)).rate(), 2.0);
  EXPECT_DOUBLE_EQ(
      static_cast<const Poisson&>(model.value().component(0, 2)).rate(), 8.0);
}

TEST(FitParametersTest, ParallelModesMatchSequential) {
  const datagen::GeneratedData data = MakeData(60, 200);
  SkillModelConfig config;
  config.num_levels = 5;
  const SkillAssignments init = InitializeAssignments(data.dataset, 5, 10);

  auto fit = [&](ParallelOptions parallel, ThreadPool* pool) {
    auto model = SkillModel::Create(data.dataset.schema(), config);
    EXPECT_TRUE(model.ok());
    FitParameters(data.dataset, init, &model.value(), pool, parallel);
    return std::move(model).value();
  };

  const SkillModel sequential = fit({}, nullptr);
  ThreadPool pool(4);
  for (const auto& [levels, features] :
       {std::pair{true, false}, {false, true}, {true, true}}) {
    ParallelOptions parallel;
    parallel.num_threads = 4;
    parallel.levels = levels;
    parallel.features = features;
    const SkillModel threaded = fit(parallel, &pool);
    for (int f = 0; f < sequential.num_features(); ++f) {
      for (int s = 1; s <= 5; ++s) {
        EXPECT_EQ(threaded.component(f, s).Parameters(),
                  sequential.component(f, s).Parameters())
            << "f=" << f << " s=" << s;
      }
    }
  }
}

TEST(TrainerTest, RejectsEmptyDataset) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("x").ok());
  Dataset dataset((ItemTable(std::move(schema))));
  Trainer trainer(SkillModelConfig{});
  EXPECT_FALSE(trainer.Train(dataset).ok());
}

TEST(TrainerTest, LogLikelihoodTraceIsNonDecreasing) {
  const datagen::GeneratedData data = MakeData();
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  config.max_iterations = 30;
  Trainer trainer(config);
  const auto result = trainer.Train(data.dataset);
  ASSERT_TRUE(result.ok());
  const auto& trace = result.value().log_likelihood_trace;
  ASSERT_GE(trace.size(), 2u);
  for (size_t i = 1; i < trace.size(); ++i) {
    // Coordinate ascent: allow only floating-point slack.
    EXPECT_GE(trace[i], trace[i - 1] - 1e-6 * std::abs(trace[i - 1]))
        << "iteration " << i;
  }
}

TEST(TrainerTest, AssignmentsAreAlwaysMonotone) {
  const datagen::GeneratedData data = MakeData();
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  Trainer trainer(config);
  const auto result = trainer.Train(data.dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(result.value().assignments, 5));
  // Every user has exactly one level per action.
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    EXPECT_EQ(result.value().assignments[static_cast<size_t>(u)].size(),
              data.dataset.sequence(u).size());
  }
}

TEST(TrainerTest, RecoversPlantedSkillLevels) {
  const datagen::GeneratedData data = MakeData(400, 1000, 1234);
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  Trainer trainer(config);
  const auto result = trainer.Train(data.dataset);
  ASSERT_TRUE(result.ok());

  std::vector<double> estimated;
  std::vector<double> truth;
  for (UserId u = 0; u < data.dataset.num_users(); ++u) {
    const auto& est = result.value().assignments[static_cast<size_t>(u)];
    const auto& ref = data.truth.skill[static_cast<size_t>(u)];
    ASSERT_EQ(est.size(), ref.size());
    for (size_t n = 0; n < est.size(); ++n) {
      estimated.push_back(est[n]);
      truth.push_back(ref[n]);
    }
  }
  const double r = eval::PearsonCorrelation(estimated, truth);
  EXPECT_GT(r, 0.5) << "skill recovery too weak (r=" << r << ")";
}

TEST(TrainerTest, ParallelTrainingMatchesSequential) {
  const datagen::GeneratedData data = MakeData(100, 300);
  SkillModelConfig sequential_config;
  sequential_config.num_levels = 5;
  sequential_config.min_init_actions = 20;
  sequential_config.max_iterations = 10;
  SkillModelConfig parallel_config = sequential_config;
  parallel_config.parallel.num_threads = 4;
  parallel_config.parallel.users = true;
  parallel_config.parallel.levels = true;
  parallel_config.parallel.features = true;

  const auto sequential = Trainer(sequential_config).Train(data.dataset);
  const auto parallel = Trainer(parallel_config).Train(data.dataset);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(sequential.value().assignments, parallel.value().assignments);
  EXPECT_NEAR(sequential.value().final_log_likelihood,
              parallel.value().final_log_likelihood, 1e-6);
}

TEST(TrainerTest, SingleLevelDegeneratesGracefully) {
  const datagen::GeneratedData data = MakeData(30, 100);
  SkillModelConfig config;
  config.num_levels = 1;
  config.min_init_actions = 10;
  Trainer trainer(config);
  const auto result = trainer.Train(data.dataset);
  ASSERT_TRUE(result.ok());
  for (const auto& seq : result.value().assignments) {
    for (int level : seq) EXPECT_EQ(level, 1);
  }
}

TEST(FitTransitionWeightsTest, CountsInitialLevelsAndUps) {
  // Two sequences: starts at 1 and 2; transitions: 3 ups, 3 stays below
  // the top, 1 stay at the top (excluded from the denominator).
  const SkillAssignments assignments = {{1, 1, 2, 2, 3, 3}, {2, 3}};
  const TransitionWeights weights =
      FitTransitionWeights(assignments, 3, /*smoothing=*/0.0);
  EXPECT_NEAR(std::exp(weights.log_initial[0]), 0.5, 1e-9);
  EXPECT_NEAR(std::exp(weights.log_initial[1]), 0.5, 1e-9);
  // ups = 3 (1->2, 2->3, 2->3); stays below top = 2 (1->1, 2->2);
  // the 3->3 stays are at the top and excluded.
  EXPECT_NEAR(std::exp(weights.log_up), 3.0 / 5.0, 1e-9);
}

TEST(FitTransitionWeightsTest, SmoothingKeepsWeightsFinite) {
  const SkillAssignments assignments = {{1, 1, 1}};
  const TransitionWeights weights =
      FitTransitionWeights(assignments, 3, /*smoothing=*/0.01);
  for (double w : weights.log_initial) EXPECT_TRUE(std::isfinite(w));
  EXPECT_TRUE(std::isfinite(weights.log_up));
  EXPECT_TRUE(std::isfinite(weights.log_stay));
}

TEST(TrainerTest, GlobalTransitionModelLearnsPlausibleParameters) {
  const datagen::GeneratedData data = MakeData(200, 500, 777);
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  config.transitions = TransitionModel::kGlobal;
  Trainer trainer(config);
  const auto result = trainer.Train(data.dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(result.value().assignments, 5));
  ASSERT_EQ(result.value().initial_distribution.size(), 5u);
  double total = 0.0;
  for (double p : result.value().initial_distribution) total += p;
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The generator levels up with probability 0.1 per at-level action;
  // the learned per-action rate should be in a plausible band.
  EXPECT_GT(result.value().level_up_probability, 0.005);
  EXPECT_LT(result.value().level_up_probability, 0.5);
}

TEST(TrainerTest, TransitionModelStillRecoversSkill) {
  const datagen::GeneratedData data = MakeData(200, 500, 778);
  SkillModelConfig plain_config;
  plain_config.num_levels = 5;
  plain_config.min_init_actions = 20;
  SkillModelConfig transition_config = plain_config;
  transition_config.transitions = TransitionModel::kGlobal;

  const auto flatten = [](const SkillAssignments& assignments) {
    std::vector<double> flat;
    for (const auto& seq : assignments) {
      for (int level : seq) flat.push_back(level);
    }
    return flat;
  };
  std::vector<double> truth;
  for (const auto& seq : data.truth.skill) {
    for (int level : seq) truth.push_back(level);
  }

  const auto plain = Trainer(plain_config).Train(data.dataset);
  const auto with_transitions = Trainer(transition_config).Train(data.dataset);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_transitions.ok());
  const double r_plain =
      eval::PearsonCorrelation(flatten(plain.value().assignments), truth);
  const double r_transitions = eval::PearsonCorrelation(
      flatten(with_transitions.value().assignments), truth);
  EXPECT_GT(r_transitions, 0.4);
  EXPECT_GT(r_transitions, r_plain - 0.2);
}

TEST(TrainerTest, ConvergesBeforeIterationCap) {
  const datagen::GeneratedData data = MakeData(100, 300);
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  config.max_iterations = 100;
  Trainer trainer(config);
  const auto result = trainer.Train(data.dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().converged);
  EXPECT_LT(result.value().iterations, 100);
}

}  // namespace
}  // namespace upskill
