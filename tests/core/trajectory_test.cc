#include "core/trajectory.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

TEST(SummarizeTrajectoriesTest, CountsEverything) {
  const SkillAssignments assignments = {
      {1, 1, 2, 3},  // two ups, one stay
      {2, 2},        // one stay
      {},            // skipped
      {3},           // single action: no transitions
  };
  const auto summary = SummarizeTrajectories(assignments, 3);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().actions_per_level,
            (std::vector<size_t>{2, 3, 2}));
  EXPECT_EQ(summary.value().users_starting_at_level,
            (std::vector<size_t>{1, 1, 1}));
  EXPECT_EQ(summary.value().users_ending_at_level,
            (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(summary.value().level_ups, 2u);
  EXPECT_EQ(summary.value().level_downs, 0u);
  EXPECT_EQ(summary.value().transitions, 4u);
  EXPECT_DOUBLE_EQ(summary.value().actions_per_level_up, 2.0);
}

TEST(SummarizeTrajectoriesTest, CountsDowns) {
  // Down-steps occur under the forgetting extension.
  const SkillAssignments assignments = {{2, 3, 2, 3}};
  const auto summary = SummarizeTrajectories(assignments, 3);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().level_ups, 2u);
  EXPECT_EQ(summary.value().level_downs, 1u);
}

TEST(SummarizeTrajectoriesTest, NoLevelUps) {
  const SkillAssignments assignments = {{2, 2, 2}};
  const auto summary = SummarizeTrajectories(assignments, 3);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().level_ups, 0u);
  EXPECT_DOUBLE_EQ(summary.value().actions_per_level_up, 0.0);
}

TEST(SummarizeTrajectoriesTest, ValidatesLevels) {
  EXPECT_FALSE(SummarizeTrajectories({{0}}, 3).ok());
  EXPECT_FALSE(SummarizeTrajectories({{4}}, 3).ok());
  EXPECT_FALSE(SummarizeTrajectories({{1}}, 0).ok());
}

TEST(ActionsUntilLevelTest, FindsFirstReach) {
  const SkillAssignments assignments = {
      {1, 1, 2, 3},
      {3, 3},
      {1, 1},
      {},
  };
  const std::vector<int64_t> until = ActionsUntilLevel(assignments, 3);
  ASSERT_EQ(until.size(), 4u);
  EXPECT_EQ(until[0], 3);   // reached 3 at position 3
  EXPECT_EQ(until[1], 0);   // started at 3
  EXPECT_EQ(until[2], -1);  // never reached
  EXPECT_EQ(until[3], -1);  // empty sequence
}

TEST(ActionsUntilLevelTest, LevelOneIsImmediate) {
  const SkillAssignments assignments = {{1, 2}, {2}};
  const std::vector<int64_t> until = ActionsUntilLevel(assignments, 1);
  EXPECT_EQ(until[0], 0);
  EXPECT_EQ(until[1], 0);  // level 2 also satisfies >= 1
}

}  // namespace
}  // namespace upskill
