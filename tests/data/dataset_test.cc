#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace upskill {
namespace {

FeatureSchema MakeSchema(int num_items) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(num_items).ok());
  EXPECT_TRUE(schema.AddCount("steps").ok());
  EXPECT_TRUE(schema.AddReal("abv").ok());
  return schema;
}

TEST(ItemTableTest, AddAndReadItems) {
  ItemTable items(MakeSchema(3));
  const double row0[] = {-1.0, 4.0, 5.5};
  const double row1[] = {-1.0, 2.0, 7.25};
  ASSERT_EQ(items.AddItem(row0, "first").value(), 0);
  ASSERT_EQ(items.AddItem(row1).value(), 1);
  EXPECT_EQ(items.num_items(), 2);
  EXPECT_EQ(items.value(0, 0), 0.0);  // auto-filled ID
  EXPECT_EQ(items.value(1, 0), 1.0);
  EXPECT_EQ(items.value(0, 1), 4.0);
  EXPECT_EQ(items.value(1, 2), 7.25);
  EXPECT_EQ(items.name(0), "first");
  EXPECT_EQ(items.name(1), "");
  EXPECT_EQ(items.column(1).size(), 2u);
}

TEST(ItemTableTest, RejectsWrongArityAndInvalidValues) {
  ItemTable items(MakeSchema(3));
  const double short_row[] = {-1.0, 4.0};
  EXPECT_FALSE(items.AddItem(short_row).ok());
  const double bad_count[] = {-1.0, -4.0, 5.5};
  EXPECT_FALSE(items.AddItem(bad_count).ok());
  const double bad_real[] = {-1.0, 4.0, -5.5};
  EXPECT_FALSE(items.AddItem(bad_real).ok());
}

TEST(ItemTableTest, ExplicitIdMustBeInRange) {
  ItemTable items(MakeSchema(2));
  const double explicit_id[] = {1.0, 4.0, 5.5};  // explicit id 1 for item 0
  ASSERT_TRUE(items.AddItem(explicit_id).ok());
  EXPECT_EQ(items.value(0, 0), 1.0);
  const double out_of_range[] = {5.0, 4.0, 5.5};
  EXPECT_FALSE(items.AddItem(out_of_range).ok());
}

TEST(ItemTableTest, Metadata) {
  ItemTable items(MakeSchema(3));
  const double row[] = {-1.0, 1.0, 2.0};
  ASSERT_TRUE(items.AddItem(row).ok());
  ASSERT_TRUE(items.AddItem(row).ok());
  EXPECT_FALSE(items.SetMetadata("year", {1999.0}).ok());  // size mismatch
  ASSERT_TRUE(items.SetMetadata("year", {1999.0, 2005.0}).ok());
  EXPECT_TRUE(items.HasMetadata("year"));
  EXPECT_FALSE(items.HasMetadata("missing"));
  const auto column = items.Metadata("year");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column.value()[1], 2005.0);
  EXPECT_FALSE(items.Metadata("missing").ok());
}

Dataset MakeDataset() {
  ItemTable items(MakeSchema(4));
  const double row[] = {-1.0, 1.0, 2.0};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(items.AddItem(row).ok());
  return Dataset(std::move(items));
}

TEST(DatasetTest, AddUsersAndActions) {
  Dataset dataset = MakeDataset();
  const UserId u0 = dataset.AddUser("alice");
  const UserId u1 = dataset.AddUser();
  EXPECT_EQ(dataset.num_users(), 2);
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u0, 2, 1, 4.5).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 5, 3).ok());
  EXPECT_EQ(dataset.num_actions(), 3u);
  EXPECT_EQ(dataset.sequence(u0).size(), 2u);
  EXPECT_EQ(dataset.user_name(u0), "alice");
  EXPECT_FALSE(dataset.sequence(u0)[0].has_rating());
  EXPECT_TRUE(dataset.sequence(u0)[1].has_rating());
  EXPECT_DOUBLE_EQ(dataset.sequence(u0)[1].rating, 4.5);
}

TEST(DatasetTest, RejectsBadActions) {
  Dataset dataset = MakeDataset();
  const UserId u = dataset.AddUser();
  EXPECT_FALSE(dataset.AddAction(u, 1, 99).ok());   // unknown item
  EXPECT_FALSE(dataset.AddAction(u, 1, -1).ok());   // negative item
  EXPECT_FALSE(dataset.AddAction(7, 1, 0).ok());    // unknown user
  ASSERT_TRUE(dataset.AddAction(u, 10, 0).ok());
  EXPECT_FALSE(dataset.AddAction(u, 5, 0).ok());    // time goes backwards
  ASSERT_TRUE(dataset.AddAction(u, 10, 1).ok());    // equal time is fine
}

TEST(DatasetTest, SortSequencesRestoresOrder) {
  Dataset dataset = MakeDataset();
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 10, 0).ok());
  // Simulate a bulk loader writing out of order via sort.
  ASSERT_TRUE(dataset.AddAction(u, 20, 1).ok());
  ASSERT_TRUE(dataset.AddAction(u, 20, 2).ok());
  dataset.SortSequences();
  const auto& seq = dataset.sequence(u);
  EXPECT_EQ(seq[0].time, 10);
  // Stable sort keeps insertion order among equal times.
  EXPECT_EQ(seq[1].item, 1);
  EXPECT_EQ(seq[2].item, 2);
}

TEST(DatasetTest, CountUsedItemsAndMinTime) {
  Dataset dataset = MakeDataset();
  const UserId u0 = dataset.AddUser();
  const UserId u1 = dataset.AddUser();
  EXPECT_EQ(dataset.CountUsedItems(), 0);
  EXPECT_EQ(dataset.MinActionTime(), 0);
  ASSERT_TRUE(dataset.AddAction(u0, 7, 2).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 3, 2).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 9, 0).ok());
  EXPECT_EQ(dataset.CountUsedItems(), 2);
  EXPECT_EQ(dataset.MinActionTime(), 3);
}

TEST(DatasetTest, ForEachActionVisitsAllInOrder) {
  Dataset dataset = MakeDataset();
  const UserId u0 = dataset.AddUser();
  const UserId u1 = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 2, 1).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 3, 2).ok());
  std::vector<std::pair<UserId, ItemId>> seen;
  dataset.ForEachAction([&seen](UserId u, const Action& a) {
    seen.emplace_back(u, a.item);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_pair(u0, ItemId{0}));
  EXPECT_EQ(seen[1], std::make_pair(u1, ItemId{1}));
  EXPECT_EQ(seen[2], std::make_pair(u1, ItemId{2}));
}

}  // namespace
}  // namespace upskill
