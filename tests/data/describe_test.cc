#include "data/describe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace upskill {
namespace {

Dataset MakeDataset() {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(3).ok());
  EXPECT_TRUE(schema.AddCategorical("style", 3, {"lager", "ale", "stout"}).ok());
  EXPECT_TRUE(schema.AddCount("steps").ok());
  EXPECT_TRUE(schema.AddReal("abv").ok());
  ItemTable items(std::move(schema));
  const double rows[3][4] = {
      {-1.0, 0.0, 2.0, 4.0},
      {-1.0, 1.0, 4.0, 6.0},
      {-1.0, 1.0, 6.0, 8.0},
  };
  for (const auto& row : rows) EXPECT_TRUE(items.AddItem(row).ok());
  Dataset dataset(std::move(items));
  const UserId u = dataset.AddUser();
  // Item 0 selected twice, item 1 once, item 2 never.
  EXPECT_TRUE(dataset.AddAction(u, 1, 0).ok());
  EXPECT_TRUE(dataset.AddAction(u, 2, 0).ok());
  EXPECT_TRUE(dataset.AddAction(u, 3, 1).ok());
  return dataset;
}

TEST(DescribeDatasetTest, ActionWeightedSummaries) {
  const Dataset dataset = MakeDataset();
  const DatasetDescription description = DescribeDataset(dataset);
  ASSERT_EQ(description.features.size(), 4u);
  EXPECT_EQ(description.stats.num_actions, 3u);

  // Style over actions: lager twice (item 0), ale once (item 1).
  const FeatureSummary& style = description.features[1];
  EXPECT_EQ(style.distinct_values, 2u);
  ASSERT_GE(style.top_categories.size(), 1u);
  EXPECT_EQ(style.top_categories[0].first, 0);
  EXPECT_EQ(style.top_categories[0].second, 2u);

  // Steps over actions: {2, 2, 4} -> mean 8/3.
  const FeatureSummary& steps = description.features[2];
  EXPECT_NEAR(steps.mean, 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps.min, 2.0);
  EXPECT_DOUBLE_EQ(steps.max, 4.0);
}

TEST(DescribeDatasetTest, ItemWeightedSummaries) {
  const Dataset dataset = MakeDataset();
  const DatasetDescription description =
      DescribeDataset(dataset, /*weight_by_actions=*/false);
  // Steps over items: {2, 4, 6} -> mean 4, includes the never-selected
  // item.
  const FeatureSummary& steps = description.features[2];
  EXPECT_DOUBLE_EQ(steps.mean, 4.0);
  EXPECT_DOUBLE_EQ(steps.max, 6.0);
  // Style over items: ale twice, lager once.
  const FeatureSummary& style = description.features[1];
  EXPECT_EQ(style.top_categories[0].first, 1);
  EXPECT_EQ(style.top_categories[0].second, 2u);
}

TEST(DescribeDatasetTest, TopKBoundsCategories) {
  const Dataset dataset = MakeDataset();
  const DatasetDescription description =
      DescribeDataset(dataset, true, /*top_k=*/1);
  EXPECT_EQ(description.features[1].top_categories.size(), 1u);
  const DatasetDescription none = DescribeDataset(dataset, true, 0);
  EXPECT_TRUE(none.features[1].top_categories.empty());
}

TEST(DescribeDatasetTest, FormatIncludesLabelsAndMoments) {
  const Dataset dataset = MakeDataset();
  const DatasetDescription description = DescribeDataset(dataset);
  const std::string text =
      FormatDescription(description, dataset.schema());
  EXPECT_NE(text.find("lager:2"), std::string::npos) << text;
  EXPECT_NE(text.find("steps"), std::string::npos);
  EXPECT_NE(text.find("abv"), std::string::npos);
  EXPECT_NE(text.find("users: 1"), std::string::npos);
}

}  // namespace
}  // namespace upskill
