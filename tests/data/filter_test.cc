#include "data/filter.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

// Builds a dataset with `num_items` trivially-featured items.
Dataset MakeDataset(int num_items) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(num_items).ok());
  EXPECT_TRUE(schema.AddCount("steps").ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {-1.0, static_cast<double>(i)};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  return Dataset(std::move(items));
}

TEST(CompactDatasetTest, RemapsItemsAndUsers) {
  Dataset dataset = MakeDataset(4);
  const UserId u0 = dataset.AddUser("keepme");
  const UserId u1 = dataset.AddUser("dropme");
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u0, 2, 3).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 1, 1).ok());

  const std::vector<char> keep_user = {1, 0};
  const std::vector<char> keep_item = {0, 1, 1, 1};
  const auto result = CompactDataset(dataset, keep_user, keep_item);
  ASSERT_TRUE(result.ok());
  const Dataset& out = result.value().dataset;

  EXPECT_EQ(out.items().num_items(), 3);
  EXPECT_EQ(out.num_users(), 1);
  EXPECT_EQ(out.user_name(0), "keepme");
  // Item 0 dropped: u0's first action disappears, item 3 -> new id 2.
  ASSERT_EQ(out.sequence(0).size(), 1u);
  EXPECT_EQ(out.sequence(0)[0].item, 2);
  // Maps reflect the compaction.
  EXPECT_EQ(result.value().item_map[0], -1);
  EXPECT_EQ(result.value().item_map[3], 2);
  EXPECT_EQ(result.value().user_map[0], 0);
  EXPECT_EQ(result.value().user_map[1], -1);
  // The ID feature column matches the new ids, and its cardinality shrank.
  EXPECT_EQ(out.items().value(2, 0), 2.0);
  EXPECT_EQ(out.schema().feature(out.schema().id_feature()).cardinality, 3);
  // Non-ID features carried over (item 3 had steps=3).
  EXPECT_EQ(out.items().value(2, 1), 3.0);
}

TEST(CompactDatasetTest, CarriesMetadata) {
  Dataset dataset = MakeDataset(3);
  ASSERT_TRUE(dataset.mutable_items()
                  .SetMetadata("year", {1990.0, 2000.0, 2010.0})
                  .ok());
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 1, 1).ok());
  const auto result = CompactDataset(dataset, {1}, {0, 1, 1});
  ASSERT_TRUE(result.ok());
  const auto metadata = result.value().dataset.items().Metadata("year");
  ASSERT_TRUE(metadata.ok());
  ASSERT_EQ(metadata.value().size(), 2u);
  EXPECT_EQ(metadata.value()[0], 2000.0);
  EXPECT_EQ(metadata.value()[1], 2010.0);
}

TEST(CompactDatasetTest, DropsEmptiedUsersOnlyWhenAsked) {
  Dataset dataset = MakeDataset(2);
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 1, 0).ok());
  const auto dropped = CompactDataset(dataset, {1}, {0, 1}, true);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value().dataset.num_users(), 0);
  const auto kept = CompactDataset(dataset, {1}, {0, 1}, false);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value().dataset.num_users(), 1);
  EXPECT_TRUE(kept.value().dataset.sequence(0).empty());
}

TEST(CompactDatasetTest, ValidatesMaskSizes) {
  Dataset dataset = MakeDataset(2);
  dataset.AddUser();
  EXPECT_FALSE(CompactDataset(dataset, {1, 1}, {1, 1}).ok());
  EXPECT_FALSE(CompactDataset(dataset, {1}, {1}).ok());
}

TEST(FilterByActivityTest, DropsInactiveUsersAndItems) {
  Dataset dataset = MakeDataset(3);
  const UserId active = dataset.AddUser();
  const UserId casual = dataset.AddUser();
  // active selects items 0 and 1; casual selects only item 2.
  ASSERT_TRUE(dataset.AddAction(active, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(active, 2, 1).ok());
  ASSERT_TRUE(dataset.AddAction(active, 3, 0).ok());
  ASSERT_TRUE(dataset.AddAction(casual, 1, 2).ok());

  // Users need >= 2 unique items; items need >= 1 unique (kept) user.
  const auto result = FilterByActivity(dataset, 2, 1);
  ASSERT_TRUE(result.ok());
  const Dataset& out = result.value().dataset;
  EXPECT_EQ(out.num_users(), 1);
  EXPECT_EQ(out.items().num_items(), 2);  // item 2 lost its only user
  EXPECT_EQ(out.num_actions(), 3u);
}

TEST(FilterByActivityTest, ItemThresholdCountsUniqueUsers) {
  Dataset dataset = MakeDataset(2);
  const UserId u0 = dataset.AddUser();
  const UserId u1 = dataset.AddUser();
  // Item 0: two unique users; item 1: one user selecting it twice.
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 2, 1).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 3, 1).ok());
  const auto result = FilterByActivity(dataset, 0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().dataset.items().num_items(), 1);
  EXPECT_EQ(result.value().item_map[0], 0);
  EXPECT_EQ(result.value().item_map[1], -1);
}

TEST(FilterByActivityTest, ZeroThresholdsKeepEverything) {
  Dataset dataset = MakeDataset(2);
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 1, 0).ok());
  const auto result = FilterByActivity(dataset, 0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().dataset.num_users(), 1);
  EXPECT_EQ(result.value().dataset.items().num_items(), 2);
}

TEST(FilterByActivityTest, MultipleRoundsReachFixpoint) {
  Dataset dataset = MakeDataset(3);
  const UserId u0 = dataset.AddUser();
  const UserId u1 = dataset.AddUser();
  // u0: items {0, 1}; u1: items {1, 2}. Dropping item 2 (one user) pushes
  // u1 under the 2-unique-items bar in round 2, which then drops item 1's
  // second user... but item 1 still has u0.
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u0, 2, 1).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 1, 1).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 2, 2).ok());
  const auto one_round = FilterByActivity(dataset, 2, 2, 1);
  ASSERT_TRUE(one_round.ok());
  const auto fixpoint = FilterByActivity(dataset, 2, 2, 10);
  ASSERT_TRUE(fixpoint.ok());
  // After enough rounds nothing survives: item 1 is the only 2-user item,
  // but each user then has a single unique item.
  EXPECT_EQ(fixpoint.value().dataset.num_actions(), 0u);
}

TEST(FilterOldItemsTest, RemovesItemsReleasedAfterFirstAction) {
  Dataset dataset = MakeDataset(3);
  ASSERT_TRUE(dataset.mutable_items()
                  .SetMetadata("release_time", {5.0, 15.0, 8.0})
                  .ok());
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 10, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u, 12, 1).ok());  // released at 15 > 10
  ASSERT_TRUE(dataset.AddAction(u, 14, 2).ok());
  const auto result = FilterOldItems(dataset, "release_time");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().dataset.items().num_items(), 2);
  EXPECT_EQ(result.value().item_map[1], -1);
  EXPECT_EQ(result.value().dataset.num_actions(), 2u);
}

TEST(FilterOldItemsTest, MissingMetadataFails) {
  Dataset dataset = MakeDataset(1);
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 1, 0).ok());
  EXPECT_FALSE(FilterOldItems(dataset, "release_time").ok());
}

}  // namespace
}  // namespace upskill
