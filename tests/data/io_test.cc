#include "data/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace upskill {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("upskill_io_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Dataset MakeRichDataset() {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(3).ok());
  EXPECT_TRUE(schema.AddCategorical("style", 2, {"lager, pale", "ipa"}).ok());
  EXPECT_TRUE(schema.AddCount("steps").ok());
  EXPECT_TRUE(schema.AddReal("abv").ok());
  EXPECT_TRUE(schema.AddReal("pct", DistributionKind::kLogNormal).ok());
  ItemTable items(std::move(schema));
  const double rows[3][5] = {{-1.0, 0.0, 4.0, 5.5, 10.0},
                             {-1.0, 1.0, 2.0, 8.25, 20.0},
                             {-1.0, 0.0, 7.0, 6.125, 30.0}};
  EXPECT_TRUE(items.AddItem(rows[0], "first \"quoted\"").ok());
  EXPECT_TRUE(items.AddItem(rows[1], "second, with comma").ok());
  EXPECT_TRUE(items.AddItem(rows[2]).ok());
  EXPECT_TRUE(items.SetMetadata("year", {1990.0, 2000.5, 2010.0}).ok());

  Dataset dataset(std::move(items));
  const UserId u0 = dataset.AddUser("alice");
  const UserId u1 = dataset.AddUser("");
  EXPECT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  EXPECT_TRUE(dataset.AddAction(u0, 2, 1, 4.25).ok());
  EXPECT_TRUE(dataset.AddAction(u1, 7, 2).ok());
  return dataset;
}

TEST_F(DatasetIoTest, RoundTrip) {
  const Dataset original = MakeRichDataset();
  ASSERT_TRUE(SaveDataset(original, dir_.string()).ok());
  const auto loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& copy = loaded.value();

  // Schema round-trips.
  ASSERT_EQ(copy.schema().num_features(), original.schema().num_features());
  EXPECT_EQ(copy.schema().id_feature(), original.schema().id_feature());
  for (int f = 0; f < original.schema().num_features(); ++f) {
    EXPECT_EQ(copy.schema().feature(f).name, original.schema().feature(f).name);
    EXPECT_EQ(copy.schema().feature(f).type, original.schema().feature(f).type);
    EXPECT_EQ(copy.schema().feature(f).distribution,
              original.schema().feature(f).distribution);
    EXPECT_EQ(copy.schema().feature(f).cardinality,
              original.schema().feature(f).cardinality);
    EXPECT_EQ(copy.schema().feature(f).labels,
              original.schema().feature(f).labels);
  }

  // Items round-trip, including names, exact values, and metadata.
  ASSERT_EQ(copy.items().num_items(), original.items().num_items());
  for (ItemId i = 0; i < original.items().num_items(); ++i) {
    EXPECT_EQ(copy.items().name(i), original.items().name(i));
    for (int f = 0; f < original.schema().num_features(); ++f) {
      EXPECT_DOUBLE_EQ(copy.items().value(i, f), original.items().value(i, f));
    }
  }
  const auto metadata = copy.items().Metadata("year");
  ASSERT_TRUE(metadata.ok());
  EXPECT_DOUBLE_EQ(metadata.value()[1], 2000.5);

  // Users and actions round-trip.
  ASSERT_EQ(copy.num_users(), original.num_users());
  EXPECT_EQ(copy.user_name(0), "alice");
  ASSERT_EQ(copy.num_actions(), original.num_actions());
  EXPECT_EQ(copy.sequence(0)[1].item, 1);
  EXPECT_DOUBLE_EQ(copy.sequence(0)[1].rating, 4.25);
  EXPECT_FALSE(copy.sequence(0)[0].has_rating());
  EXPECT_EQ(copy.sequence(1)[0].time, 7);
}

TEST_F(DatasetIoTest, LoadFromMissingDirectoryFails) {
  const auto loaded = LoadDataset((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(DatasetIoTest, CorruptActionsFileFails) {
  const Dataset original = MakeRichDataset();
  ASSERT_TRUE(SaveDataset(original, dir_.string()).ok());
  // Truncate a row of actions.csv.
  const std::string path = (dir_ / "actions.csv").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("user,time,item,rating\n0,1\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadDataset(dir_.string()).ok());
}

TEST_F(DatasetIoTest, ActionReferencingUnknownItemFails) {
  const Dataset original = MakeRichDataset();
  ASSERT_TRUE(SaveDataset(original, dir_.string()).ok());
  const std::string path = (dir_ / "actions.csv").string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("user,time,item,rating\n0,1,99,\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadDataset(dir_.string()).ok());
}

}  // namespace
}  // namespace upskill
