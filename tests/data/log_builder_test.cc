#include "data/log_builder.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

namespace upskill {
namespace {

TEST(ActionLogBuilderTest, BuildsFromFeaturedItems) {
  ActionLogBuilder builder;
  ASSERT_TRUE(builder.DeclareCount("steps").ok());
  ASSERT_TRUE(builder.DeclareReal("abv").ok());
  const double easy[] = {2.0, 4.5};
  const double hard[] = {9.0, 9.5};
  ASSERT_TRUE(builder.AddItem("easy", easy).ok());
  ASSERT_TRUE(builder.AddItem("hard", hard).ok());
  ASSERT_TRUE(builder.AddEvent("alice", 10, "easy").ok());
  ASSERT_TRUE(builder.AddEvent("bob", 5, "hard", 4.5).ok());
  ASSERT_TRUE(builder.AddEvent("alice", 20, "hard").ok());

  const auto dataset = std::move(builder).Build();
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset.value().num_users(), 2);
  EXPECT_EQ(dataset.value().items().num_items(), 2);
  EXPECT_EQ(dataset.value().num_actions(), 3u);
  // Schema: ID first, declared features after.
  EXPECT_EQ(dataset.value().schema().id_feature(), 0);
  EXPECT_EQ(dataset.value().schema().feature(1).name, "steps");
  EXPECT_EQ(dataset.value().schema().feature(2).name, "abv");
  // Values and names survived.
  EXPECT_EQ(dataset.value().items().name(0), "easy");
  EXPECT_DOUBLE_EQ(dataset.value().items().value(1, 1), 9.0);
  // User keys became names; sequences are chronological.
  EXPECT_EQ(dataset.value().user_name(0), "alice");
  EXPECT_EQ(dataset.value().sequence(0)[0].item, 0);
  EXPECT_EQ(dataset.value().sequence(0)[1].item, 1);
  EXPECT_DOUBLE_EQ(dataset.value().sequence(1)[0].rating, 4.5);
}

TEST(ActionLogBuilderTest, SortsOutOfOrderEventsStably) {
  ActionLogBuilder builder;
  ASSERT_TRUE(builder.AddEvent("u", 30, "c").ok());
  ASSERT_TRUE(builder.AddEvent("u", 10, "a").ok());
  ASSERT_TRUE(builder.AddEvent("u", 30, "d").ok());  // tie with "c"
  ASSERT_TRUE(builder.AddEvent("u", 20, "b").ok());
  const auto dataset = std::move(builder).Build();
  ASSERT_TRUE(dataset.ok());
  const auto& seq = dataset.value().sequence(0);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(dataset.value().items().name(seq[0].item), "a");
  EXPECT_EQ(dataset.value().items().name(seq[1].item), "b");
  EXPECT_EQ(dataset.value().items().name(seq[2].item), "c");  // arrival order
  EXPECT_EQ(dataset.value().items().name(seq[3].item), "d");
}

TEST(ActionLogBuilderTest, AutoRegistersItemsOnlyForPureIdLogs) {
  ActionLogBuilder pure;
  EXPECT_TRUE(pure.AddEvent("u", 1, "never-declared").ok());

  ActionLogBuilder featured;
  ASSERT_TRUE(featured.DeclareCount("steps").ok());
  EXPECT_FALSE(featured.AddEvent("u", 1, "never-declared").ok());
}

TEST(ActionLogBuilderTest, ValidatesDeclarationsAndItems) {
  ActionLogBuilder builder;
  EXPECT_FALSE(builder.DeclareCount("").ok());
  EXPECT_FALSE(builder.DeclareCategorical("c", 0).ok());
  EXPECT_FALSE(builder.DeclareCategorical("c", 2, {"one"}).ok());
  EXPECT_FALSE(builder.DeclareReal("r", DistributionKind::kPoisson).ok());
  EXPECT_FALSE(builder.DeclareCount(kItemIdFeatureName).ok());
  ASSERT_TRUE(builder.DeclareCount("steps").ok());
  EXPECT_FALSE(builder.DeclareCount("steps").ok());  // duplicate

  const double row[] = {1.0};
  ASSERT_TRUE(builder.AddItem("x", row).ok());
  EXPECT_FALSE(builder.AddItem("x", row).ok());       // re-register
  EXPECT_FALSE(builder.AddItem("y", {}).ok());        // wrong arity
  EXPECT_FALSE(builder.DeclareCount("late").ok());    // after items
}

TEST(ActionLogBuilderTest, EmptyLogFailsToBuild) {
  ActionLogBuilder builder;
  EXPECT_FALSE(std::move(builder).Build().ok());
}

class LoadActionLogCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("upskill_log_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void WriteLog(const char* contents) {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(contents, f);
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(LoadActionLogCsvTest, LoadsTriplesWithHeaderAndRatings) {
  WriteLog(
      "user,time,item,rating\n"
      "alice,3,beer-1,4.5\n"
      "alice,1,beer-2,\n"
      "bob,2,beer-1,3.0\n");
  const auto dataset = LoadActionLogCsv(path_);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset.value().num_users(), 2);
  EXPECT_EQ(dataset.value().items().num_items(), 2);
  EXPECT_EQ(dataset.value().num_actions(), 3u);
  // alice's events were re-sorted; the first has no rating.
  EXPECT_FALSE(dataset.value().sequence(0)[0].has_rating());
  EXPECT_DOUBLE_EQ(dataset.value().sequence(0)[1].rating, 4.5);
}

TEST_F(LoadActionLogCsvTest, LoadsHeaderlessTriples) {
  WriteLog("u1,1,a\nu1,2,b\n");
  const auto dataset = LoadActionLogCsv(path_);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().num_actions(), 2u);
}

TEST_F(LoadActionLogCsvTest, RejectsMalformedRows) {
  WriteLog("u1,1\n");
  EXPECT_FALSE(LoadActionLogCsv(path_).ok());
  // A bad time in the first row is tolerated as a header; later rows are
  // not.
  WriteLog("u1,1,a\nu1,notatime,b\n");
  EXPECT_FALSE(LoadActionLogCsv(path_).ok());
  WriteLog("u1,1,a,notarating\n");
  EXPECT_FALSE(LoadActionLogCsv(path_).ok());
}

}  // namespace
}  // namespace upskill
