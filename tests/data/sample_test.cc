#include "data/sample.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

Dataset MakeDataset(int num_users, int actions_per_user) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(10).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 10; ++i) {
    const double row[] = {-1.0};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  for (int u = 0; u < num_users; ++u) {
    dataset.AddUser("user" + std::to_string(u));
    for (int n = 0; n < actions_per_user; ++n) {
      EXPECT_TRUE(dataset.AddAction(u, n, (u + n) % 10).ok());
    }
  }
  return dataset;
}

TEST(SampleUsersTest, FractionEdges) {
  const Dataset dataset = MakeDataset(40, 5);
  Rng rng(1);
  const auto none = SampleUsers(dataset, 0.0, rng);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().dataset.num_users(), 0);
  const auto all = SampleUsers(dataset, 1.0, rng);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().dataset.num_users(), 40);
  EXPECT_EQ(all.value().dataset.num_actions(), dataset.num_actions());
  EXPECT_FALSE(SampleUsers(dataset, 1.5, rng).ok());
}

TEST(SampleUsersTest, ApproximatesFraction) {
  const Dataset dataset = MakeDataset(400, 3);
  Rng rng(7);
  const auto half = SampleUsers(dataset, 0.5, rng);
  ASSERT_TRUE(half.ok());
  EXPECT_NEAR(half.value().dataset.num_users(), 200, 40);
  // Kept users retain their full sequences and names.
  const auto& result = half.value();
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const UserId mapped = result.user_map[static_cast<size_t>(u)];
    if (mapped < 0) continue;
    EXPECT_EQ(result.dataset.sequence(mapped).size(),
              dataset.sequence(u).size());
    EXPECT_EQ(result.dataset.user_name(mapped), dataset.user_name(u));
  }
}

TEST(SampleUsersExactlyTest, TakesRequestedCount) {
  const Dataset dataset = MakeDataset(30, 4);
  Rng rng(11);
  const auto ten = SampleUsersExactly(dataset, 10, rng);
  ASSERT_TRUE(ten.ok());
  EXPECT_EQ(ten.value().dataset.num_users(), 10);
  // Requesting more than available keeps everyone.
  const auto plenty = SampleUsersExactly(dataset, 100, rng);
  ASSERT_TRUE(plenty.ok());
  EXPECT_EQ(plenty.value().dataset.num_users(), 30);
  EXPECT_FALSE(SampleUsersExactly(dataset, -1, rng).ok());
}

TEST(SampleUsersExactlyTest, DifferentSeedsPickDifferentUsers) {
  const Dataset dataset = MakeDataset(50, 2);
  Rng rng_a(1);
  Rng rng_b(2);
  const auto a = SampleUsersExactly(dataset, 10, rng_a);
  const auto b = SampleUsersExactly(dataset, 10, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().user_map, b.value().user_map);
}

TEST(TruncateSequencesTest, CapsLengths) {
  const Dataset dataset = MakeDataset(5, 8);
  const auto truncated = TruncateSequences(dataset, 3);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated.value().num_users(), 5);
  for (UserId u = 0; u < 5; ++u) {
    ASSERT_EQ(truncated.value().sequence(u).size(), 3u);
    // Prefix preserved.
    for (size_t n = 0; n < 3; ++n) {
      EXPECT_EQ(truncated.value().sequence(u)[n].item,
                dataset.sequence(u)[n].item);
    }
  }
  // A cap above every length is a no-op.
  const auto untouched = TruncateSequences(dataset, 100);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(untouched.value().num_actions(), dataset.num_actions());
  // Zero empties all sequences but keeps the users.
  const auto empty = TruncateSequences(dataset, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().num_actions(), 0u);
  EXPECT_EQ(empty.value().num_users(), 5);
}

}  // namespace
}  // namespace upskill
