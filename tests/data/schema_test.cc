#include "data/schema.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

TEST(FeatureSchemaTest, AddCategorical) {
  FeatureSchema schema;
  const auto index = schema.AddCategorical("genre", 5, {"a", "b", "c", "d", "e"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value(), 0);
  EXPECT_EQ(schema.num_features(), 1);
  const FeatureSpec& spec = schema.feature(0);
  EXPECT_EQ(spec.name, "genre");
  EXPECT_EQ(spec.type, FeatureType::kCategorical);
  EXPECT_EQ(spec.cardinality, 5);
  EXPECT_EQ(spec.labels[2], "c");
}

TEST(FeatureSchemaTest, RejectsBadCategorical) {
  FeatureSchema schema;
  EXPECT_FALSE(schema.AddCategorical("x", 0).ok());
  EXPECT_FALSE(schema.AddCategorical("", 3).ok());
  EXPECT_FALSE(schema.AddCategorical("y", 3, {"only-one"}).ok());
}

TEST(FeatureSchemaTest, RejectsDuplicateNames) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("steps").ok());
  EXPECT_FALSE(schema.AddCount("steps").ok());
  EXPECT_FALSE(schema.AddCategorical("steps", 3).ok());
}

TEST(FeatureSchemaTest, CountAndRealKinds) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("steps").ok());
  ASSERT_TRUE(schema.AddReal("abv").ok());
  ASSERT_TRUE(schema.AddReal("pct", DistributionKind::kLogNormal).ok());
  EXPECT_EQ(schema.feature(0).distribution, DistributionKind::kPoisson);
  EXPECT_EQ(schema.feature(1).distribution, DistributionKind::kGamma);
  EXPECT_EQ(schema.feature(2).distribution, DistributionKind::kLogNormal);
}

TEST(FeatureSchemaTest, RealRejectsDiscreteKinds) {
  FeatureSchema schema;
  EXPECT_FALSE(schema.AddReal("x", DistributionKind::kCategorical).ok());
  EXPECT_FALSE(schema.AddReal("x", DistributionKind::kPoisson).ok());
}

TEST(FeatureSchemaTest, IdFeature) {
  FeatureSchema schema;
  EXPECT_EQ(schema.id_feature(), -1);
  ASSERT_TRUE(schema.AddCount("steps").ok());
  const auto id = schema.AddIdFeature(100);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(schema.id_feature(), 1);
  EXPECT_EQ(schema.feature(1).name, kItemIdFeatureName);
  EXPECT_EQ(schema.feature(1).cardinality, 100);
  // Only one ID feature allowed.
  EXPECT_FALSE(schema.AddIdFeature(100).ok());
}

TEST(FeatureSchemaTest, FeatureIndexLookup) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("a").ok());
  ASSERT_TRUE(schema.AddReal("b").ok());
  EXPECT_EQ(schema.FeatureIndex("b").value(), 1);
  EXPECT_FALSE(schema.FeatureIndex("missing").ok());
}

TEST(FeatureSchemaTest, ValidateValue) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCategorical("c", 3).ok());
  ASSERT_TRUE(schema.AddCount("n").ok());
  ASSERT_TRUE(schema.AddReal("r").ok());

  EXPECT_TRUE(schema.ValidateValue(0, 0.0).ok());
  EXPECT_TRUE(schema.ValidateValue(0, 2.0).ok());
  EXPECT_FALSE(schema.ValidateValue(0, 3.0).ok());
  EXPECT_FALSE(schema.ValidateValue(0, -1.0).ok());
  EXPECT_FALSE(schema.ValidateValue(0, 1.5).ok());

  EXPECT_TRUE(schema.ValidateValue(1, 0.0).ok());
  EXPECT_TRUE(schema.ValidateValue(1, 41.0).ok());
  EXPECT_FALSE(schema.ValidateValue(1, -2.0).ok());
  EXPECT_FALSE(schema.ValidateValue(1, 2.5).ok());

  EXPECT_TRUE(schema.ValidateValue(2, 0.01).ok());
  EXPECT_FALSE(schema.ValidateValue(2, 0.0).ok());
  EXPECT_FALSE(schema.ValidateValue(2, -3.0).ok());

  EXPECT_FALSE(schema.ValidateValue(3, 1.0).ok());  // out of range index
  EXPECT_FALSE(schema.ValidateValue(-1, 1.0).ok());
}

TEST(FeatureSchemaTest, WithoutIdFeature) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("a").ok());
  ASSERT_TRUE(schema.AddIdFeature(10).ok());
  ASSERT_TRUE(schema.AddReal("b").ok());
  const FeatureSchema reduced = schema.WithoutIdFeature();
  EXPECT_EQ(reduced.num_features(), 2);
  EXPECT_EQ(reduced.feature(0).name, "a");
  EXPECT_EQ(reduced.feature(1).name, "b");
  EXPECT_EQ(reduced.id_feature(), -1);
}

}  // namespace
}  // namespace upskill
