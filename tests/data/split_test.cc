#include "data/split.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

Dataset MakeDataset(int num_items, const std::vector<int>& sequence_lengths) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(num_items).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {-1.0};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  for (int len : sequence_lengths) {
    const UserId u = dataset.AddUser();
    for (int n = 0; n < len; ++n) {
      EXPECT_TRUE(dataset.AddAction(u, n, n % num_items).ok());
    }
  }
  return dataset;
}

TEST(HoldoutSplitTest, LastPositionTakesTail) {
  Dataset dataset = MakeDataset(5, {4, 3});
  Rng rng(1);
  const auto split = MakeHoldoutSplit(dataset, HoldoutPosition::kLast, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().test.size(), 2u);
  for (const HeldOutAction& held : split.value().test) {
    const size_t original_len = dataset.sequence(held.user).size();
    EXPECT_EQ(held.position, original_len - 1);
    EXPECT_EQ(split.value().train.sequence(held.user).size(),
              original_len - 1);
  }
  EXPECT_EQ(split.value().train.num_actions() + split.value().test.size(),
            dataset.num_actions());
}

TEST(HoldoutSplitTest, RandomPositionStaysInBounds) {
  Dataset dataset = MakeDataset(5, {10, 10, 10});
  Rng rng(7);
  const auto split = MakeHoldoutSplit(dataset, HoldoutPosition::kRandom, rng);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split.value().test.size(), 3u);
  for (const HeldOutAction& held : split.value().test) {
    EXPECT_LT(held.position, 10u);
    // The held-out action matches the original at that position.
    EXPECT_EQ(held.action.item,
              dataset.sequence(held.user)[held.position].item);
  }
}

TEST(HoldoutSplitTest, ShortSequencesContributeNoTest) {
  Dataset dataset = MakeDataset(3, {1, 5});
  Rng rng(3);
  const auto split =
      MakeHoldoutSplit(dataset, HoldoutPosition::kLast, rng, 3);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split.value().test.size(), 1u);
  EXPECT_EQ(split.value().test[0].user, 1);
  // The single-action user keeps all training actions.
  EXPECT_EQ(split.value().train.sequence(0).size(), 1u);
}

TEST(HoldoutSplitTest, RejectsUnsafeMinLength) {
  Dataset dataset = MakeDataset(3, {2});
  Rng rng(3);
  EXPECT_FALSE(
      MakeHoldoutSplit(dataset, HoldoutPosition::kLast, rng, 1).ok());
}

TEST(HoldoutSplitTest, TrainPreservesChronology) {
  Dataset dataset = MakeDataset(4, {8, 8});
  Rng rng(11);
  const auto split = MakeHoldoutSplit(dataset, HoldoutPosition::kRandom, rng);
  ASSERT_TRUE(split.ok());
  for (UserId u = 0; u < split.value().train.num_users(); ++u) {
    const auto& seq = split.value().train.sequence(u);
    for (size_t n = 1; n < seq.size(); ++n) {
      EXPECT_LE(seq[n - 1].time, seq[n].time);
    }
  }
}

TEST(RandomSplitTest, ApproximatesFraction) {
  Dataset dataset = MakeDataset(10, std::vector<int>(50, 40));
  Rng rng(13);
  const auto split = SplitActionsRandomly(dataset, 0.1, rng);
  ASSERT_TRUE(split.ok());
  const double fraction = static_cast<double>(split.value().test.size()) /
                          static_cast<double>(dataset.num_actions());
  EXPECT_NEAR(fraction, 0.1, 0.02);
  EXPECT_EQ(split.value().train.num_actions() + split.value().test.size(),
            dataset.num_actions());
}

TEST(RandomSplitTest, NeverEmptiesATrainSequence) {
  Dataset dataset = MakeDataset(3, {1, 2, 3});
  Rng rng(17);
  const auto split = SplitActionsRandomly(dataset, 0.9, rng);
  ASSERT_TRUE(split.ok());
  for (UserId u = 0; u < split.value().train.num_users(); ++u) {
    EXPECT_GE(split.value().train.sequence(u).size(), 1u) << "user " << u;
  }
}

TEST(RandomSplitTest, ZeroFractionKeepsEverything) {
  Dataset dataset = MakeDataset(3, {5, 5});
  Rng rng(19);
  const auto split = SplitActionsRandomly(dataset, 0.0, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split.value().test.empty());
  EXPECT_EQ(split.value().train.num_actions(), dataset.num_actions());
}

TEST(TimeSplitTest, CutoffSeparatesTrainAndTest) {
  Dataset dataset = MakeDataset(5, {6, 6});
  const auto split = SplitActionsByTime(dataset, 2);  // times 0..5 per user
  ASSERT_TRUE(split.ok());
  // Per user: times 0,1,2 train; 3,4,5 test.
  EXPECT_EQ(split.value().train.num_actions(), 6u);
  EXPECT_EQ(split.value().test.size(), 6u);
  for (const HeldOutAction& held : split.value().test) {
    EXPECT_GT(held.action.time, 2);
  }
  for (UserId u = 0; u < split.value().train.num_users(); ++u) {
    for (const Action& a : split.value().train.sequence(u)) {
      EXPECT_LE(a.time, 2);
    }
  }
}

TEST(TimeSplitTest, AnchorsUsersEntirelyAfterCutoff) {
  Dataset dataset = MakeDataset(3, {});
  const UserId u = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u, 100, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u, 101, 1).ok());
  const auto split = SplitActionsByTime(dataset, 50);
  ASSERT_TRUE(split.ok());
  // First action stays in train despite being past the cutoff.
  ASSERT_EQ(split.value().train.sequence(u).size(), 1u);
  EXPECT_EQ(split.value().train.sequence(u)[0].time, 100);
  ASSERT_EQ(split.value().test.size(), 1u);
}

TEST(TimeSplitTest, QuantileApproximatesFraction) {
  Dataset dataset = MakeDataset(10, std::vector<int>(40, 30));
  const auto split = SplitActionsByTimeQuantile(dataset, 0.75);
  ASSERT_TRUE(split.ok());
  const double test_fraction =
      static_cast<double>(split.value().test.size()) /
      static_cast<double>(dataset.num_actions());
  EXPECT_NEAR(test_fraction, 0.25, 0.08);
  EXPECT_FALSE(SplitActionsByTimeQuantile(dataset, 0.0).ok());
  EXPECT_FALSE(SplitActionsByTimeQuantile(dataset, 1.0).ok());
}

TEST(RandomSplitTest, RejectsBadFraction) {
  Dataset dataset = MakeDataset(3, {5});
  Rng rng(23);
  EXPECT_FALSE(SplitActionsRandomly(dataset, 1.0, rng).ok());
  EXPECT_FALSE(SplitActionsRandomly(dataset, -0.1, rng).ok());
}

}  // namespace
}  // namespace upskill
