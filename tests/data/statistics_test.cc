#include "data/statistics.h"

#include <gtest/gtest.h>

namespace upskill {
namespace {

Dataset MakeDataset() {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddIdFeature(5).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 5; ++i) {
    const double row[] = {-1.0};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  return Dataset(std::move(items));
}

TEST(DatasetStatsTest, EmptyDataset) {
  const Dataset dataset = MakeDataset();
  const DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.num_users, 0);
  EXPECT_EQ(stats.num_used_items, 0);
  EXPECT_EQ(stats.num_table_items, 5);
  EXPECT_EQ(stats.num_actions, 0u);
  EXPECT_EQ(stats.mean_sequence_length, 0.0);
  EXPECT_EQ(stats.rating_coverage, 0.0);
}

TEST(DatasetStatsTest, CountsActionsAndItems) {
  Dataset dataset = MakeDataset();
  const UserId u0 = dataset.AddUser();
  const UserId u1 = dataset.AddUser();
  ASSERT_TRUE(dataset.AddAction(u0, 1, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u0, 2, 1, 4.0).ok());
  ASSERT_TRUE(dataset.AddAction(u0, 3, 0).ok());
  ASSERT_TRUE(dataset.AddAction(u1, 1, 2).ok());
  const DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_used_items, 3);
  EXPECT_EQ(stats.num_actions, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_sequence_length, 2.0);
  EXPECT_EQ(stats.min_sequence_length, 1u);
  EXPECT_EQ(stats.max_sequence_length, 3u);
  EXPECT_DOUBLE_EQ(stats.rating_coverage, 0.25);
}

TEST(DatasetStatsTest, FormatRow) {
  DatasetStats stats;
  stats.num_users = 12;
  stats.num_used_items = 34;
  stats.num_actions = 56;
  const std::string row = FormatStatsRow("Beer", stats);
  EXPECT_NE(row.find("Beer"), std::string::npos);
  EXPECT_NE(row.find("12"), std::string::npos);
  EXPECT_NE(row.find("34"), std::string::npos);
  EXPECT_NE(row.find("56"), std::string::npos);
}

}  // namespace
}  // namespace upskill
