#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "data/filter.h"
#include "datagen/beer.h"
#include "datagen/cooking.h"
#include "datagen/film.h"
#include "datagen/language.h"

namespace upskill {
namespace datagen {
namespace {

TEST(LanguageGeneratorTest, EachArticleSelectedOnce) {
  LanguageConfig config;
  config.num_users = 200;
  const auto data = GenerateLanguage(config);
  ASSERT_TRUE(data.ok());
  // Items == actions in this domain (every action posts a new article).
  EXPECT_EQ(static_cast<size_t>(data.value().dataset.items().num_items()),
            data.value().dataset.num_actions());
  // No item-ID feature (the property that breaks ID-only models here).
  EXPECT_EQ(data.value().dataset.schema().id_feature(), -1);
}

TEST(LanguageGeneratorTest, CorrectionsFallWithSkill) {
  LanguageConfig config;
  config.num_users = 1500;
  const auto data = GenerateLanguage(config);
  ASSERT_TRUE(data.ok());
  const Dataset& dataset = data.value().dataset;
  const int f =
      dataset.schema().FeatureIndex("corrections_per_corrector").value();
  RunningStats by_level[3];
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const auto& levels = data.value().truth.skill[static_cast<size_t>(u)];
    const auto& seq = dataset.sequence(u);
    for (size_t n = 0; n < seq.size(); ++n) {
      by_level[levels[n] - 1].Add(dataset.items().value(seq[n].item, f));
    }
  }
  EXPECT_GT(by_level[0].mean(), by_level[2].mean());
}

TEST(LanguageGeneratorTest, TrueSkillIsMonotone) {
  LanguageConfig config;
  config.num_users = 300;
  const auto data = GenerateLanguage(config);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(data.value().truth.skill, 3));
}

TEST(CookingGeneratorTest, ShapeAndFeatureMix) {
  CookingConfig config;
  config.num_users = 200;
  config.num_recipes = 500;
  const auto data = GenerateCooking(config);
  ASSERT_TRUE(data.ok());
  const FeatureSchema& schema = data.value().dataset.schema();
  EXPECT_EQ(schema.num_features(), 7);
  EXPECT_GE(schema.id_feature(), 0);
  EXPECT_TRUE(schema.FeatureIndex("time_class").ok());
  EXPECT_TRUE(schema.FeatureIndex("num_steps").ok());
  EXPECT_EQ(data.value().truth.difficulty.size(), 500u);
}

TEST(CookingGeneratorTest, HarderRecipesNeedMoreSteps) {
  CookingConfig config;
  config.num_users = 50;
  config.num_recipes = 3000;
  const auto data = GenerateCooking(config);
  ASSERT_TRUE(data.ok());
  const Dataset& dataset = data.value().dataset;
  const int f = dataset.schema().FeatureIndex("num_steps").value();
  RunningStats easy;
  RunningStats hard;
  for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
    const double d = data.value().truth.difficulty[static_cast<size_t>(i)];
    if (d == 1.0) easy.Add(dataset.items().value(i, f));
    if (d == 5.0) hard.Add(dataset.items().value(i, f));
  }
  EXPECT_GT(hard.mean(), easy.mean() + 3.0);
}

TEST(CookingGeneratorTest, NovicesOverreachByDesign) {
  CookingConfig config;
  config.num_users = 800;
  config.num_recipes = 2000;
  const auto data = GenerateCooking(config);
  ASSERT_TRUE(data.ok());
  // Mean selected difficulty at true level 1 should approximate the
  // level-3 profile, i.e. clearly above 1 (the planted violation).
  RunningStats level1_difficulty;
  for (UserId u = 0; u < data.value().dataset.num_users(); ++u) {
    const auto& levels = data.value().truth.skill[static_cast<size_t>(u)];
    const auto& seq = data.value().dataset.sequence(u);
    for (size_t n = 0; n < seq.size(); ++n) {
      if (levels[n] == 1) {
        level1_difficulty.Add(
            data.value().truth.difficulty[static_cast<size_t>(seq[n].item)]);
      }
    }
  }
  EXPECT_GT(level1_difficulty.mean(), 1.6);
}

TEST(BeerGeneratorTest, AbvRisesWithTier) {
  BeerConfig config;
  config.num_users = 100;
  config.num_beers = 1000;
  const auto data = GenerateBeer(config);
  ASSERT_TRUE(data.ok());
  const Dataset& dataset = data.value().dataset;
  const int f = dataset.schema().FeatureIndex("abv").value();
  RunningStats tier1;
  RunningStats tier5;
  for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
    const double d = data.value().truth.difficulty[static_cast<size_t>(i)];
    if (d == 1.0) tier1.Add(dataset.items().value(i, f));
    if (d == 5.0) tier5.Add(dataset.items().value(i, f));
  }
  EXPECT_GT(tier5.mean(), tier1.mean() + 2.0);
}

TEST(BeerGeneratorTest, EveryActionHasARatingInRange) {
  BeerConfig config;
  config.num_users = 60;
  config.num_beers = 200;
  config.mean_sequence_length = 30.0;
  const auto data = GenerateBeer(config);
  ASSERT_TRUE(data.ok());
  data.value().dataset.ForEachAction([](UserId, const Action& a) {
    ASSERT_TRUE(a.has_rating());
    EXPECT_GE(a.rating, 0.0);
    EXPECT_LE(a.rating, 5.0);
  });
}

TEST(BeerGeneratorTest, SkilledUsersDrinkStrongerStyles) {
  BeerConfig config;
  config.num_users = 300;
  config.num_beers = 600;
  config.mean_sequence_length = 60.0;
  const auto data = GenerateBeer(config);
  ASSERT_TRUE(data.ok());
  RunningStats low;
  RunningStats high;
  for (UserId u = 0; u < data.value().dataset.num_users(); ++u) {
    const auto& levels = data.value().truth.skill[static_cast<size_t>(u)];
    const auto& seq = data.value().dataset.sequence(u);
    for (size_t n = 0; n < seq.size(); ++n) {
      const double d =
          data.value().truth.difficulty[static_cast<size_t>(seq[n].item)];
      if (levels[n] == 1) low.Add(d);
      if (levels[n] == 5) high.Add(d);
    }
  }
  EXPECT_GT(high.mean(), low.mean() + 1.0);
}

TEST(BeerGeneratorTest, StyleVocabularyHasAllTiers) {
  bool tiers[5] = {false, false, false, false, false};
  for (const BeerStyle& style : BeerStyles()) {
    ASSERT_GE(style.tier, 1);
    ASSERT_LE(style.tier, 5);
    tiers[style.tier - 1] = true;
  }
  for (bool present : tiers) EXPECT_TRUE(present);
}

TEST(FilmGeneratorTest, ReleaseMetadataPresent) {
  FilmConfig config;
  config.num_users = 50;
  config.num_filler_movies = 200;
  config.mean_sequence_length = 20.0;
  const auto data = GenerateFilm(config);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().dataset.items().HasMetadata(kFilmReleaseTimeKey));
}

TEST(FilmGeneratorTest, LastnessEffectPlanted) {
  FilmConfig config;
  config.num_users = 200;
  config.num_filler_movies = 400;
  config.mean_sequence_length = 40.0;
  const auto data = GenerateFilm(config);
  ASSERT_TRUE(data.ok());
  const auto release =
      data.value().dataset.items().Metadata(kFilmReleaseTimeKey).value();
  // Mean release year of the first quarter of each sequence is well below
  // that of the last quarter.
  RunningStats early;
  RunningStats late;
  for (UserId u = 0; u < data.value().dataset.num_users(); ++u) {
    const auto& seq = data.value().dataset.sequence(u);
    if (seq.size() < 8) continue;
    for (size_t n = 0; n < seq.size() / 4; ++n) {
      early.Add(release[static_cast<size_t>(seq[n].item)]);
    }
    for (size_t n = seq.size() - seq.size() / 4; n < seq.size(); ++n) {
      late.Add(release[static_cast<size_t>(seq[n].item)]);
    }
  }
  EXPECT_GT(late.mean(), early.mean() + 2.0 * 365.25);  // years, in days
}

TEST(FilmGeneratorTest, PreprocessingRemovesPostEraReleases) {
  FilmConfig config;
  config.num_users = 100;
  config.num_filler_movies = 300;
  const auto data = GenerateFilm(config);
  ASSERT_TRUE(data.ok());
  const auto filtered =
      FilterOldItems(data.value().dataset, kFilmReleaseTimeKey);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered.value().dataset.items().num_items(),
            data.value().dataset.items().num_items());
  // Everything remaining was released no later than the first action.
  const int64_t cutoff = data.value().dataset.MinActionTime();
  const auto release = filtered.value()
                           .dataset.items()
                           .Metadata(kFilmReleaseTimeKey)
                           .value();
  for (double r : release) {
    EXPECT_LE(r, static_cast<double>(cutoff));
  }
}

// Every generator must be bit-deterministic in its seed and reject
// nonsense configurations.

TEST(DomainDeterminismTest, LanguageIsSeedDeterministic) {
  LanguageConfig config;
  config.num_users = 100;
  const auto a = GenerateLanguage(config);
  const auto b = GenerateLanguage(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().dataset.num_actions(), b.value().dataset.num_actions());
  EXPECT_EQ(a.value().truth.skill, b.value().truth.skill);
  config.seed = 999;
  const auto c = GenerateLanguage(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().truth.skill, c.value().truth.skill);
}

TEST(DomainDeterminismTest, CookingIsSeedDeterministic) {
  CookingConfig config;
  config.num_users = 80;
  config.num_recipes = 300;
  const auto a = GenerateCooking(config);
  const auto b = GenerateCooking(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().truth.skill, b.value().truth.skill);
  for (ItemId i = 0; i < a.value().dataset.items().num_items(); ++i) {
    for (int f = 0; f < a.value().dataset.schema().num_features(); ++f) {
      ASSERT_DOUBLE_EQ(a.value().dataset.items().value(i, f),
                       b.value().dataset.items().value(i, f));
    }
  }
}

TEST(DomainDeterminismTest, BeerAndFilmAreSeedDeterministic) {
  BeerConfig beer;
  beer.num_users = 50;
  beer.num_beers = 100;
  const auto beer_a = GenerateBeer(beer);
  const auto beer_b = GenerateBeer(beer);
  ASSERT_TRUE(beer_a.ok());
  ASSERT_TRUE(beer_b.ok());
  EXPECT_EQ(beer_a.value().truth.skill, beer_b.value().truth.skill);

  FilmConfig film;
  film.num_users = 40;
  film.num_filler_movies = 100;
  const auto film_a = GenerateFilm(film);
  const auto film_b = GenerateFilm(film);
  ASSERT_TRUE(film_a.ok());
  ASSERT_TRUE(film_b.ok());
  EXPECT_EQ(film_a.value().truth.skill, film_b.value().truth.skill);
}

TEST(DomainValidationTest, RejectsBadConfigs) {
  LanguageConfig language;
  language.num_levels = 1;
  EXPECT_FALSE(GenerateLanguage(language).ok());
  language = {};
  language.num_users = 0;
  EXPECT_FALSE(GenerateLanguage(language).ok());

  CookingConfig cooking;
  cooking.num_levels = 1;
  EXPECT_FALSE(GenerateCooking(cooking).ok());
  cooking = {};
  cooking.novice_mimics_level = 99;
  EXPECT_FALSE(GenerateCooking(cooking).ok());
  cooking = {};
  cooking.num_recipes = 0;
  EXPECT_FALSE(GenerateCooking(cooking).ok());

  BeerConfig beer;
  beer.num_levels = 4;  // calibrated for 5 tiers
  EXPECT_FALSE(GenerateBeer(beer).ok());
  beer = {};
  beer.num_beers = 3;  // fewer than the style vocabulary
  EXPECT_FALSE(GenerateBeer(beer).ok());

  FilmConfig film;
  film.num_levels = 1;
  EXPECT_FALSE(GenerateFilm(film).ok());
  film = {};
  film.recency_weight = 2.0;
  EXPECT_FALSE(GenerateFilm(film).ok());
}

TEST(FilmGeneratorTest, NamedRosterSurvivesGeneration) {
  FilmConfig config;
  config.num_users = 20;
  config.num_filler_movies = 50;
  const auto data = GenerateFilm(config);
  ASSERT_TRUE(data.ok());
  bool found_casablanca = false;
  for (ItemId i = 0; i < data.value().dataset.items().num_items(); ++i) {
    if (data.value().dataset.items().name(i) == "Casablanca") {
      found_casablanca = true;
      // A canonical classic sits at the top of the difficulty scale.
      EXPECT_GT(data.value().truth.difficulty[static_cast<size_t>(i)], 4.5);
    }
  }
  EXPECT_TRUE(found_casablanca);
}

}  // namespace
}  // namespace datagen
}  // namespace upskill
