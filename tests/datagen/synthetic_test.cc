#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace upskill {
namespace datagen {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_users = 100;
  config.num_items = 250;
  config.mean_sequence_length = 20.0;
  return config;
}

TEST(SyntheticTest, ValidatesConfig) {
  SyntheticConfig config = SmallConfig();
  config.num_items = 123;  // not a multiple of 5 levels
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SmallConfig();
  config.categorical_cardinality = 1;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SmallConfig();
  config.at_level_probability = 1.5;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SmallConfig();
  config.num_levels = 0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
}

TEST(SyntheticTest, ShapeMatchesConfig) {
  const auto data = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(data.ok());
  const Dataset& dataset = data.value().dataset;
  EXPECT_EQ(dataset.num_users(), 100);
  EXPECT_EQ(dataset.items().num_items(), 250);
  EXPECT_EQ(dataset.schema().num_features(), 4);  // id + cat + gamma + poisson
  EXPECT_GE(dataset.schema().id_feature(), 0);
  // Mean sequence length ~ Poisson(20).
  const double mean = static_cast<double>(dataset.num_actions()) /
                      dataset.num_users();
  EXPECT_NEAR(mean, 20.0, 2.0);
}

TEST(SyntheticTest, EqualItemPoolsWithDifficultyEqualLevel) {
  const auto data = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(data.ok());
  const auto& difficulty = data.value().truth.difficulty;
  ASSERT_EQ(difficulty.size(), 250u);
  // 50 items per level, in level order.
  for (int s = 1; s <= 5; ++s) {
    for (int n = 0; n < 50; ++n) {
      EXPECT_EQ(difficulty[static_cast<size_t>((s - 1) * 50 + n)],
                static_cast<double>(s));
    }
  }
}

TEST(SyntheticTest, TrueSkillIsMonotone) {
  const auto data = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(AssignmentsAreMonotone(data.value().truth.skill, 5));
  // Alignment between truth and sequences.
  for (UserId u = 0; u < data.value().dataset.num_users(); ++u) {
    EXPECT_EQ(data.value().truth.skill[static_cast<size_t>(u)].size(),
              data.value().dataset.sequence(u).size());
  }
}

TEST(SyntheticTest, UsersSelectWithinCapacity) {
  const auto data = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(data.ok());
  data.value().dataset.ForEachAction([&](UserId u, const Action& a) {
    // Difficulty of the selected item never exceeds the user's true level
    // (the generator's within-capacity rule).
    const size_t position =
        &a - data.value().dataset.sequence(u).data();
    const int level =
        data.value().truth.skill[static_cast<size_t>(u)][position];
    EXPECT_LE(data.value().truth.difficulty[static_cast<size_t>(a.item)],
              static_cast<double>(level));
  });
}

TEST(SyntheticTest, FeatureMeansIncreaseWithLevel) {
  SyntheticConfig config = SmallConfig();
  config.num_users = 400;
  const auto data = GenerateSynthetic(config);
  ASSERT_TRUE(data.ok());
  const Dataset& dataset = data.value().dataset;
  const int gamma_f = dataset.schema().FeatureIndex("intensity").value();
  const int poisson_f = dataset.schema().FeatureIndex("complexity").value();
  double previous_gamma = -1.0;
  double previous_poisson = -1.0;
  for (int s = 1; s <= 5; ++s) {
    RunningStats gamma_stats;
    RunningStats poisson_stats;
    for (ItemId i = (s - 1) * 50; i < s * 50; ++i) {
      gamma_stats.Add(dataset.items().value(i, gamma_f));
      poisson_stats.Add(dataset.items().value(i, poisson_f));
    }
    EXPECT_GT(gamma_stats.mean(), previous_gamma) << "level " << s;
    EXPECT_GT(poisson_stats.mean(), previous_poisson) << "level " << s;
    previous_gamma = gamma_stats.mean();
    previous_poisson = poisson_stats.mean();
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  const auto a = GenerateSynthetic(SmallConfig());
  const auto b = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().dataset.num_actions(), b.value().dataset.num_actions());
  for (UserId u = 0; u < a.value().dataset.num_users(); ++u) {
    const auto& seq_a = a.value().dataset.sequence(u);
    const auto& seq_b = b.value().dataset.sequence(u);
    ASSERT_EQ(seq_a.size(), seq_b.size());
    for (size_t n = 0; n < seq_a.size(); ++n) {
      EXPECT_EQ(seq_a[n].item, seq_b[n].item);
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig other = SmallConfig();
  other.seed = 999;
  const auto a = GenerateSynthetic(SmallConfig());
  const auto b = GenerateSynthetic(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference =
      a.value().dataset.num_actions() != b.value().dataset.num_actions();
  if (!any_difference) {
    for (UserId u = 0; u < a.value().dataset.num_users() && !any_difference;
         ++u) {
      const auto& seq_a = a.value().dataset.sequence(u);
      const auto& seq_b = b.value().dataset.sequence(u);
      if (seq_a.size() != seq_b.size()) {
        any_difference = true;
        break;
      }
      for (size_t n = 0; n < seq_a.size(); ++n) {
        if (seq_a[n].item != seq_b[n].item) {
          any_difference = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace datagen
}  // namespace upskill
