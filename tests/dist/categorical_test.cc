#include "dist/categorical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace {

TEST(CategoricalTest, StartsUniform) {
  Categorical dist(4, 0.01);
  for (int c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(dist.Probability(c), 0.25);
    EXPECT_NEAR(dist.LogProb(c), std::log(0.25), 1e-12);
  }
  EXPECT_DOUBLE_EQ(dist.Mean(), 1.5);
}

TEST(CategoricalTest, OutOfSupportIsImpossible) {
  Categorical dist(3, 0.01);
  EXPECT_EQ(dist.LogProb(-1.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.LogProb(3.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.LogProb(1.5), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.Probability(-1), 0.0);
  EXPECT_EQ(dist.Probability(3), 0.0);
}

TEST(CategoricalTest, FitMatchesEquation6) {
  // Equation 6: theta_c = (lambda + n_c) / (lambda C + n).
  Categorical dist(3, 0.01);
  const std::vector<double> values = {0, 0, 0, 1, 1, 2, 2, 2, 2, 2};
  dist.Fit(values);
  const double denom = 0.01 * 3 + 10;
  EXPECT_NEAR(dist.Probability(0), (0.01 + 3) / denom, 1e-12);
  EXPECT_NEAR(dist.Probability(1), (0.01 + 2) / denom, 1e-12);
  EXPECT_NEAR(dist.Probability(2), (0.01 + 5) / denom, 1e-12);
}

TEST(CategoricalTest, SmoothingAvoidsZeroFrequency) {
  Categorical dist(3, 0.01);
  const std::vector<double> values = {0, 0, 0};
  dist.Fit(values);
  EXPECT_GT(dist.Probability(1), 0.0);
  EXPECT_GT(dist.Probability(2), 0.0);
  EXPECT_TRUE(std::isfinite(dist.LogProb(2.0)));
}

TEST(CategoricalTest, ZeroSmoothingGivesExactMle) {
  Categorical dist(2, 0.0);
  const std::vector<double> values = {0, 0, 1, 1, 1, 1};
  dist.Fit(values);
  EXPECT_NEAR(dist.Probability(0), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(dist.Probability(1), 4.0 / 6.0, 1e-12);
}

TEST(CategoricalTest, EmptyFitKeepsParameters) {
  Categorical dist(2, 0.01);
  const std::vector<double> values = {1, 1, 1};
  dist.Fit(values);
  const double before = dist.Probability(1);
  dist.Fit({});
  EXPECT_DOUBLE_EQ(dist.Probability(1), before);
}

TEST(CategoricalTest, ProbabilitiesSumToOneAfterFit) {
  Rng rng(5);
  Categorical dist(7, 0.01);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<double>(rng.NextInt(7)));
  }
  dist.Fit(values);
  double total = 0.0;
  for (int c = 0; c < 7; ++c) total += dist.Probability(c);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CategoricalTest, WeightedFitMatchesUnweightedWithUnitWeights) {
  Categorical a(3, 0.01);
  Categorical b(3, 0.01);
  const std::vector<double> values = {0, 1, 1, 2, 2, 2};
  const std::vector<double> unit(values.size(), 1.0);
  a.Fit(values);
  b.FitWeighted(values, unit);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(a.Probability(c), b.Probability(c));
  }
}

TEST(CategoricalTest, WeightedFitUsesFractionalWeights) {
  Categorical dist(2, 0.0);
  const std::vector<double> values = {0, 1};
  const std::vector<double> weights = {0.25, 0.75};
  dist.FitWeighted(values, weights);
  EXPECT_NEAR(dist.Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(dist.Probability(1), 0.75, 1e-12);
}

TEST(CategoricalTest, WeightedFitIgnoresZeroTotalWeight) {
  Categorical dist(2, 0.0);
  const std::vector<double> seed = {1, 1, 1};
  dist.Fit(seed);
  const double before = dist.Probability(1);
  const std::vector<double> values = {0, 0};
  const std::vector<double> weights = {0.0, 0.0};
  dist.FitWeighted(values, weights);
  EXPECT_DOUBLE_EQ(dist.Probability(1), before);
}

TEST(CategoricalTest, SampleFollowsFittedProbabilities) {
  Categorical dist(3, 0.0);
  ASSERT_TRUE(dist.SetProbabilities(std::vector<double>{0.2, 0.5, 0.3}).ok());
  Rng rng(7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 60000; ++i) {
    ++counts[static_cast<size_t>(dist.Sample(rng))];
  }
  EXPECT_NEAR(counts[0] / 60000.0, 0.2, 0.01);
  EXPECT_NEAR(counts[1] / 60000.0, 0.5, 0.01);
  EXPECT_NEAR(counts[2] / 60000.0, 0.3, 0.01);
}

TEST(CategoricalTest, SetProbabilitiesValidates) {
  Categorical dist(3, 0.01);
  EXPECT_FALSE(dist.SetProbabilities(std::vector<double>{0.5, 0.5}).ok());
  EXPECT_FALSE(
      dist.SetProbabilities(std::vector<double>{0.5, 0.6, 0.2}).ok());
  EXPECT_FALSE(
      dist.SetProbabilities(std::vector<double>{-0.1, 0.6, 0.5}).ok());
}

TEST(CategoricalTest, CloneIsDeep) {
  Categorical dist(2, 0.0);
  ASSERT_TRUE(dist.SetProbabilities(std::vector<double>{0.9, 0.1}).ok());
  auto clone = dist.Clone();
  const std::vector<double> values = {1, 1};
  dist.Fit(values);
  EXPECT_NEAR(static_cast<Categorical*>(clone.get())->Probability(0), 0.9,
              1e-12);
}

TEST(CategoricalTest, ParameterRoundTrip) {
  Categorical dist(3, 0.01);
  const std::vector<double> values = {0, 2, 2};
  dist.Fit(values);
  Categorical other(3, 0.01);
  ASSERT_TRUE(other.SetParameters(dist.Parameters()).ok());
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(other.Probability(c), dist.Probability(c));
  }
}

}  // namespace
}  // namespace upskill
