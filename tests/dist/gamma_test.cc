#include "dist/gamma.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace {

TEST(GammaTest, LogProbMatchesClosedForm) {
  // Gamma(1, theta) is Exponential(1/theta).
  Gamma exponential(1.0, 2.0);
  EXPECT_NEAR(exponential.LogProb(3.0), -3.0 / 2.0 - std::log(2.0), 1e-12);
  // Gamma(2, 1): f(x) = x e^-x.
  Gamma erlang(2.0, 1.0);
  EXPECT_NEAR(erlang.LogProb(1.5), std::log(1.5) - 1.5, 1e-12);
}

TEST(GammaTest, OutOfSupport) {
  Gamma dist(2.0, 1.0);
  EXPECT_EQ(dist.LogProb(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.LogProb(-1.0), -std::numeric_limits<double>::infinity());
}

TEST(GammaTest, DensityIntegratesToOne) {
  Gamma dist(3.5, 0.8);
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = dx / 2; x < 40.0; x += dx) {
    integral += std::exp(dist.LogProb(x)) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(GammaTest, MeanIsShapeTimesScale) {
  Gamma dist(4.0, 2.5);
  EXPECT_DOUBLE_EQ(dist.Mean(), 10.0);
}

struct GammaCase {
  double shape;
  double scale;
};

class GammaRecoveryTest : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaRecoveryTest, NewtonMleRecoversParameters) {
  const GammaCase param = GetParam();
  Rng rng(31337);
  Gamma generator(param.shape, param.scale);
  std::vector<double> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) samples.push_back(generator.Sample(rng));
  Gamma fitted;
  fitted.Fit(samples);
  EXPECT_NEAR(fitted.shape(), param.shape, 0.06 * param.shape + 0.02);
  EXPECT_NEAR(fitted.scale(), param.scale, 0.06 * param.scale + 0.02);
  // The mean is recovered even more tightly.
  EXPECT_NEAR(fitted.Mean(), param.shape * param.scale,
              0.02 * param.shape * param.scale);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GammaRecoveryTest,
    ::testing::Values(GammaCase{0.5, 2.0}, GammaCase{1.0, 1.0},
                      GammaCase{2.0, 3.0}, GammaCase{8.0, 0.25},
                      GammaCase{30.0, 1.5}));

TEST(GammaTest, WeightedFitMatchesUnweightedWithUnitWeights) {
  Rng rng(7);
  Gamma generator(3.0, 1.5);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(generator.Sample(rng));
  const std::vector<double> unit(values.size(), 1.0);
  Gamma a;
  Gamma b;
  a.Fit(values);
  b.FitWeighted(values, unit);
  EXPECT_DOUBLE_EQ(a.shape(), b.shape());
  EXPECT_DOUBLE_EQ(a.scale(), b.scale());
}

TEST(GammaTest, WeightedFitEquivalentToReplication) {
  // Integer weights behave like repeating the observation.
  const std::vector<double> replicated = {2.0, 2.0, 2.0, 8.0};
  const std::vector<double> values = {2.0, 8.0};
  const std::vector<double> weights = {3.0, 1.0};
  Gamma a;
  Gamma b;
  a.Fit(replicated);
  b.FitWeighted(values, weights);
  EXPECT_NEAR(a.shape(), b.shape(), 1e-9);
  EXPECT_NEAR(a.scale(), b.scale(), 1e-9);
}

TEST(GammaTest, WeightedFitIgnoresZeroTotalWeight) {
  Gamma dist(3.0, 2.0);
  const std::vector<double> values = {1.0, 1.0};
  const std::vector<double> weights = {0.0, 0.0};
  dist.FitWeighted(values, weights);
  EXPECT_DOUBLE_EQ(dist.shape(), 3.0);
  EXPECT_DOUBLE_EQ(dist.scale(), 2.0);
}

TEST(GammaTest, FitHandlesIdenticalObservations) {
  Gamma dist;
  const std::vector<double> values = {4.0, 4.0, 4.0, 4.0};
  dist.Fit(values);
  // Degenerate case: a very sharp distribution centered on 4.
  EXPECT_NEAR(dist.Mean(), 4.0, 1e-3);
  EXPECT_TRUE(std::isfinite(dist.LogProb(4.0)));
}

TEST(GammaTest, FitClampsNonPositiveObservations) {
  Gamma dist;
  const std::vector<double> values = {0.0, 1.0, 2.0};
  dist.Fit(values);  // must not produce NaN parameters
  EXPECT_TRUE(std::isfinite(dist.shape()));
  EXPECT_TRUE(std::isfinite(dist.scale()));
  EXPECT_GT(dist.shape(), 0.0);
}

TEST(GammaTest, EmptyFitKeepsParameters) {
  Gamma dist(3.0, 2.0);
  dist.Fit({});
  EXPECT_DOUBLE_EQ(dist.shape(), 3.0);
  EXPECT_DOUBLE_EQ(dist.scale(), 2.0);
}

TEST(GammaTest, ParameterRoundTrip) {
  Gamma dist(5.5, 0.4);
  Gamma other;
  ASSERT_TRUE(other.SetParameters(dist.Parameters()).ok());
  EXPECT_DOUBLE_EQ(other.shape(), 5.5);
  EXPECT_DOUBLE_EQ(other.scale(), 0.4);
  EXPECT_FALSE(other.SetParameters(std::vector<double>{1.0}).ok());
  EXPECT_FALSE(other.SetParameters(std::vector<double>{1.0, -1.0}).ok());
}

}  // namespace
}  // namespace upskill
