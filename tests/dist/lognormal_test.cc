#include "dist/lognormal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace {

TEST(LogNormalTest, LogProbMatchesClosedForm) {
  LogNormal dist(0.0, 1.0);
  // At x = 1: log x = 0, density = 1/(x sigma sqrt(2pi)).
  EXPECT_NEAR(dist.LogProb(1.0), -0.5 * std::log(2.0 * M_PI), 1e-12);
}

TEST(LogNormalTest, OutOfSupport) {
  LogNormal dist(0.0, 1.0);
  EXPECT_EQ(dist.LogProb(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.LogProb(-2.0), -std::numeric_limits<double>::infinity());
}

TEST(LogNormalTest, DensityIntegratesToOne) {
  LogNormal dist(0.5, 0.4);
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = dx / 2; x < 30.0; x += dx) {
    integral += std::exp(dist.LogProb(x)) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LogNormalTest, MeanFormula) {
  LogNormal dist(1.0, 0.5);
  EXPECT_NEAR(dist.Mean(), std::exp(1.0 + 0.125), 1e-12);
}

struct LogNormalCase {
  double mu;
  double sigma;
};

class LogNormalRecoveryTest
    : public ::testing::TestWithParam<LogNormalCase> {};

TEST_P(LogNormalRecoveryTest, FitRecoversParameters) {
  const LogNormalCase param = GetParam();
  Rng rng(4242);
  LogNormal generator(param.mu, param.sigma);
  std::vector<double> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) samples.push_back(generator.Sample(rng));
  LogNormal fitted;
  fitted.Fit(samples);
  EXPECT_NEAR(fitted.mu(), param.mu, 0.03 * std::abs(param.mu) + 0.02);
  EXPECT_NEAR(fitted.sigma(), param.sigma, 0.03 * param.sigma + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Params, LogNormalRecoveryTest,
                         ::testing::Values(LogNormalCase{0.0, 1.0},
                                           LogNormalCase{2.0, 0.3},
                                           LogNormalCase{-1.0, 0.8}));

TEST(LogNormalTest, WeightedFitMatchesUnweightedWithUnitWeights) {
  Rng rng(9);
  LogNormal generator(1.0, 0.6);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(generator.Sample(rng));
  const std::vector<double> unit(values.size(), 1.0);
  LogNormal a;
  LogNormal b;
  a.Fit(values);
  b.FitWeighted(values, unit);
  EXPECT_NEAR(a.mu(), b.mu(), 1e-12);
  EXPECT_NEAR(a.sigma(), b.sigma(), 1e-9);
}

TEST(LogNormalTest, WeightedFitIgnoresZeroTotalWeight) {
  LogNormal dist(1.5, 0.7);
  const std::vector<double> values = {2.0};
  const std::vector<double> weights = {0.0};
  dist.FitWeighted(values, weights);
  EXPECT_DOUBLE_EQ(dist.mu(), 1.5);
}

TEST(LogNormalTest, FitHandlesIdenticalObservations) {
  LogNormal dist;
  const std::vector<double> values = {2.0, 2.0, 2.0};
  dist.Fit(values);
  EXPECT_NEAR(dist.mu(), std::log(2.0), 1e-9);
  EXPECT_GT(dist.sigma(), 0.0);  // sigma floor keeps the density proper
  EXPECT_TRUE(std::isfinite(dist.LogProb(2.0)));
}

TEST(LogNormalTest, EmptyFitKeepsParameters) {
  LogNormal dist(1.5, 0.7);
  dist.Fit({});
  EXPECT_DOUBLE_EQ(dist.mu(), 1.5);
  EXPECT_DOUBLE_EQ(dist.sigma(), 0.7);
}

TEST(LogNormalTest, ParameterRoundTrip) {
  LogNormal dist(0.3, 0.9);
  LogNormal other;
  ASSERT_TRUE(other.SetParameters(dist.Parameters()).ok());
  EXPECT_DOUBLE_EQ(other.mu(), 0.3);
  EXPECT_DOUBLE_EQ(other.sigma(), 0.9);
  EXPECT_FALSE(other.SetParameters(std::vector<double>{0.0, 0.0}).ok());
}

}  // namespace
}  // namespace upskill
