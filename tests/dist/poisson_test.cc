#include "dist/poisson.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace {

TEST(PoissonTest, LogProbMatchesFormula) {
  Poisson dist(3.0);
  // P(k) = lambda^k e^-lambda / k!
  EXPECT_NEAR(dist.LogProb(0.0), -3.0, 1e-12);
  EXPECT_NEAR(dist.LogProb(1.0), std::log(3.0) - 3.0, 1e-12);
  EXPECT_NEAR(dist.LogProb(4.0),
              4.0 * std::log(3.0) - 3.0 - std::log(24.0), 1e-10);
}

TEST(PoissonTest, OutOfSupport) {
  Poisson dist(2.0);
  EXPECT_EQ(dist.LogProb(-1.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dist.LogProb(2.5), -std::numeric_limits<double>::infinity());
}

TEST(PoissonTest, ProbabilitiesSumToOne) {
  Poisson dist(4.2);
  double total = 0.0;
  for (int k = 0; k < 100; ++k) {
    total += std::exp(dist.LogProb(static_cast<double>(k)));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PoissonTest, FitIsSampleMean) {
  Poisson dist(1.0);
  const std::vector<double> values = {2, 4, 6, 8};
  dist.Fit(values);
  EXPECT_DOUBLE_EQ(dist.rate(), 5.0);
  EXPECT_DOUBLE_EQ(dist.Mean(), 5.0);
}

TEST(PoissonTest, EmptyFitKeepsRate) {
  Poisson dist(2.5);
  dist.Fit({});
  EXPECT_DOUBLE_EQ(dist.rate(), 2.5);
}

TEST(PoissonTest, AllZeroFitStaysFinite) {
  Poisson dist(5.0);
  const std::vector<double> values = {0, 0, 0};
  dist.Fit(values);
  EXPECT_GT(dist.rate(), 0.0);
  EXPECT_TRUE(std::isfinite(dist.LogProb(1.0)));
}

TEST(PoissonTest, WeightedFitIsWeightedMean) {
  Poisson dist(1.0);
  const std::vector<double> values = {2, 10};
  const std::vector<double> weights = {3.0, 1.0};
  dist.FitWeighted(values, weights);
  EXPECT_DOUBLE_EQ(dist.rate(), 4.0);  // (3*2 + 1*10) / 4
}

TEST(PoissonTest, WeightedFitMatchesUnweightedWithUnitWeights) {
  Poisson a(1.0);
  Poisson b(1.0);
  const std::vector<double> values = {1, 4, 7};
  const std::vector<double> unit(values.size(), 1.0);
  a.Fit(values);
  b.FitWeighted(values, unit);
  EXPECT_DOUBLE_EQ(a.rate(), b.rate());
}

TEST(PoissonTest, WeightedFitIgnoresZeroTotalWeight) {
  Poisson dist(6.0);
  const std::vector<double> values = {1, 1};
  const std::vector<double> weights = {0.0, 0.0};
  dist.FitWeighted(values, weights);
  EXPECT_DOUBLE_EQ(dist.rate(), 6.0);
}

class PoissonRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonRecoveryTest, FitRecoversGeneratingRate) {
  const double rate = GetParam();
  Rng rng(101);
  Poisson generator(rate);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(generator.Sample(rng));
  Poisson fitted(1.0);
  fitted.Fit(samples);
  EXPECT_NEAR(fitted.rate(), rate, 0.05 * rate + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, PoissonRecoveryTest,
                         ::testing::Values(0.3, 1.0, 4.0, 12.0, 80.0));

TEST(PoissonTest, ParameterRoundTrip) {
  Poisson dist(7.5);
  Poisson other(1.0);
  ASSERT_TRUE(other.SetParameters(dist.Parameters()).ok());
  EXPECT_DOUBLE_EQ(other.rate(), 7.5);
  EXPECT_FALSE(other.SetParameters(std::vector<double>{}).ok());
  EXPECT_FALSE(other.SetParameters(std::vector<double>{-1.0}).ok());
}

TEST(PoissonTest, CloneIsDeep) {
  Poisson dist(3.0);
  auto clone = dist.Clone();
  const std::vector<double> values = {10, 10};
  dist.Fit(values);
  EXPECT_DOUBLE_EQ(static_cast<Poisson*>(clone.get())->rate(), 3.0);
}

}  // namespace
}  // namespace upskill
