#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dist/categorical.h"
#include "dist/distribution.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/poisson.h"

namespace upskill {
namespace {

// Relative tolerance for kinds whose statistics reassociate floating-point
// sums relative to the flat Fit loop (gamma, log-normal). Categorical and
// Poisson statistics are exact and compared with EXPECT_EQ instead.
constexpr double kRelTol = 1e-12;

void ExpectParamsNear(const std::vector<double>& actual,
                      const std::vector<double>& expected, double rel_tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i],
                rel_tol * std::max(1.0, std::abs(expected[i])))
        << "parameter " << i;
  }
}

std::vector<double> CategoricalValues() {
  return {0, 2, 2, 1, 3, 2, 0, 1, 1, 2, 3, 3, 2, 0, 1};
}

std::vector<double> CountValues() {
  return {0, 3, 1, 4, 2, 2, 7, 0, 1, 5, 3, 2};
}

std::vector<double> PositiveValues() {
  Rng rng(1234);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextGamma(2.5, 1.7));
  values.push_back(0.0);     // exercises the positive-observation floor
  values.push_back(-0.25);   // likewise
  return values;
}

std::vector<double> Weights(size_t n) {
  Rng rng(99);
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) {
    weights.push_back(i % 7 == 0 ? 0.0 : rng.NextDouble());
  }
  return weights;
}

struct KindCase {
  std::unique_ptr<Distribution> fit_dist;    // driven through Fit*
  std::unique_ptr<Distribution> stats_dist;  // driven through FitFromStats
  std::vector<double> values;
  bool exact;
};

std::vector<KindCase> AllKinds() {
  std::vector<KindCase> cases;
  cases.push_back({std::make_unique<Categorical>(4, 0.01),
                   std::make_unique<Categorical>(4, 0.01),
                   CategoricalValues(), true});
  cases.push_back({std::make_unique<Poisson>(), std::make_unique<Poisson>(),
                   CountValues(), true});
  cases.push_back({std::make_unique<Gamma>(), std::make_unique<Gamma>(),
                   PositiveValues(), false});
  cases.push_back({std::make_unique<LogNormal>(),
                   std::make_unique<LogNormal>(), PositiveValues(), false});
  return cases;
}

TEST(SufficientStatsTest, FitFromStatsMatchesFit) {
  for (KindCase& c : AllKinds()) {
    SufficientStats stats = c.stats_dist->MakeStats();
    for (double x : c.values) stats.Add(x);
    c.fit_dist->Fit(c.values);
    c.stats_dist->FitFromStats(stats);
    if (c.exact) {
      EXPECT_EQ(c.stats_dist->Parameters(), c.fit_dist->Parameters())
          << c.fit_dist->DebugString();
    } else {
      ExpectParamsNear(c.stats_dist->Parameters(), c.fit_dist->Parameters(),
                       kRelTol);
    }
  }
}

TEST(SufficientStatsTest, WeightedFitFromStatsMatchesFitWeighted) {
  for (KindCase& c : AllKinds()) {
    const std::vector<double> weights = Weights(c.values.size());
    SufficientStats stats = c.stats_dist->MakeStats();
    for (size_t i = 0; i < c.values.size(); ++i) {
      stats.Add(c.values[i], weights[i]);
    }
    c.fit_dist->FitWeighted(c.values, weights);
    c.stats_dist->FitFromStats(stats);
    // Weighted sums accumulate in the same order as FitWeighted, but
    // LogNormal::FitWeighted centers its variance (two-pass) while the
    // statistics use the moment form, so compare with tolerance
    // throughout.
    ExpectParamsNear(c.stats_dist->Parameters(), c.fit_dist->Parameters(),
                     1e-9);
  }
}

TEST(SufficientStatsTest, MergedSplitsMatchSingleAccumulator) {
  for (KindCase& c : AllKinds()) {
    SufficientStats whole = c.stats_dist->MakeStats();
    for (double x : c.values) whole.Add(x);

    // Same observations accumulated in three parts and merged in order.
    SufficientStats parts[3] = {c.stats_dist->MakeStats(),
                                c.stats_dist->MakeStats(),
                                c.stats_dist->MakeStats()};
    for (size_t i = 0; i < c.values.size(); ++i) {
      parts[i % 3].Add(c.values[i]);
    }
    SufficientStats merged = c.stats_dist->MakeStats();
    for (const SufficientStats& part : parts) merged.Merge(part);

    std::unique_ptr<Distribution> from_whole = c.stats_dist->Clone();
    c.stats_dist->FitFromStats(merged);
    from_whole->FitFromStats(whole);
    if (c.exact) {
      EXPECT_EQ(c.stats_dist->Parameters(), from_whole->Parameters());
    } else {
      ExpectParamsNear(c.stats_dist->Parameters(), from_whole->Parameters(),
                       kRelTol);
    }
  }
}

TEST(SufficientStatsTest, EmptyStatsKeepCurrentParameters) {
  for (KindCase& c : AllKinds()) {
    const std::vector<double> before = c.stats_dist->Parameters();
    c.stats_dist->FitFromStats(c.stats_dist->MakeStats());
    EXPECT_EQ(c.stats_dist->Parameters(), before)
        << c.stats_dist->DebugString();
  }
}

TEST(SufficientStatsTest, AddColumnMatchesPerElementAddBitwise) {
  for (KindCase& c : AllKinds()) {
    const std::vector<double> weights = Weights(c.values.size());
    SufficientStats plain = c.stats_dist->MakeStats();
    for (size_t i = 0; i < c.values.size(); ++i) {
      plain.Add(c.values[i], weights[i]);
    }
    SufficientStats column = c.stats_dist->MakeStats();
    column.AddColumn(c.values, weights);
    EXPECT_EQ(column.count(), plain.count());
    EXPECT_EQ(column.sum(), plain.sum());
    EXPECT_EQ(column.sum_log(), plain.sum_log());
    EXPECT_EQ(column.sum_log_sq(), plain.sum_log_sq());
    ASSERT_EQ(column.category_counts().size(),
              plain.category_counts().size());
    for (size_t i = 0; i < column.category_counts().size(); ++i) {
      EXPECT_EQ(column.category_counts()[i], plain.category_counts()[i]);
    }
  }
}

TEST(SufficientStatsTest, AddPositiveTransformedColumnMatchesAddColumn) {
  const std::vector<double> values = PositiveValues();
  std::vector<double> weights = Weights(values.size());
  std::vector<double> clamped(values.size());
  std::vector<double> logs(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    clamped[i] = std::max(values[i], kPositiveObservationFloor);
    logs[i] = std::log(clamped[i]);
  }
  for (DistributionKind kind :
       {DistributionKind::kGamma, DistributionKind::kLogNormal}) {
    SufficientStats plain(kind);
    plain.AddColumn(values, weights);
    SufficientStats transformed(kind);
    transformed.AddPositiveTransformedColumn(clamped, logs, weights);
    EXPECT_EQ(transformed.count(), plain.count());
    EXPECT_EQ(transformed.sum(), plain.sum());
    EXPECT_EQ(transformed.sum_log(), plain.sum_log());
    EXPECT_EQ(transformed.sum_log_sq(), plain.sum_log_sq());
  }
}

TEST(SufficientStatsTest, ZeroWeightObservationsAreIgnored) {
  for (KindCase& c : AllKinds()) {
    SufficientStats weighted = c.stats_dist->MakeStats();
    SufficientStats plain = c.stats_dist->MakeStats();
    for (double x : c.values) {
      weighted.Add(x, 1.0);
      weighted.Add(x * 0.5 + 0.25, 0.0);  // must contribute nothing
      plain.Add(x);
    }
    EXPECT_EQ(weighted.count(), plain.count());
    EXPECT_EQ(weighted.sum(), plain.sum());
    EXPECT_EQ(weighted.sum_log(), plain.sum_log());
    EXPECT_EQ(weighted.sum_log_sq(), plain.sum_log_sq());
  }
}

TEST(LogProbBatchTest, MatchesScalarLogProbBitwise) {
  // Includes out-of-support probes per kind: negative reals, non-integers
  // for Poisson, out-of-range and fractional indices for categorical.
  for (KindCase& c : AllKinds()) {
    c.fit_dist->Fit(c.values);
    std::vector<double> probes = c.values;
    probes.push_back(-1.0);
    probes.push_back(0.0);
    probes.push_back(2.5);
    probes.push_back(1e9);
    std::vector<double> batch(probes.size());
    c.fit_dist->LogProbBatch(probes, batch);
    for (size_t i = 0; i < probes.size(); ++i) {
      const double scalar = c.fit_dist->LogProb(probes[i]);
      EXPECT_EQ(batch[i], scalar)
          << c.fit_dist->DebugString() << " x=" << probes[i];
    }
  }
}

TEST(LogProbBatchTest, DefaultImplementationCoversEveryKind) {
  // The virtual default (loop over LogProb) and each override must agree;
  // spot-check via a kind with a non-trivial support boundary.
  Gamma gamma(2.0, 0.5);
  const std::vector<double> xs = {0.1, 1.0, -3.0, 7.5};
  std::vector<double> out(xs.size());
  gamma.LogProbBatch(xs, out);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(out[i], gamma.LogProb(xs[i]));
  }
}

}  // namespace
}  // namespace upskill
