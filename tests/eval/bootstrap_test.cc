#include "eval/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/metrics.h"

namespace upskill {
namespace eval {
namespace {

PairedStatistic PearsonStatistic() {
  return [](std::span<const double> x, std::span<const double> y) {
    return PearsonCorrelation(x, y);
  };
}

TEST(BootstrapTest, ValidatesArguments) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  Rng rng(1);
  EXPECT_FALSE(BootstrapConfidenceInterval(x, y, PearsonStatistic(), 100,
                                           0.05, rng)
                   .ok());
  const std::vector<double> both = {1, 2, 3};
  EXPECT_FALSE(BootstrapConfidenceInterval({}, {}, PearsonStatistic(), 100,
                                           0.05, rng)
                   .ok());
  EXPECT_FALSE(BootstrapConfidenceInterval(x, both, PearsonStatistic(), 1,
                                           0.05, rng)
                   .ok());
  EXPECT_FALSE(BootstrapConfidenceInterval(x, both, PearsonStatistic(), 100,
                                           1.5, rng)
                   .ok());
}

TEST(BootstrapTest, IntervalContainsPointForStrongCorrelation) {
  std::vector<double> x;
  std::vector<double> y;
  Rng data_rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = data_rng.NextGaussian();
    x.push_back(v);
    y.push_back(v + 0.1 * data_rng.NextGaussian());
  }
  Rng rng(7);
  const auto ci = BootstrapConfidenceInterval(x, y, PearsonStatistic(), 200,
                                              0.05, rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci.value().lower, ci.value().point);
  EXPECT_GE(ci.value().upper, ci.value().point);
  EXPECT_GT(ci.value().lower, 0.95);  // strongly correlated data
  EXPECT_LT(ci.value().upper - ci.value().lower, 0.05);
}

TEST(BootstrapTest, WiderIntervalsForSmallerSamples) {
  Rng data_rng(11);
  std::vector<double> x_small;
  std::vector<double> y_small;
  for (int i = 0; i < 20; ++i) {
    const double v = data_rng.NextGaussian();
    x_small.push_back(v);
    y_small.push_back(v + 0.8 * data_rng.NextGaussian());
  }
  std::vector<double> x_large;
  std::vector<double> y_large;
  for (int i = 0; i < 2000; ++i) {
    const double v = data_rng.NextGaussian();
    x_large.push_back(v);
    y_large.push_back(v + 0.8 * data_rng.NextGaussian());
  }
  Rng rng(13);
  const auto small = BootstrapConfidenceInterval(x_small, y_small,
                                                 PearsonStatistic(), 300,
                                                 0.05, rng);
  const auto large = BootstrapConfidenceInterval(x_large, y_large,
                                                 PearsonStatistic(), 300,
                                                 0.05, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small.value().upper - small.value().lower,
            large.value().upper - large.value().lower);
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> y = {2, 1, 4, 3, 6, 5, 8, 7};
  Rng rng_a(17);
  Rng rng_b(17);
  const auto a =
      BootstrapConfidenceInterval(x, y, PearsonStatistic(), 100, 0.1, rng_a);
  const auto b =
      BootstrapConfidenceInterval(x, y, PearsonStatistic(), 100, 0.1, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().lower, b.value().lower);
  EXPECT_DOUBLE_EQ(a.value().upper, b.value().upper);
}

TEST(BootstrapTest, CustomStatistic) {
  // Statistic = mean difference; data has a constant shift of 2.
  const std::vector<double> x = {3, 4, 5, 6};
  const std::vector<double> y = {1, 2, 3, 4};
  const PairedStatistic mean_diff = [](std::span<const double> a,
                                       std::span<const double> b) {
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) sum += a[i] - b[i];
    return sum / static_cast<double>(a.size());
  };
  Rng rng(19);
  const auto ci = BootstrapConfidenceInterval(x, y, mean_diff, 200, 0.05, rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci.value().point, 2.0);
  EXPECT_DOUBLE_EQ(ci.value().lower, 2.0);  // constant shift: no variance
  EXPECT_DOUBLE_EQ(ci.value().upper, 2.0);
}

}  // namespace
}  // namespace eval
}  // namespace upskill
