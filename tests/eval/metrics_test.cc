#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace upskill {
namespace eval {
namespace {

// O(n^2) reference implementation of tau-b.
double KendallTauBReference(const std::vector<double>& x,
                            const std::vector<double>& y) {
  const size_t n = x.size();
  long long concordant = 0;
  long long discordant = 0;
  long long ties_x = 0;
  long long ties_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if (dx * dy > 0.0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
  long long joint = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (x[i] == x[j] && y[i] == y[j]) ++joint;
    }
  }
  const double denom_x = n0 - (static_cast<double>(ties_x) + joint);
  const double denom_y = n0 - (static_cast<double>(ties_y) + joint);
  if (denom_x <= 0.0 || denom_y <= 0.0) return 0.0;
  return (concordant - discordant) / std::sqrt(denom_x * denom_y);
}

TEST(AverageRanksTest, NoTies) {
  const std::vector<double> values = {30.0, 10.0, 20.0};
  EXPECT_EQ(AverageRanks(values), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(AverageRanksTest, TiesGetMeanRank) {
  const std::vector<double> values = {1.0, 2.0, 2.0, 3.0};
  EXPECT_EQ(AverageRanks(values), (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(AverageRanksTest, AllEqual) {
  const std::vector<double> values = {5.0, 5.0, 5.0};
  EXPECT_EQ(AverageRanks(values), (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, KnownValue) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 1, 4, 3, 5};
  // Hand-computed: cov = 1.6, var_x = 2, var_y = 2 -> r = 0.8.
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(PearsonTest, ConstantInputIsZero) {
  const std::vector<double> x = {3, 3, 3};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
  EXPECT_EQ(PearsonCorrelation(y, x), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {1, 3, 2, 4};
  // Ranks: x -> {1, 2.5, 2.5, 4}, y -> {1, 3, 2, 4}; Pearson of those.
  const std::vector<double> rx = {1, 2.5, 2.5, 4};
  const std::vector<double> ry = {1, 3, 2, 4};
  EXPECT_NEAR(SpearmanCorrelation(x, y), PearsonCorrelation(rx, ry), 1e-12);
}

TEST(KendallTest, PerfectAgreement) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {10, 20, 30, 40};
  EXPECT_NEAR(KendallTauB(x, y), 1.0, 1e-12);
  const std::vector<double> reversed = {40, 30, 20, 10};
  EXPECT_NEAR(KendallTauB(x, reversed), -1.0, 1e-12);
}

TEST(KendallTest, KnownSmallCase) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 3, 2};
  // Pairs: (1,2) concordant, (1,3) concordant, (2,3) discordant -> 1/3.
  EXPECT_NEAR(KendallTauB(x, y), 1.0 / 3.0, 1e-12);
}

TEST(KendallTest, DegenerateInputs) {
  EXPECT_EQ(KendallTauB({}, {}), 0.0);
  const std::vector<double> single = {1.0};
  EXPECT_EQ(KendallTauB(single, single), 0.0);
  const std::vector<double> constant = {2, 2, 2};
  const std::vector<double> varying = {1, 2, 3};
  EXPECT_EQ(KendallTauB(constant, varying), 0.0);
}

TEST(KendallTest, MatchesQuadraticReferenceWithTies) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.NextInt(60));
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      // Coarse grids create plenty of ties in both coordinates.
      x[i] = static_cast<double>(rng.NextInt(6));
      y[i] = static_cast<double>(rng.NextInt(6));
    }
    EXPECT_NEAR(KendallTauB(x, y), KendallTauBReference(x, y), 1e-9)
        << "trial " << trial << " n=" << n;
  }
}

TEST(RmseTest, KnownValues) {
  const std::vector<double> predicted = {1, 2, 3};
  const std::vector<double> actual = {1, 2, 3};
  EXPECT_EQ(Rmse(predicted, actual), 0.0);
  const std::vector<double> off = {2, 3, 4};
  EXPECT_NEAR(Rmse(off, actual), 1.0, 1e-12);
  const std::vector<double> mixed = {0, 2, 6};
  // Errors: -1, 0, 3 -> sqrt(10/3).
  EXPECT_NEAR(Rmse(mixed, actual), std::sqrt(10.0 / 3.0), 1e-12);
  EXPECT_EQ(Rmse({}, {}), 0.0);
}

TEST(MaeTest, KnownValues) {
  const std::vector<double> predicted = {0, 2, 6};
  const std::vector<double> actual = {1, 2, 3};
  EXPECT_NEAR(MeanAbsoluteError(predicted, actual), 4.0 / 3.0, 1e-12);
}

TEST(CorrelationReportTest, PopulatesAllFour) {
  const std::vector<double> estimated = {1.1, 1.9, 3.2, 3.9, 5.1};
  const std::vector<double> truth = {1, 2, 3, 4, 5};
  const auto report = ComputeCorrelationReport(estimated, truth);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().pearson, 0.99);
  EXPECT_NEAR(report.value().spearman, 1.0, 1e-12);
  EXPECT_NEAR(report.value().kendall, 1.0, 1e-12);
  EXPECT_LT(report.value().rmse, 0.2);
}

TEST(CorrelationReportTest, ValidatesInput) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1};
  EXPECT_FALSE(ComputeCorrelationReport(a, b).ok());
  EXPECT_FALSE(ComputeCorrelationReport({}, {}).ok());
}

}  // namespace
}  // namespace eval
}  // namespace upskill
