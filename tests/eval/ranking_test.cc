#include "eval/ranking.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace upskill {
namespace eval {
namespace {

TEST(PrecisionRecallTest, KnownValues) {
  const std::vector<int> ranks = {1, 3, 12};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranks, 10), 0.2);     // 2 of top 10
  EXPECT_DOUBLE_EQ(RecallAtK(ranks, 10), 2.0 / 3.0);  // 2 of 3 relevant
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranks, 1), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranks, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, 10), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 10), 0.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const std::vector<int> ranks = {1, 2, 3};
  EXPECT_NEAR(NdcgAtK(ranks, 10), 1.0, 1e-12);
}

TEST(NdcgTest, KnownValue) {
  // One relevant item at rank 3 of k=10: DCG = 1/log2(4), ideal = 1.
  const std::vector<int> ranks = {3};
  EXPECT_NEAR(NdcgAtK(ranks, 10), 1.0 / std::log2(4.0), 1e-12);
  // Outside the cutoff contributes nothing.
  const std::vector<int> outside = {11};
  EXPECT_DOUBLE_EQ(NdcgAtK(outside, 10), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({}, 10), 0.0);
}

TEST(NdcgTest, IdealTruncatesAtK) {
  // 5 relevant items, k = 2: ideal DCG uses only the first 2 slots, so a
  // ranking filling both top slots scores 1.
  const std::vector<int> ranks = {1, 2, 30, 40, 50};
  EXPECT_NEAR(NdcgAtK(ranks, 2), 1.0, 1e-12);
}

TEST(AveragePrecisionTest, KnownValues) {
  // Relevant at ranks 1, 3: AP = (1/1 + 2/3) / 2.
  const std::vector<int> ranks = {3, 1};  // unsorted on purpose
  EXPECT_NEAR(AveragePrecision(ranks), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecision({}), 0.0);
  const std::vector<int> perfect = {1, 2, 3};
  EXPECT_NEAR(AveragePrecision(perfect), 1.0, 1e-12);
}

TEST(AggregateSingleRelevantTest, MatchesHandComputation) {
  // Three cases with the true item at ranks 1, 4, 20 and k = 10.
  const std::vector<int> ranks = {1, 4, 20};
  const auto aggregate = AggregateSingleRelevant(ranks, 10);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_NEAR(aggregate.value().accuracy_at_k, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(aggregate.value().mean_reciprocal_rank,
              (1.0 + 0.25 + 0.05) / 3.0, 1e-12);
  EXPECT_NEAR(aggregate.value().ndcg_at_k,
              (1.0 + 1.0 / std::log2(5.0) + 0.0) / 3.0, 1e-12);
  EXPECT_EQ(aggregate.value().num_cases, 3u);
}

TEST(AggregateSingleRelevantTest, Validates) {
  const std::vector<int> ranks = {1};
  EXPECT_FALSE(AggregateSingleRelevant(ranks, 0).ok());
  const std::vector<int> bad = {0};
  EXPECT_FALSE(AggregateSingleRelevant(bad, 10).ok());
  const auto empty = AggregateSingleRelevant({}, 10);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().num_cases, 0u);
}

}  // namespace
}  // namespace eval
}  // namespace upskill
