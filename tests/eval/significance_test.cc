#include "eval/significance.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace upskill {
namespace eval {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-5);
}

TEST(BonferroniTest, MultipliesAndClamps) {
  EXPECT_DOUBLE_EQ(BonferroniCorrect(0.01, 3), 0.03);
  EXPECT_DOUBLE_EQ(BonferroniCorrect(0.5, 4), 1.0);
  EXPECT_DOUBLE_EQ(BonferroniCorrect(0.2, 0), 0.2);
}

TEST(WilcoxonTest, RejectsSizeMismatch) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1};
  EXPECT_FALSE(WilcoxonSignedRank(a, b).ok());
}

TEST(WilcoxonTest, AllZeroDifferencesFail) {
  const std::vector<double> a = {1, 2, 3};
  EXPECT_FALSE(WilcoxonSignedRank(a, a).ok());
}

TEST(WilcoxonTest, ZeroDifferencesAreDropped) {
  const std::vector<double> a = {1, 2, 3, 10};
  const std::vector<double> b = {1, 2, 3, 4};
  const auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().n_effective, 1u);
}

TEST(WilcoxonTest, SymmetricDifferencesAreInsignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> b = {2, 1, 4, 3, 6, 5};  // +-1 alternating
  const auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.5);
}

TEST(WilcoxonTest, ConsistentLargeShiftIsSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double base = rng.NextDouble();
    a.push_back(base + 1.0 + 0.1 * rng.NextDouble());
    b.push_back(base);
  }
  const auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().p_value, 0.001);
  EXPECT_GT(result.value().z, 3.0);
  // W+ should be the full rank sum: every difference is positive.
  EXPECT_DOUBLE_EQ(result.value().w_plus, 50.0 * 51.0 / 4.0 * 2.0);
}

TEST(WilcoxonTest, DirectionDoesNotChangeMagnitude) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const double base = rng.NextDouble();
    const double shift = 0.5 + rng.NextDouble();
    a.push_back(base + shift);
    b.push_back(base);
  }
  const auto forward = WilcoxonSignedRank(a, b);
  const auto backward = WilcoxonSignedRank(b, a);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NEAR(forward.value().p_value, backward.value().p_value, 1e-12);
  EXPECT_NEAR(forward.value().z, -backward.value().z, 1e-12);
}

TEST(PairedBootstrapTest, Validates) {
  Rng rng(1);
  const std::vector<double> a = {1, 2};
  const std::vector<double> short_b = {1};
  EXPECT_FALSE(PairedBootstrapTest(a, short_b, 100, rng).ok());
  const std::vector<double> single = {1};
  EXPECT_FALSE(PairedBootstrapTest(single, single, 100, rng).ok());
  const std::vector<double> b = {1, 2};
  EXPECT_FALSE(PairedBootstrapTest(a, b, 0, rng).ok());
}

TEST(PairedBootstrapTest, DetectsConsistentShift) {
  Rng data_rng(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    const double base = data_rng.NextGaussian();
    a.push_back(base + 1.0 + 0.1 * data_rng.NextGaussian());
    b.push_back(base);
  }
  Rng rng(7);
  const auto result = PairedBootstrapTest(a, b, 1000, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().mean_difference, 1.0, 0.15);
  EXPECT_LT(result.value().p_value, 0.01);
}

TEST(PairedBootstrapTest, NullDataIsInsignificant) {
  Rng data_rng(9);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(data_rng.NextGaussian());
    b.push_back(data_rng.NextGaussian());
  }
  Rng rng(11);
  const auto result = PairedBootstrapTest(a, b, 1000, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.05);
}

TEST(PairedBootstrapTest, AgreesWithWilcoxonOnDirectionalData) {
  // Both tests should call a clear shift significant and pure noise not.
  Rng data_rng(13);
  std::vector<double> shifted_a;
  std::vector<double> shifted_b;
  for (int i = 0; i < 40; ++i) {
    const double base = data_rng.NextDouble();
    shifted_a.push_back(base + 0.5 + 0.05 * data_rng.NextGaussian());
    shifted_b.push_back(base);
  }
  Rng rng(17);
  const auto bootstrap =
      PairedBootstrapTest(shifted_a, shifted_b, 1000, rng);
  const auto wilcoxon = WilcoxonSignedRank(shifted_a, shifted_b);
  ASSERT_TRUE(bootstrap.ok());
  ASSERT_TRUE(wilcoxon.ok());
  EXPECT_LT(bootstrap.value().p_value, 0.01);
  EXPECT_LT(wilcoxon.value().p_value, 0.01);
}

TEST(WilcoxonTest, MatchesTextbookExample) {
  // Classic example (n = 10, one zero difference dropped is avoided here):
  // differences with known W+ computed by hand.
  const std::vector<double> a = {125, 115, 130, 140, 140, 115, 140, 125, 140, 135};
  const std::vector<double> b = {110, 122, 125, 120, 140, 124, 123, 137, 135, 145};
  // d = {15, -7, 5, 20, 0, -9, 17, -12, 5, -10}; drop the zero.
  const auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().n_effective, 9u);
  // |d| sorted: 5, 5, 7, 9, 10, 12, 15, 17, 20 with ranks 1.5, 1.5, 3...
  // Positive: 15 (rank 7), 5 (1.5), 20 (9), 17 (8), 5 (1.5) -> W+ = 27.
  EXPECT_DOUBLE_EQ(result.value().w_plus, 27.0);
  // Not significant at the 5% level.
  EXPECT_GT(result.value().p_value, 0.3);
}

}  // namespace
}  // namespace eval
}  // namespace upskill
