#include "eval/tasks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/beer.h"
#include "datagen/synthetic.h"
#include "dist/categorical.h"

namespace upskill {
namespace eval {
namespace {

TEST(RandomGuessTest, ClosedForms) {
  EXPECT_NEAR(RandomGuessAccuracyAtK(100, 10), 0.1, 1e-12);
  EXPECT_NEAR(RandomGuessAccuracyAtK(5, 10), 1.0, 1e-12);
  // H_3 / 3 = (1 + 1/2 + 1/3) / 3.
  EXPECT_NEAR(RandomGuessMeanReciprocalRank(3), (11.0 / 6.0) / 3.0, 1e-12);
  EXPECT_EQ(RandomGuessAccuracyAtK(0, 10), 0.0);
}

// Hand-built scenario with a known ranking.
TEST(ItemPredictionTest, ScoresKnownRanking) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddIdFeature(3).ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 3; ++i) {
    const double row[] = {-1.0};
    ASSERT_TRUE(items.AddItem(row).ok());
  }
  Dataset train(std::move(items));
  const UserId u = train.AddUser();
  ASSERT_TRUE(train.AddAction(u, 10, 0).ok());

  SkillModelConfig config;
  config.num_levels = 1;
  auto created = SkillModel::Create(train.schema(), config);
  ASSERT_TRUE(created.ok());
  SkillModel model = std::move(created).value();
  auto* level1 = static_cast<Categorical*>(model.mutable_component(0, 1));
  ASSERT_TRUE(
      level1->SetProbabilities(std::vector<double>{0.5, 0.3, 0.2}).ok());

  const SkillAssignments assignments = {{1}};
  // Held-out item 1 has rank 2 -> RR 0.5; Acc@1 = 0, Acc@2 = 1.
  const std::vector<HeldOutAction> test = {{u, Action{11, 1, 0.0}, 0}};
  const auto at1 = EvaluateItemPrediction(train, assignments, model, test, 1);
  ASSERT_TRUE(at1.ok());
  EXPECT_DOUBLE_EQ(at1.value().accuracy_at_k, 0.0);
  EXPECT_DOUBLE_EQ(at1.value().mean_reciprocal_rank, 0.5);
  const auto at2 = EvaluateItemPrediction(train, assignments, model, test, 2);
  ASSERT_TRUE(at2.ok());
  EXPECT_DOUBLE_EQ(at2.value().accuracy_at_k, 1.0);
  ASSERT_EQ(at2.value().reciprocal_ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(at2.value().reciprocal_ranks[0], 0.5);
}

TEST(ItemPredictionTest, ValidatesK) {
  Dataset train;
  SkillModel model;
  EXPECT_FALSE(EvaluateItemPrediction(train, {}, model, {}, 0).ok());
}

TEST(ItemPredictionTest, TrainedModelBeatsRandomGuessing) {
  datagen::SyntheticConfig gen;
  gen.num_users = 150;
  gen.num_items = 250;
  gen.mean_sequence_length = 30.0;
  auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok());

  Rng rng(3);
  auto split = MakeHoldoutSplit(data.value().dataset,
                                HoldoutPosition::kRandom, rng);
  ASSERT_TRUE(split.ok());

  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  Trainer trainer(config);
  const auto trained = trainer.Train(split.value().train);
  ASSERT_TRUE(trained.ok());

  const auto report = EvaluateItemPrediction(
      split.value().train, trained.value().assignments, trained.value().model,
      split.value().test, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().mean_reciprocal_rank,
            RandomGuessMeanReciprocalRank(250));
  EXPECT_GT(report.value().accuracy_at_k,
            RandomGuessAccuracyAtK(250, 10));
}

class RatingPredictionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::BeerConfig gen;
    gen.num_users = 80;
    gen.num_beers = 120;
    gen.mean_sequence_length = 40.0;
    auto data = datagen::GenerateBeer(gen);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    data_ = std::make_unique<datagen::GeneratedData>(std::move(data).value());

    Rng rng(5);
    auto split =
        MakeHoldoutSplit(data_->dataset, HoldoutPosition::kRandom, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::make_unique<ActionSplit>(std::move(split).value());

    SkillModelConfig config;
    config.num_levels = 5;
    config.min_init_actions = 20;
    Trainer trainer(config);
    auto trained = trainer.Train(split_->train);
    ASSERT_TRUE(trained.ok());
    trained_ = std::make_unique<TrainResult>(std::move(trained).value());
  }

  std::unique_ptr<datagen::GeneratedData> data_;
  std::unique_ptr<ActionSplit> split_;
  std::unique_ptr<TrainResult> trained_;
};

TEST_F(RatingPredictionTest, ProducesFiniteRmseOnRealisticData) {
  const auto difficulty = EstimateDifficultyByGeneration(
      split_->train.items(), trained_->model, DifficultyPrior::kEmpirical,
      trained_->assignments);
  ASSERT_TRUE(difficulty.ok());

  RatingTaskOptions options;
  options.ffm.epochs = 5;
  options.features.include_skill = true;
  options.features.include_difficulty = true;
  Rng rng(7);
  const auto report = EvaluateRatingPrediction(
      split_->train, trained_->assignments, trained_->model,
      difficulty.value(), split_->test, options, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().rmse, 0.0);
  EXPECT_LT(report.value().rmse, 2.0);
  EXPECT_GT(report.value().num_train, 0u);
  EXPECT_EQ(report.value().num_test, report.value().squared_errors.size());
}

TEST_F(RatingPredictionTest, ValidatesDifficultySize) {
  RatingTaskOptions options;
  Rng rng(9);
  const std::vector<double> wrong_size = {1.0};
  EXPECT_FALSE(EvaluateRatingPrediction(split_->train, trained_->assignments,
                                        trained_->model, wrong_size,
                                        split_->test, options, rng)
                   .ok());
}

TEST_F(RatingPredictionTest, FailsWithoutRatings) {
  // Strip ratings by rebuilding the train set without them.
  Dataset unrated(split_->train.items());
  for (UserId u = 0; u < split_->train.num_users(); ++u) {
    unrated.AddUser();
    for (const Action& a : split_->train.sequence(u)) {
      ASSERT_TRUE(unrated.AddAction(u, a.time, a.item).ok());
    }
  }
  const std::vector<double> difficulty(
      static_cast<size_t>(unrated.items().num_items()), 3.0);
  RatingTaskOptions options;
  Rng rng(11);
  EXPECT_FALSE(EvaluateRatingPrediction(unrated, trained_->assignments,
                                        trained_->model, difficulty,
                                        split_->test, options, rng)
                   .ok());
}

}  // namespace
}  // namespace eval
}  // namespace upskill
