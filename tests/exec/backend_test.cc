// Unit tests for the pluggable execution backends: the Run() degenerate-
// count guard, serial/pool/numa scheduling (exactly-once visitation,
// nested-Run reentrancy, steal counting), cpulist/sysfs topology
// discovery and its single-node fallback, the name -> factory registry,
// ThreadPoolBackend parity with the direct MapShards path, and the
// ExecContext workspace reset on backend switches.

#include "exec/backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "exec/backend_registry.h"
#include "exec/map_reduce.h"
#include "exec/numa.h"
#include "exec/shard.h"
#include "exec/workspace.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace upskill {
namespace exec {
namespace {

Dataset MakeDataset(const std::vector<int>& sequence_lengths,
                    int num_items = 8) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddCount("steps").ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {static_cast<double>(i + 1)};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  for (const int length : sequence_lengths) {
    const UserId user = dataset.AddUser();
    for (int n = 0; n < length; ++n) {
      EXPECT_TRUE(
          dataset.AddAction(user, n, static_cast<ItemId>(n % num_items)).ok());
    }
  }
  return dataset;
}

// Every backend shape the sweep cares about, built fresh per call so a
// test can exercise construction too.
std::vector<std::shared_ptr<Backend>> AllBackends() {
  std::vector<std::shared_ptr<Backend>> backends;
  backends.push_back(
      std::shared_ptr<Backend>(SerialBackend::Get(), [](Backend*) {}));
  backends.push_back(std::make_shared<ThreadPoolBackend>(3));
  backends.push_back(std::make_shared<NumaBackend>(3));
  return backends;
}

TEST(BackendRunTest, DegenerateShardCountsNeverDispatch) {
  for (const auto& backend : AllBackends()) {
    std::atomic<int> calls{0};
    backend->Run(0, [&](int) { calls.fetch_add(1); });
    backend->Run(-1, [&](int) { calls.fetch_add(1); });
    backend->Run(-1000, [&](int) { calls.fetch_add(1); });
    backend->RunIndices(5, 5, [&](size_t) { calls.fetch_add(1); });
    backend->RunIndices(0, 0, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0) << backend->name();
  }
  // The compatibility MapShards overloads funnel through the same guard.
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  MapShards(static_cast<ThreadPool*>(nullptr), 0,
            [&](int) { calls.fetch_add(1); });
  MapShards(&pool, -3, [&](int) { calls.fetch_add(1); });
  MapShards(SerialBackend::Get(), 0, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(BackendRunTest, EmptyMappedStorePlanIsSafeOnEveryBackend) {
  // A packed store with zero users maps to an empty dataset; the exec
  // context's degenerate plan over it must never reach a backend with a
  // shard that has users, and a zero shard count must not dispatch.
  const std::string path = testing::TempDir() + "/backend_empty.store";
  ASSERT_TRUE(store::PackDataset(MakeDataset({}), path).ok());
  auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped.value().num_users(), 0);

  for (const auto& backend : AllBackends()) {
    ExecContext context;
    context.EnsureUserShards(mapped.value(), 0, backend.get());
    std::atomic<int> users_seen{0};
    MapShards(backend.get(), context.num_shards(), [&](int shard) {
      const DatasetShard& view =
          context.shards()[static_cast<size_t>(shard)];
      users_seen.fetch_add(
          static_cast<int>(view.user_end() - view.user_begin()));
    });
    EXPECT_EQ(users_seen.load(), 0) << backend->name();
  }
}

TEST(BackendRunTest, EveryShardRunsExactlyOnce) {
  constexpr int kShards = 97;
  for (const auto& backend : AllBackends()) {
    std::vector<std::atomic<int>> visits(kShards);
    for (auto& v : visits) v.store(0);
    backend->Run(kShards, [&](int shard) {
      visits[static_cast<size_t>(shard)].fetch_add(1);
    });
    for (int k = 0; k < kShards; ++k) {
      EXPECT_EQ(visits[static_cast<size_t>(k)].load(), 1)
          << backend->name() << " shard " << k;
    }
  }
}

TEST(BackendRunTest, RunIndicesCoversEveryIndexExactlyOnce) {
  constexpr size_t kBegin = 3;
  constexpr size_t kEnd = 131;
  for (const auto& backend : AllBackends()) {
    std::vector<std::atomic<int>> visits(kEnd);
    for (auto& v : visits) v.store(0);
    backend->RunIndices(kBegin, kEnd,
                        [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < kEnd; ++i) {
      EXPECT_EQ(visits[i].load(), i < kBegin ? 0 : 1)
          << backend->name() << " index " << i;
    }
  }
}

TEST(BackendRunTest, NestedRunExecutesInline) {
  // A shard body that dispatches through its own backend must not
  // deadlock (the numa backend runs nested bodies inline; the pool
  // backend's ParallelFor already supports reentrancy).
  for (const auto& backend : AllBackends()) {
    std::atomic<int> inner{0};
    backend->Run(4, [&](int) {
      backend->Run(3, [&](int) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 12) << backend->name();
  }
}

TEST(ThreadPoolBackendTest, NullPoolDegeneratesToInlineSerialOrder) {
  ThreadPoolBackend backend(static_cast<ThreadPool*>(nullptr));
  EXPECT_EQ(backend.concurrency(), 1);
  std::vector<int> order;
  backend.Run(5, [&](int shard) { order.push_back(shard); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolBackendTest, ConcurrencyMatchesParallelMaxSlots) {
  ThreadPool pool(3);
  ThreadPoolBackend borrowed(&pool);
  EXPECT_EQ(borrowed.concurrency(), ParallelMaxSlots(&pool));
  ThreadPoolBackend owned(3);
  EXPECT_EQ(owned.concurrency(), 4);  // 3 workers + the calling thread
}

TEST(ThreadPoolBackendTest, RegistryBackendMatchesDirectMapShards) {
  // Satellite parity check: the registry-constructed pool backend must
  // produce bitwise-identical reductions to the direct ThreadPool*
  // MapShards path, shard by shard.
  const std::vector<double> values = [] {
    std::vector<double> v(1000);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = 1.0 / static_cast<double>(i + 3);
    }
    return v;
  }();
  for (const int threads : {1, 2, 8}) {
    for (const int shards : {1, 3, 7}) {
      const ShardPlan plan = ShardPlan::Contiguous(values.size(), shards);

      ThreadPool pool(threads);
      std::vector<double> direct(static_cast<size_t>(shards), 0.0);
      MapShards(&pool, shards, [&](int shard) {
        const IndexRange range = plan.range(shard);
        direct[static_cast<size_t>(shard)] =
            ReduceOrderedSum(std::span<const double>(
                values.data() + range.begin, range.end - range.begin));
      });

      auto backend = CreateBackend("pool", threads);
      ASSERT_TRUE(backend.ok());
      std::vector<double> via_registry(static_cast<size_t>(shards), 0.0);
      MapShards(backend.value().get(), shards, [&](int shard) {
        const IndexRange range = plan.range(shard);
        via_registry[static_cast<size_t>(shard)] =
            ReduceOrderedSum(std::span<const double>(
                values.data() + range.begin, range.end - range.begin));
      });
      EXPECT_EQ(direct, via_registry)
          << "threads=" << threads << " shards=" << shards;

      auto numa = CreateBackend("numa", threads);
      ASSERT_TRUE(numa.ok());
      std::vector<double> via_numa(static_cast<size_t>(shards), 0.0);
      MapShards(numa.value().get(), shards, [&](int shard) {
        const IndexRange range = plan.range(shard);
        via_numa[static_cast<size_t>(shard)] =
            ReduceOrderedSum(std::span<const double>(
                values.data() + range.begin, range.end - range.begin));
      });
      EXPECT_EQ(direct, via_numa)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ParseCpuListTest, ParsesRangesSinglesAndJunk) {
  EXPECT_EQ(ParseCpuList("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<int>{5}));
  EXPECT_EQ(ParseCpuList("3,1,2,1"), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ParseCpuList(""), (std::vector<int>{}));
  EXPECT_EQ(ParseCpuList("  7-9 \n"), (std::vector<int>{7, 8, 9}));
  EXPECT_EQ(ParseCpuList("x,foo,-"), (std::vector<int>{}));
  // Inverted and absurd ranges are skipped, not expanded.
  EXPECT_EQ(ParseCpuList("9-3"), (std::vector<int>{}));
  EXPECT_EQ(ParseCpuList("0-99999999"), (std::vector<int>{}));
}

TEST(NumaTopologyTest, FromSysfsReadsSyntheticTreeAndFallsBack) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "fake_numa";
  fs::remove_all(root);
  ASSERT_TRUE(fs::create_directories(root / "node0"));
  ASSERT_TRUE(fs::create_directories(root / "node1"));
  { std::ofstream(root / "node0" / "cpulist") << "0-1\n"; }
  { std::ofstream(root / "node1" / "cpulist") << "2-3\n"; }

  const NumaTopology topology = NumaTopology::FromSysfs(root.string());
  ASSERT_EQ(topology.num_nodes(), 2);
  EXPECT_EQ(topology.node_cpus[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(topology.node_cpus[1], (std::vector<int>{2, 3}));

  // A missing tree degrades to the single-node fallback.
  const NumaTopology missing =
      NumaTopology::FromSysfs((root / "does_not_exist").string());
  EXPECT_EQ(missing.num_nodes(), 1);
}

TEST(NumaTopologyTest, ForceSingleNodeOverridesDetection) {
  ASSERT_EQ(setenv("UPSKILL_FORCE_SINGLE_NODE", "1", 1), 0);
  const NumaTopology forced = NumaTopology::Detect();
  EXPECT_EQ(forced.num_nodes(), 1);
  EXPECT_TRUE(forced.node_cpus.empty() || forced.node_cpus[0].empty());
  ASSERT_EQ(unsetenv("UPSKILL_FORCE_SINGLE_NODE"), 0);
}

NumaTopology TwoFakeNodes() {
  // Two nodes with empty cpu sets: node-sticky scheduling without any
  // pinning, so the test behaves identically in sandboxes.
  NumaTopology topology;
  topology.node_cpus = {{}, {}};
  return topology;
}

TEST(NumaBackendTest, HomeNodeRangesAreContiguousAndCoverAllNodes) {
  NumaBackend backend(2, TwoFakeNodes());
  ASSERT_EQ(backend.num_nodes(), 2);
  EXPECT_EQ(backend.HomeNode(0, 10), 0);
  EXPECT_EQ(backend.HomeNode(4, 10), 0);
  EXPECT_EQ(backend.HomeNode(5, 10), 1);
  EXPECT_EQ(backend.HomeNode(9, 10), 1);
  // Monotone non-decreasing over the shard axis, and every node owns at
  // least one shard once num_shards >= num_nodes.
  for (const int shards : {2, 3, 7, 64}) {
    int previous = 0;
    std::vector<int> owned(2, 0);
    for (int shard = 0; shard < shards; ++shard) {
      const int node = backend.HomeNode(shard, shards);
      EXPECT_GE(node, previous);
      EXPECT_LT(node, 2);
      previous = node;
      ++owned[static_cast<size_t>(node)];
    }
    EXPECT_GT(owned[0], 0) << shards;
    EXPECT_GT(owned[1], 0) << shards;
  }
}

TEST(NumaBackendTest, SingleWorkerStealsTheRemoteNodesShards) {
  // One worker => both the worker and the calling thread drain node 0;
  // every node-1 shard they execute is by definition a steal.
  NumaBackend backend(1, TwoFakeNodes());
  std::vector<std::atomic<int>> visits(10);
  for (auto& v : visits) v.store(0);
  backend.Run(10, [&](int shard) {
    visits[static_cast<size_t>(shard)].fetch_add(1);
  });
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(visits[static_cast<size_t>(k)].load(), 1) << k;
  }
  EXPECT_GE(backend.steal_count(), 5u);
}

TEST(NumaBackendTest, ManyRunsStayExactlyOnce) {
  // Reuse across generations: the same backend must keep the
  // exactly-once contract over many Run calls of varying sizes.
  NumaBackend backend(4, TwoFakeNodes());
  for (const int shards : {1, 2, 7, 64, 5, 128}) {
    std::vector<std::atomic<int>> visits(static_cast<size_t>(shards));
    for (auto& v : visits) v.store(0);
    backend.Run(shards, [&](int shard) {
      visits[static_cast<size_t>(shard)].fetch_add(1);
    });
    for (int k = 0; k < shards; ++k) {
      ASSERT_EQ(visits[static_cast<size_t>(k)].load(), 1)
          << "shards=" << shards << " k=" << k;
    }
  }
}

TEST(BackendRegistryTest, BuiltinsResolveAndUnknownNamesFail) {
  const std::vector<std::string> names = BackendRegistry::Global().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "serial"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pool"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "numa"), names.end());

  auto serial = CreateBackend("serial", 8);
  ASSERT_TRUE(serial.ok());
  EXPECT_STREQ(serial.value()->name(), "serial");
  EXPECT_EQ(serial.value()->concurrency(), 1);

  auto pool = CreateBackend("pool", 3);
  ASSERT_TRUE(pool.ok());
  EXPECT_STREQ(pool.value()->name(), "pool");
  EXPECT_EQ(pool.value()->concurrency(), 4);

  auto numa = CreateBackend("numa", 2);
  ASSERT_TRUE(numa.ok());
  EXPECT_STREQ(numa.value()->name(), "numa");
  EXPECT_GE(numa.value()->num_nodes(), 1);

  auto unknown = CreateBackend("gpu", 2);
  ASSERT_FALSE(unknown.ok());
  // The error names the registered backends so a CLI typo is
  // self-explaining.
  EXPECT_NE(unknown.status().message().find("serial"), std::string::npos);
}

TEST(BackendRegistryTest, EmptyAndAutoFollowTheThreadCount) {
  auto inline_default = CreateBackend("", 1);
  ASSERT_TRUE(inline_default.ok());
  EXPECT_STREQ(inline_default.value()->name(), "serial");

  auto pooled_default = CreateBackend("", 4);
  ASSERT_TRUE(pooled_default.ok());
  EXPECT_STREQ(pooled_default.value()->name(), "pool");

  auto auto_default = CreateBackend("auto", 4);
  ASSERT_TRUE(auto_default.ok());
  EXPECT_STREQ(auto_default.value()->name(), "pool");
}

TEST(BackendRegistryTest, CustomFactoriesSlotIn) {
  BackendRegistry::Global().Register(
      "test-inline", [](const BackendSpec&) -> Result<std::shared_ptr<Backend>> {
        return std::shared_ptr<Backend>(SerialBackend::Get(), [](Backend*) {});
      });
  auto created = CreateBackend("test-inline", 2);
  ASSERT_TRUE(created.ok());
  std::vector<int> order;
  created.value()->Run(3, [&](int shard) { order.push_back(shard); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ExecContextBackendTest, SwitchingBackendsResetsWorkspaces) {
  const Dataset dataset = MakeDataset({4, 6, 2, 8, 3});
  ExecContext context;
  auto first = CreateBackend("pool", 2);
  ASSERT_TRUE(first.ok());
  context.SetBackend(first.value());
  context.EnsureUserShards(dataset, 3);
  ASSERT_EQ(context.num_shards(), 3);
  context.workspace(0).dp.items.resize(64);
  context.workspace(1).grid.assign(128, 1.0);

  // Re-installing the SAME instance keeps workspaces (and their grown
  // arenas) intact — the steady-state path.
  ShardWorkspace* stable = &context.workspace(0);
  context.SetBackend(first.value());
  context.EnsureUserShards(dataset, 3);
  EXPECT_EQ(&context.workspace(0), stable);
  EXPECT_EQ(context.workspace(0).dp.items.size(), 64u);

  // Switching to a DIFFERENT instance must drop every workspace: the
  // arenas were sized/page-placed under the old backend's workers and
  // must not leak into the new topology.
  auto second = CreateBackend("numa", 2);
  ASSERT_TRUE(second.ok());
  context.SetBackend(second.value());
  context.EnsureUserShards(dataset, 3);
  ASSERT_EQ(context.num_shards(), 3);
  EXPECT_EQ(context.workspace(0).dp.items.size(), 0u);
  EXPECT_EQ(context.workspace(1).grid.size(), 0u);

  // Uninstalling (null) is also a switch.
  context.workspace(0).dp.items.resize(32);
  context.SetBackend(nullptr);
  context.EnsureUserShards(dataset, 3);
  EXPECT_EQ(context.workspace(0).dp.items.size(), 0u);
}

TEST(AxisBackendTest, PreservesLegacyAxisGating) {
  BackendChoice choice_a;
  ThreadPool pool(2);
  // No installed backend: enabled axis + pool -> pool-backed; disabled
  // axis -> serial even with a pool (the old `axis && pool` gate).
  EXPECT_STREQ(AxisBackend(nullptr, true, &pool, choice_a)->name(), "pool");
  BackendChoice choice_b;
  EXPECT_EQ(AxisBackend(nullptr, false, &pool, choice_b),
            SerialBackend::Get());
  BackendChoice choice_c;
  EXPECT_EQ(AxisBackend(nullptr, true, nullptr, choice_c),
            SerialBackend::Get());

  // Installed backend: enabled axis runs on it; disabled axis is serial;
  // a concurrency-1 backend is serial either way.
  ExecContext context;
  auto numa = CreateBackend("numa", 2);
  ASSERT_TRUE(numa.ok());
  context.SetBackend(numa.value());
  BackendChoice choice_d;
  EXPECT_EQ(AxisBackend(&context, true, nullptr, choice_d),
            numa.value().get());
  BackendChoice choice_e;
  EXPECT_EQ(AxisBackend(&context, false, nullptr, choice_e),
            SerialBackend::Get());
  auto serial = CreateBackend("serial", 1);
  ASSERT_TRUE(serial.ok());
  context.SetBackend(serial.value());
  BackendChoice choice_f;
  EXPECT_EQ(AxisBackend(&context, true, nullptr, choice_f),
            SerialBackend::Get());
}

}  // namespace
}  // namespace exec
}  // namespace upskill
