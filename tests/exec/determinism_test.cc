// The sharded execution core's contract: fitted parameters, assignments,
// per-iteration objectives, and serialized snapshots are bitwise
// identical for ANY thread count and ANY shard count. These tests sweep
// threads {1, 2, 8} x shards {1, 3, 7} over the hard trainer (with and
// without the global progression component), the EM trainer, and the
// eval harness, comparing everything with operator== (no tolerances).
// The suite also runs under UPSKILL_SANITIZE=thread, where the same
// sweeps double as race detectors for the shard workspaces.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/difficulty.h"
#include "core/em_trainer.h"
#include "core/trainer.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "eval/tasks.h"
#include "exec/backend_registry.h"
#include "serve/snapshot.h"
#include "simd/simd.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace upskill {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr int kShardCounts[] = {1, 3, 7};
constexpr const char* kExecBackends[] = {"serial", "pool", "numa"};

datagen::GeneratedData MakeData() {
  datagen::SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 100;
  config.mean_sequence_length = 20.0;
  config.seed = 20260806;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

SkillModelConfig MakeConfig(int threads, int shards) {
  SkillModelConfig config;
  config.num_levels = 4;
  config.max_iterations = 6;
  config.min_init_actions = 10;
  config.num_shards = shards;
  config.parallel.num_threads = threads;
  config.parallel.users = threads > 1;
  config.parallel.levels = threads > 1;
  config.parallel.features = threads > 1;
  return config;
}

// Every component's parameter vector, in (feature, level) order. Bitwise
// vector equality here means the fitted model is bitwise identical.
std::vector<std::vector<double>> ModelParams(const SkillModel& model) {
  std::vector<std::vector<double>> params;
  for (int f = 0; f < model.num_features(); ++f) {
    for (int s = 1; s <= model.num_levels(); ++s) {
      params.push_back(model.component(f, s).Parameters());
    }
  }
  return params;
}

std::string SnapshotBytes(const TrainResult& result, const Dataset& dataset,
                          const TransitionWeights* transitions,
                          const std::string& path) {
  auto snapshot = serve::MakeSnapshot(
      result.model, dataset.items(),
      EstimateDifficultyByAssignment(dataset, result.assignments),
      transitions);
  EXPECT_TRUE(snapshot.ok());
  EXPECT_TRUE(serve::SaveSnapshot(snapshot.value(), path).ok());
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TransitionWeights WeightsFromResult(const TrainResult& result) {
  TransitionWeights weights;
  weights.log_initial.reserve(result.initial_distribution.size());
  for (const double p : result.initial_distribution) {
    weights.log_initial.push_back(std::log(p));
  }
  weights.log_up = std::log(result.level_up_probability);
  weights.log_stay = std::log(1.0 - result.level_up_probability);
  return weights;
}

void ExpectSameTrainResult(const TrainResult& base, const TrainResult& run,
                           const std::string& label) {
  EXPECT_EQ(base.log_likelihood_trace, run.log_likelihood_trace) << label;
  EXPECT_EQ(base.assignments, run.assignments) << label;
  EXPECT_EQ(ModelParams(base.model), ModelParams(run.model)) << label;
  EXPECT_EQ(base.iterations, run.iterations) << label;
  EXPECT_EQ(base.converged, run.converged) << label;
  EXPECT_EQ(base.final_log_likelihood, run.final_log_likelihood) << label;
  EXPECT_EQ(base.skipped_users, run.skipped_users) << label;
  EXPECT_EQ(base.reassigned_users, run.reassigned_users) << label;
}

TEST(ShardDeterminismTest, TrainerBitwiseInvariantAcrossThreadsAndShards) {
  const datagen::GeneratedData data = MakeData();
  const std::string path = testing::TempDir() + "/det_trainer.snap";

  TrainResult base;
  std::string base_bytes;
  bool have_base = false;
  for (const int threads : kThreadCounts) {
    for (const int shards : kShardCounts) {
      const Trainer trainer(MakeConfig(threads, shards));
      auto result = trainer.Train(data.dataset);
      ASSERT_TRUE(result.ok());
      const std::string bytes =
          SnapshotBytes(result.value(), data.dataset, nullptr, path);
      const std::string label = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(shards);
      if (!have_base) {
        base = std::move(result).value();
        base_bytes = bytes;
        have_base = true;
        ASSERT_FALSE(base.log_likelihood_trace.empty());
        continue;
      }
      ExpectSameTrainResult(base, result.value(), label);
      EXPECT_EQ(base_bytes, bytes) << label;
    }
  }
}

TEST(ShardDeterminismTest, TrainerWithGlobalTransitionsBitwiseInvariant) {
  const datagen::GeneratedData data = MakeData();
  const std::string path = testing::TempDir() + "/det_transitions.snap";

  TrainResult base;
  std::string base_bytes;
  bool have_base = false;
  for (const int threads : kThreadCounts) {
    for (const int shards : kShardCounts) {
      SkillModelConfig config = MakeConfig(threads, shards);
      config.transitions = TransitionModel::kGlobal;
      const Trainer trainer(config);
      auto result = trainer.Train(data.dataset);
      ASSERT_TRUE(result.ok());
      const TransitionWeights weights = WeightsFromResult(result.value());
      const std::string bytes =
          SnapshotBytes(result.value(), data.dataset, &weights, path);
      const std::string label = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(shards);
      if (!have_base) {
        base = std::move(result).value();
        base_bytes = bytes;
        have_base = true;
        continue;
      }
      ExpectSameTrainResult(base, result.value(), label);
      EXPECT_EQ(base.initial_distribution, result.value().initial_distribution)
          << label;
      EXPECT_EQ(base.level_up_probability,
                result.value().level_up_probability)
          << label;
      EXPECT_EQ(base_bytes, bytes) << label;
    }
  }
}

TEST(ShardDeterminismTest, EmTrainerBitwiseInvariantAcrossThreadsAndShards) {
  const datagen::GeneratedData data = MakeData();

  EmTrainResult base;
  bool have_base = false;
  for (const int threads : kThreadCounts) {
    for (const int shards : kShardCounts) {
      EmTrainerConfig config;
      config.model = MakeConfig(threads, shards);
      config.model.max_iterations = 4;
      const EmTrainer trainer(config);
      auto result = trainer.Train(data.dataset);
      ASSERT_TRUE(result.ok());
      const std::string label = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(shards);
      if (!have_base) {
        base = std::move(result).value();
        have_base = true;
        ASSERT_FALSE(base.log_likelihood_trace.empty());
        continue;
      }
      const EmTrainResult& run = result.value();
      EXPECT_EQ(base.log_likelihood_trace, run.log_likelihood_trace) << label;
      EXPECT_EQ(base.assignments, run.assignments) << label;
      EXPECT_EQ(ModelParams(base.model), ModelParams(run.model)) << label;
      EXPECT_EQ(base.initial_distribution, run.initial_distribution) << label;
      EXPECT_EQ(base.level_up_probability, run.level_up_probability) << label;
    }
  }
}

TEST(ShardDeterminismTest, TrainerBitwiseInvariantAcrossSimdBackends) {
  // The SIMD kernel layer's contract (src/simd): forcing the scalar
  // fallback — what UPSKILL_FORCE_SCALAR=1 does at process start — must
  // leave every training output bitwise unchanged, on every thread/shard
  // combination, for the plain trainer and for the transitions+forgetting
  // configuration that exercises the down-edge DP kernel. On scalar-only
  // hardware both sweeps run the fallback and the test is vacuously
  // green; on AVX2/NEON hosts it pins the vector kernels to the scalar
  // reference through the full training stack.
  const datagen::GeneratedData data = MakeData();
  const std::string path = testing::TempDir() + "/det_simd.snap";

  for (const bool forgetting : {false, true}) {
    TrainResult base;
    std::string base_bytes;
    bool have_base = false;
    for (const bool force_scalar : {false, true}) {
      simd::ForceScalarForTest(force_scalar);
      for (const int threads : {1, 8}) {
        SkillModelConfig config = MakeConfig(threads, threads > 1 ? 7 : 1);
        if (forgetting) {
          config.transitions = TransitionModel::kGlobal;
          config.forgetting.enabled = true;
          config.forgetting.gap_threshold = 40;
          config.forgetting.drop_probability = 0.05;
        }
        const Trainer trainer(config);
        auto result = trainer.Train(data.dataset);
        ASSERT_TRUE(result.ok());
        const std::string bytes =
            SnapshotBytes(result.value(), data.dataset, nullptr, path);
        const std::string label =
            std::string("backend=") +
            (force_scalar ? "scalar" : simd::BackendName()) +
            " threads=" + std::to_string(threads) +
            " forgetting=" + (forgetting ? "on" : "off");
        if (!have_base) {
          base = std::move(result).value();
          base_bytes = bytes;
          have_base = true;
          continue;
        }
        ExpectSameTrainResult(base, result.value(), label);
        EXPECT_EQ(base_bytes, bytes) << label;
      }
    }
    simd::ForceScalarForTest(false);
  }
}

TEST(ShardDeterminismTest, TrainingFromMappedStoreBitwiseMatchesInRam) {
  // The out-of-core contract (src/store): training on the zero-copy
  // mmap view of a packed dataset is bitwise identical — parameters,
  // assignments, objective traces, serialized snapshot bytes — to
  // training on the in-RAM dataset it was packed from, for any thread
  // and shard count. The store changes where the actions live, never
  // what the trainer computes.
  const datagen::GeneratedData data = MakeData();
  const std::string store_path = testing::TempDir() + "/det_store.store";
  const std::string path = testing::TempDir() + "/det_store.snap";
  ASSERT_TRUE(store::PackDataset(data.dataset, store_path).ok());
  auto reader = store::StoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  for (const bool transitions : {false, true}) {
    TrainResult base;
    std::string base_bytes;
    bool have_base = false;
    for (const int threads : kThreadCounts) {
      for (const int shards : kShardCounts) {
        SkillModelConfig config = MakeConfig(threads, shards);
        if (transitions) config.transitions = TransitionModel::kGlobal;
        const Trainer trainer(config);
        // The in-RAM run only for the first combination: the sweeps above
        // already pin in-RAM results across threads/shards, so one anchor
        // suffices and every combination compares mapped against it.
        if (!have_base) {
          auto in_ram = trainer.Train(data.dataset);
          ASSERT_TRUE(in_ram.ok());
          base = std::move(in_ram).value();
          base_bytes = SnapshotBytes(base, data.dataset, nullptr, path);
          have_base = true;
        }
        auto from_store = trainer.Train(mapped.value());
        ASSERT_TRUE(from_store.ok());
        const std::string bytes =
            SnapshotBytes(from_store.value(), mapped.value(), nullptr, path);
        const std::string label = "store threads=" + std::to_string(threads) +
                                  " shards=" + std::to_string(shards) +
                                  (transitions ? " transitions" : "");
        ExpectSameTrainResult(base, from_store.value(), label);
        EXPECT_EQ(base_bytes, bytes) << label;
      }
    }
  }
}

TEST(BackendSweepTest, TrainerBitwiseInvariantAcrossExecBackends) {
  // The acceptance bar for the pluggable backends: fitted parameters,
  // assignments, per-iteration objectives, and snapshot bytes are bitwise
  // identical across serial|pool|numa x threads {1,2,8} x shards {1,3,7}.
  // Backends only move scheduling; every reduction is per-element or an
  // exact integer count merged in fixed shard order, so this sweep holds
  // with operator== and no tolerances.
  const datagen::GeneratedData data = MakeData();
  const std::string path = testing::TempDir() + "/det_backend.snap";

  TrainResult base;
  std::string base_bytes;
  bool have_base = false;
  for (const char* backend : kExecBackends) {
    for (const int threads : kThreadCounts) {
      for (const int shards : kShardCounts) {
        SkillModelConfig config = MakeConfig(threads, shards);
        config.backend = backend;
        const Trainer trainer(config);
        auto result = trainer.Train(data.dataset);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const std::string bytes =
            SnapshotBytes(result.value(), data.dataset, nullptr, path);
        const std::string label = std::string("backend=") + backend +
                                  " threads=" + std::to_string(threads) +
                                  " shards=" + std::to_string(shards);
        if (!have_base) {
          base = std::move(result).value();
          base_bytes = bytes;
          have_base = true;
          ASSERT_FALSE(base.log_likelihood_trace.empty());
          continue;
        }
        ExpectSameTrainResult(base, result.value(), label);
        EXPECT_EQ(base_bytes, bytes) << label;
      }
    }
  }
}

TEST(BackendSweepTest, EmTrainerBitwiseInvariantAcrossExecBackends) {
  const datagen::GeneratedData data = MakeData();

  EmTrainResult base;
  bool have_base = false;
  for (const char* backend : kExecBackends) {
    for (const int threads : {1, 8}) {
      EmTrainerConfig config;
      config.model = MakeConfig(threads, threads > 1 ? 7 : 1);
      config.model.max_iterations = 4;
      config.model.backend = backend;
      const EmTrainer trainer(config);
      auto result = trainer.Train(data.dataset);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const std::string label = std::string("backend=") + backend +
                                " threads=" + std::to_string(threads);
      if (!have_base) {
        base = std::move(result).value();
        have_base = true;
        continue;
      }
      const EmTrainResult& run = result.value();
      EXPECT_EQ(base.log_likelihood_trace, run.log_likelihood_trace) << label;
      EXPECT_EQ(base.assignments, run.assignments) << label;
      EXPECT_EQ(ModelParams(base.model), ModelParams(run.model)) << label;
      EXPECT_EQ(base.initial_distribution, run.initial_distribution) << label;
      EXPECT_EQ(base.level_up_probability, run.level_up_probability) << label;
    }
  }
}

TEST(BackendSweepTest, MappedStoreBitwiseMatchesInRamAcrossExecBackends) {
  // The PR 8 mapped-store sweep, re-run through registry-constructed
  // backends: training on the zero-copy mmap view must stay bitwise
  // identical to the in-RAM anchor on every backend.
  const datagen::GeneratedData data = MakeData();
  const std::string store_path = testing::TempDir() + "/det_backend.store";
  const std::string path = testing::TempDir() + "/det_backend_store.snap";
  ASSERT_TRUE(store::PackDataset(data.dataset, store_path).ok());
  auto reader = store::StoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  TrainResult base;
  std::string base_bytes;
  bool have_base = false;
  for (const char* backend : kExecBackends) {
    for (const int threads : {1, 8}) {
      for (const int shards : {1, 7}) {
        SkillModelConfig config = MakeConfig(threads, shards);
        config.backend = backend;
        const Trainer trainer(config);
        if (!have_base) {
          auto in_ram = trainer.Train(data.dataset);
          ASSERT_TRUE(in_ram.ok());
          base = std::move(in_ram).value();
          base_bytes = SnapshotBytes(base, data.dataset, nullptr, path);
          have_base = true;
        }
        auto from_store = trainer.Train(mapped.value());
        ASSERT_TRUE(from_store.ok());
        const std::string bytes =
            SnapshotBytes(from_store.value(), mapped.value(), nullptr, path);
        const std::string label = std::string("store backend=") + backend +
                                  " threads=" + std::to_string(threads) +
                                  " shards=" + std::to_string(shards);
        ExpectSameTrainResult(base, from_store.value(), label);
        EXPECT_EQ(base_bytes, bytes) << label;
      }
    }
  }
}

TEST(BackendSweepTest, EvalReportBitwiseInvariantAcrossExecBackends) {
  const datagen::GeneratedData data = MakeData();
  Rng rng(7);
  auto split = MakeHoldoutSplit(data.dataset, HoldoutPosition::kLast, rng);
  ASSERT_TRUE(split.ok());

  const Trainer trainer(MakeConfig(1, 1));
  auto trained = trainer.Train(split.value().train);
  ASSERT_TRUE(trained.ok());

  auto base = eval::EvaluateItemPrediction(
      split.value().train, trained.value().assignments, trained.value().model,
      split.value().test, /*k=*/10, exec::SerialBackend::Get());
  ASSERT_TRUE(base.ok());
  ASSERT_GT(base.value().num_cases, 0u);

  for (const char* name : kExecBackends) {
    for (const int threads : {1, 8}) {
      auto backend = exec::CreateBackend(name, threads);
      ASSERT_TRUE(backend.ok());
      auto report = eval::EvaluateItemPrediction(
          split.value().train, trained.value().assignments,
          trained.value().model, split.value().test, /*k=*/10,
          backend.value().get());
      ASSERT_TRUE(report.ok());
      const std::string label = std::string("backend=") + name +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(base.value().accuracy_at_k, report.value().accuracy_at_k)
          << label;
      EXPECT_EQ(base.value().mean_reciprocal_rank,
                report.value().mean_reciprocal_rank)
          << label;
      EXPECT_EQ(base.value().reciprocal_ranks, report.value().reciprocal_ranks)
          << label;
      EXPECT_EQ(base.value().num_cases, report.value().num_cases) << label;
    }
  }
}

TEST(ShardDeterminismTest, EvalReportBitwiseInvariantAcrossThreads) {
  const datagen::GeneratedData data = MakeData();
  Rng rng(7);
  auto split = MakeHoldoutSplit(data.dataset, HoldoutPosition::kLast, rng);
  ASSERT_TRUE(split.ok());

  const Trainer trainer(MakeConfig(1, 1));
  auto trained = trainer.Train(split.value().train);
  ASSERT_TRUE(trained.ok());

  auto serial = eval::EvaluateItemPrediction(
      split.value().train, trained.value().assignments, trained.value().model,
      split.value().test, /*k=*/10, static_cast<ThreadPool*>(nullptr));
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial.value().num_cases, 0u);

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    auto parallel = eval::EvaluateItemPrediction(
        split.value().train, trained.value().assignments,
        trained.value().model, split.value().test, /*k=*/10, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial.value().accuracy_at_k, parallel.value().accuracy_at_k);
    EXPECT_EQ(serial.value().mean_reciprocal_rank,
              parallel.value().mean_reciprocal_rank);
    EXPECT_EQ(serial.value().reciprocal_ranks,
              parallel.value().reciprocal_ranks);
    EXPECT_EQ(serial.value().num_cases, parallel.value().num_cases);
  }
}

}  // namespace
}  // namespace upskill
