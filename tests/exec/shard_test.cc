// Unit tests for the sharded execution core: plan coverage and balance,
// shard-count resolution, dataset shard views, the fixed-shape ordered
// reductions, MapShards dispatch, and ExecContext reuse.

#include "exec/shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "exec/map_reduce.h"
#include "exec/workspace.h"

namespace upskill {
namespace exec {
namespace {

Dataset MakeDataset(const std::vector<int>& sequence_lengths,
                    int num_items = 8) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddCount("steps").ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {static_cast<double>(i + 1)};
    EXPECT_TRUE(items.AddItem(row).ok());
  }
  Dataset dataset(std::move(items));
  for (const int length : sequence_lengths) {
    const UserId user = dataset.AddUser();
    for (int n = 0; n < length; ++n) {
      EXPECT_TRUE(
          dataset.AddAction(user, n, static_cast<ItemId>(n % num_items)).ok());
    }
  }
  return dataset;
}

void ExpectCoversExactly(const ShardPlan& plan, size_t count) {
  ASSERT_GT(plan.num_shards(), 0);
  EXPECT_EQ(plan.total(), count);
  size_t expected_begin = 0;
  for (int k = 0; k < plan.num_shards(); ++k) {
    const IndexRange range = plan.range(k);
    EXPECT_EQ(range.begin, expected_begin) << "shard " << k;
    EXPECT_LE(range.begin, range.end) << "shard " << k;
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, count);
}

TEST(ShardPlanTest, ContiguousCoversEverySplit) {
  for (const size_t count : {0u, 1u, 2u, 7u, 16u, 100u}) {
    for (const int shards : {1, 2, 3, 7, 16}) {
      const ShardPlan plan = ShardPlan::Contiguous(count, shards);
      EXPECT_EQ(plan.num_shards(), shards);
      ExpectCoversExactly(plan, count);
      // Equal counts up to one element.
      for (int k = 0; k < shards; ++k) {
        const size_t size = plan.range(k).size();
        EXPECT_LE(size, count / static_cast<size_t>(shards) + 1);
      }
    }
  }
}

TEST(ShardPlanTest, MoreShardsThanElementsLeavesEmptyShards) {
  const ShardPlan plan = ShardPlan::Contiguous(3, 8);
  ExpectCoversExactly(plan, 3);
  int non_empty = 0;
  for (int k = 0; k < plan.num_shards(); ++k) {
    if (!plan.range(k).empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, 3);
}

TEST(ShardPlanTest, BalancedIsolatesHeavyPrefix) {
  // One user holds ~95% of the weight: it must get a shard of its own
  // instead of serializing half the index space.
  const std::vector<size_t> weights = {100, 1, 1, 1, 1, 1};
  const ShardPlan plan = ShardPlan::Balanced(weights, 2);
  ExpectCoversExactly(plan, weights.size());
  EXPECT_EQ(plan.range(0).end, 1u);
  EXPECT_EQ(plan.range(1).begin, 1u);
}

TEST(ShardPlanTest, BalancedCoversAndIsDeterministic) {
  const std::vector<size_t> weights = {3, 9, 1, 1, 4, 7, 2, 2, 8, 1};
  for (const int shards : {1, 2, 3, 4, 7, 12}) {
    const ShardPlan plan = ShardPlan::Balanced(weights, shards);
    ExpectCoversExactly(plan, weights.size());
    // Same inputs, same cuts: the plan is a pure function of the weights.
    const ShardPlan again = ShardPlan::Balanced(weights, shards);
    for (int k = 0; k < shards; ++k) {
      EXPECT_EQ(plan.range(k).begin, again.range(k).begin);
      EXPECT_EQ(plan.range(k).end, again.range(k).end);
    }
  }
}

TEST(ShardPlanTest, BalancedAllZeroWeightsDegeneratesToContiguous) {
  const std::vector<size_t> weights(10, 0);
  const ShardPlan balanced = ShardPlan::Balanced(weights, 3);
  const ShardPlan contiguous = ShardPlan::Contiguous(10, 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(balanced.range(k).begin, contiguous.range(k).begin);
    EXPECT_EQ(balanced.range(k).end, contiguous.range(k).end);
  }
}

TEST(ResolveShardCountTest, HonorsExplicitRequest) {
  EXPECT_EQ(ResolveShardCount(7, static_cast<const ThreadPool*>(nullptr), 3), 7);
  EXPECT_EQ(ResolveShardCount(1, static_cast<const ThreadPool*>(nullptr), 1000), 1);
}

TEST(ResolveShardCountTest, AutoScalesWithPoolAndClampsToCount) {
  // No pool still gets kDefaultShardsPerSlot shards (one slot): shard
  // count only affects scheduling granularity, never results.
  EXPECT_EQ(ResolveShardCount(0, static_cast<const ThreadPool*>(nullptr), 100), kDefaultShardsPerSlot);
  EXPECT_EQ(ResolveShardCount(0, static_cast<const ThreadPool*>(nullptr), 0), 1);
  ThreadPool pool(3);  // 4 slots (workers + caller)
  EXPECT_EQ(ResolveShardCount(0, &pool, 1000), 4 * kDefaultShardsPerSlot);
  EXPECT_EQ(ResolveShardCount(0, &pool, 5), 5);
  EXPECT_EQ(ResolveShardCount(-1, &pool, 0), 1);
}

TEST(DatasetShardTest, ViewsPartitionUsersAndActions) {
  const Dataset dataset = MakeDataset({5, 0, 9, 2, 14, 1});
  const ShardPlan plan = PlanDatasetShards(dataset, 3);
  const std::vector<DatasetShard> shards = MakeDatasetShards(dataset, plan);
  ASSERT_EQ(shards.size(), 3u);
  size_t users = 0;
  size_t actions = 0;
  for (const DatasetShard& shard : shards) {
    users += shard.num_users();
    actions += shard.num_actions();
    for (UserId u = shard.user_begin(); u < shard.user_end(); ++u) {
      // Zero-copy: the shard's span aliases the dataset's storage.
      EXPECT_EQ(shard.sequence(u).data(), dataset.sequence(u).data());
      EXPECT_EQ(shard.sequence(u).size(), dataset.sequence(u).size());
    }
    EXPECT_EQ(&shard.items(), &dataset.items());
  }
  EXPECT_EQ(users, static_cast<size_t>(dataset.num_users()));
  EXPECT_EQ(actions, dataset.num_actions());
}

TEST(ReduceOrderedSumTest, MatchesSerialBelowLeafSize) {
  std::vector<double> values;
  for (size_t i = 0; i < kReduceLeafElements; ++i) {
    values.push_back(0.1 * static_cast<double>(i + 1));
    double serial = 0.0;
    for (const double v : values) serial += v;
    // Bitwise: small sums must be indistinguishable from the plain loop.
    EXPECT_EQ(ReduceOrderedSum(values), serial) << values.size();
  }
}

TEST(ReduceOrderedSumTest, FixedShapeIsPureFunctionOfValues) {
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 3);
  }
  const double once = ReduceOrderedSum(values);
  EXPECT_EQ(ReduceOrderedSum(values), once);
  // Sanity: close to the serial sum even though reassociated.
  double serial = 0.0;
  for (const double v : values) serial += v;
  EXPECT_NEAR(once, serial, 1e-9);
  EXPECT_EQ(ReduceOrderedSum(std::vector<double>{}), 0.0);
}

TEST(ReduceOrderedTest, FoldsEverythingIntoFirstElement) {
  std::vector<int64_t> items(100);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int64_t>(i + 1);
  }
  ReduceOrdered(std::span<int64_t>(items),
                [](int64_t& into, const int64_t& from) { into += from; });
  EXPECT_EQ(items[0], 100 * 101 / 2);
}

TEST(MapShardsTest, VisitsEveryShardExactlyOnce) {
  for (const bool threaded : {false, true}) {
    ThreadPool pool(4);
    constexpr int kShards = 23;
    std::vector<std::atomic<int>> visits(kShards);
    MapShards(threaded ? &pool : nullptr, kShards, [&](int shard) {
      visits[static_cast<size_t>(shard)].fetch_add(1);
    });
    for (int k = 0; k < kShards; ++k) {
      EXPECT_EQ(visits[static_cast<size_t>(k)].load(), 1) << k;
    }
  }
}

TEST(ExecContextTest, EnsureIsIdempotentAndWorkspacesAreStable) {
  const Dataset dataset = MakeDataset({4, 6, 2, 8, 3});
  ExecContext context;
  context.EnsureUserShards(dataset, 3, static_cast<const ThreadPool*>(nullptr));
  ASSERT_EQ(context.num_shards(), 3);
  ShardWorkspace* first = &context.workspace(0);
  first->dp.items.resize(64);  // grow an arena; it must survive re-Ensure

  context.EnsureUserShards(dataset, 3, static_cast<const ThreadPool*>(nullptr));
  EXPECT_EQ(context.num_shards(), 3);
  EXPECT_EQ(&context.workspace(0), first);
  EXPECT_EQ(context.workspace(0).dp.items.size(), 64u);

  // An auto request sticks to the existing plan even under a different
  // pool (drivers whose phases use different pools must not thrash).
  ThreadPool pool(4);
  context.EnsureUserShards(dataset, 0, &pool);
  EXPECT_EQ(context.num_shards(), 3);
  EXPECT_EQ(&context.workspace(0), first);

  // An explicit different request rebuilds; workspaces grow but persist.
  context.EnsureUserShards(dataset, 5, &pool);
  EXPECT_EQ(context.num_shards(), 5);
  EXPECT_EQ(&context.workspace(0), first);
  EXPECT_EQ(context.workspace(0).dp.items.size(), 64u);
}

}  // namespace
}  // namespace exec
}  // namespace upskill
