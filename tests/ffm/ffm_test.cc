#include "ffm/ffm.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "ffm/feature_builder.h"

namespace upskill {
namespace ffm {
namespace {

TEST(FfmModelTest, CreateValidates) {
  FfmConfig config;
  EXPECT_FALSE(FfmModel::Create(0, 5, config).ok());
  EXPECT_FALSE(FfmModel::Create(2, 0, config).ok());
  config.num_latent = 0;
  EXPECT_FALSE(FfmModel::Create(2, 5, config).ok());
  config.num_latent = 4;
  config.learning_rate = 0.0;
  EXPECT_FALSE(FfmModel::Create(2, 5, config).ok());
}

TEST(FfmModelTest, PredictIsDeterministicGivenSeed) {
  FfmConfig config;
  config.seed = 123;
  auto a = FfmModel::Create(2, 6, config);
  auto b = FfmModel::Create(2, 6, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Instance instance = {{0, 1, 1.0}, {1, 4, 1.0}};
  EXPECT_DOUBLE_EQ(a.value().Predict(instance), b.value().Predict(instance));
}

TEST(FfmModelTest, TrainingReducesLoss) {
  // Learnable rating structure over 4 users x 4 items.
  FfmConfig config;
  config.epochs = 30;
  auto created = FfmModel::Create(2, 8, config);
  ASSERT_TRUE(created.ok());
  FfmModel model = std::move(created).value();

  std::vector<Example> examples;
  for (int u = 0; u < 4; ++u) {
    for (int i = 0; i < 4; ++i) {
      const double target = 1.0 + 0.5 * u + 0.3 * i + ((u + i) % 2 == 0 ? 0.4 : 0.0);
      examples.push_back(Example{{{0, u, 1.0}, {1, 4 + i, 1.0}}, target});
    }
  }
  const double before = model.Evaluate(examples);
  Rng rng(7);
  model.Train(examples, rng);
  const double after = model.Evaluate(examples);
  EXPECT_LT(after, before * 0.5);
  EXPECT_LT(after, 0.2);
}

TEST(FfmModelTest, EpochLossDecreasesOverall) {
  FfmConfig config;
  auto created = FfmModel::Create(2, 6, config);
  ASSERT_TRUE(created.ok());
  FfmModel model = std::move(created).value();
  std::vector<Example> examples;
  for (int u = 0; u < 3; ++u) {
    for (int i = 0; i < 3; ++i) {
      examples.push_back(
          Example{{{0, u, 1.0}, {1, 3 + i, 1.0}}, 1.0 + u - 0.5 * i});
    }
  }
  const double first = model.TrainEpoch(examples);
  double last = first;
  for (int epoch = 0; epoch < 20; ++epoch) last = model.TrainEpoch(examples);
  EXPECT_LT(last, first);
}

TEST(FfmModelTest, InteractionsCaptureNonAdditiveStructure) {
  // An XOR-style target that no purely additive (bias + linear) model can
  // fit: target depends only on the parity of (user, item).
  FfmConfig config;
  config.epochs = 200;
  config.learning_rate = 0.15;
  auto created = FfmModel::Create(2, 4, config);
  ASSERT_TRUE(created.ok());
  FfmModel model = std::move(created).value();
  std::vector<Example> examples = {
      Example{{{0, 0, 1.0}, {1, 2, 1.0}}, 1.0},
      Example{{{0, 0, 1.0}, {1, 3, 1.0}}, -1.0},
      Example{{{0, 1, 1.0}, {1, 2, 1.0}}, -1.0},
      Example{{{0, 1, 1.0}, {1, 3, 1.0}}, 1.0},
  };
  Rng rng(11);
  model.Train(examples, rng);
  EXPECT_LT(model.Evaluate(examples), 0.25);
}

TEST(FfmModelTest, SaveLoadRoundTrip) {
  FfmConfig config;
  config.epochs = 10;
  auto created = FfmModel::Create(2, 6, config);
  ASSERT_TRUE(created.ok());
  FfmModel model = std::move(created).value();
  std::vector<Example> examples;
  for (int u = 0; u < 3; ++u) {
    for (int i = 0; i < 3; ++i) {
      examples.push_back(
          Example{{{0, u, 1.0}, {1, 3 + i, 1.0}}, 2.0 + u - 0.4 * i});
    }
  }
  Rng rng(21);
  model.Train(examples, rng);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("upskill_ffm_" + std::to_string(::getpid()) + ".txt"))
          .string();
  ASSERT_TRUE(model.Save(path).ok());
  const auto loaded = FfmModel::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_fields(), 2);
  EXPECT_EQ(loaded.value().num_features(), 6);
  for (const Example& example : examples) {
    EXPECT_DOUBLE_EQ(loaded.value().Predict(example.features),
                     model.Predict(example.features));
  }
  std::filesystem::remove(path);
}

TEST(FfmModelTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("upskill_ffm_bad_" + std::to_string(::getpid()) + ".txt"))
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a model\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(FfmModel::Load(path).ok());
  // Truncated file: valid header, missing weights.
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("ffm 2 6 4\n0.5\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(FfmModel::Load(path).ok());
  std::filesystem::remove(path);
  EXPECT_FALSE(FfmModel::Load(path).ok());  // missing file
}

TEST(FfmModelTest, ValidationTrainingStopsEarlyAndNeverDegrades) {
  FfmConfig config;
  config.epochs = 100;
  auto created = FfmModel::Create(2, 8, config);
  ASSERT_TRUE(created.ok());
  FfmModel model = std::move(created).value();

  Rng data_rng(33);
  std::vector<Example> train;
  std::vector<Example> validation;
  for (int n = 0; n < 400; ++n) {
    const int u = static_cast<int>(data_rng.NextInt(4));
    const int i = static_cast<int>(data_rng.NextInt(4));
    const double target =
        1.0 + 0.4 * u - 0.2 * i + 0.3 * data_rng.NextGaussian();
    const Example example{{{0, u, 1.0}, {1, 4 + i, 1.0}}, target};
    (n % 5 == 0 ? validation : train).push_back(example);
  }

  const double before = model.Evaluate(validation);
  Rng rng(7);
  const double best = model.TrainWithValidation(train, validation, rng, 3);
  const double after = model.Evaluate(validation);
  // The returned best RMSE is what the restored weights score.
  EXPECT_NEAR(best, after, 1e-9);
  // Early stopping restores the best weights, so validation never ends
  // worse than it started.
  EXPECT_LE(after, before + 1e-9);
  EXPECT_LT(after, before);  // and on learnable data it actually improves
}

TEST(RatingFeatureBuilderTest, BaselineLayout) {
  const auto builder =
      RatingFeatureBuilder::Create(10, 20, 5, RatingFeatureConfig{});
  ASSERT_TRUE(builder.ok());
  EXPECT_EQ(builder.value().num_fields(), 2);
  EXPECT_EQ(builder.value().num_features(), 30);
  const auto instance = builder.value().Build(3, 7, 1, 1.0);
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance.value().size(), 2u);
  EXPECT_EQ(instance.value()[0].field, 0);
  EXPECT_EQ(instance.value()[0].index, 3);
  EXPECT_EQ(instance.value()[1].field, 1);
  EXPECT_EQ(instance.value()[1].index, 17);  // 10 + 7
}

TEST(RatingFeatureBuilderTest, FullLayout) {
  RatingFeatureConfig config;
  config.include_skill = true;
  config.include_difficulty = true;
  config.difficulty_buckets = 10;
  const auto builder = RatingFeatureBuilder::Create(10, 20, 5, config);
  ASSERT_TRUE(builder.ok());
  EXPECT_EQ(builder.value().num_fields(), 4);
  EXPECT_EQ(builder.value().num_features(), 10 + 20 + 5 + 10);
  const auto instance = builder.value().Build(0, 0, 3, 3.0);
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance.value().size(), 4u);
  EXPECT_EQ(instance.value()[2].field, 2);
  EXPECT_EQ(instance.value()[2].index, 30 + 2);  // skill level 3 -> offset 2
  EXPECT_EQ(instance.value()[3].field, 3);
  // Difficulty 3 on [1,5] -> unit 0.5 -> bucket 5.
  EXPECT_EQ(instance.value()[3].index, 35 + 5);
}

TEST(RatingFeatureBuilderTest, DifficultyClampingAndBucketEdges) {
  RatingFeatureConfig config;
  config.include_difficulty = true;
  config.difficulty_buckets = 4;
  const auto builder = RatingFeatureBuilder::Create(2, 2, 5, config);
  ASSERT_TRUE(builder.ok());
  const int base = 4;  // 2 users + 2 items
  const auto low = builder.value().Build(0, 0, 1, -10.0);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low.value()[2].index, base + 0);
  const auto high = builder.value().Build(0, 0, 1, 99.0);
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high.value()[2].index, base + 3);  // clamped to last bucket
}

TEST(RatingFeatureBuilderTest, ValidatesArguments) {
  const auto builder =
      RatingFeatureBuilder::Create(5, 5, 3, RatingFeatureConfig{});
  ASSERT_TRUE(builder.ok());
  EXPECT_FALSE(builder.value().Build(-1, 0, 1, 1.0).ok());
  EXPECT_FALSE(builder.value().Build(0, 5, 1, 1.0).ok());
  RatingFeatureConfig with_skill;
  with_skill.include_skill = true;
  const auto builder2 = RatingFeatureBuilder::Create(5, 5, 3, with_skill);
  ASSERT_TRUE(builder2.ok());
  EXPECT_FALSE(builder2.value().Build(0, 0, 0, 1.0).ok());
  EXPECT_FALSE(builder2.value().Build(0, 0, 4, 1.0).ok());
  EXPECT_FALSE(RatingFeatureBuilder::Create(0, 5, 3, RatingFeatureConfig{}).ok());
}

}  // namespace
}  // namespace ffm
}  // namespace upskill
