// Regression tests pinning the qualitative paper findings that the bench
// harness prints (Figs. 4-6, Tables II-V): if a generator or trainer
// change breaks a reproduced effect, these fail before anyone reads the
// bench output. Sizes are trimmed for test-suite speed; the benches run
// the full-scale versions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dominance.h"
#include "core/trainer.h"
#include "data/filter.h"
#include "datagen/beer.h"
#include "datagen/cooking.h"
#include "datagen/film.h"
#include "datagen/language.h"
#include "dist/gamma.h"

namespace upskill {
namespace {

TrainResult TrainOn(const Dataset& dataset, int num_levels) {
  SkillModelConfig config;
  config.num_levels = num_levels;
  config.min_init_actions = 50;
  config.max_iterations = 30;
  Trainer trainer(config);
  auto result = Trainer(config).Train(dataset);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(DomainReproductionTest, LanguageCorrectionsFallWithSkill) {
  datagen::LanguageConfig config;
  config.num_users = 2000;
  auto data = datagen::GenerateLanguage(config);
  ASSERT_TRUE(data.ok());
  const TrainResult trained = TrainOn(data.value().dataset, 3);
  const int f = data.value()
                    .dataset.schema()
                    .FeatureIndex("corrections_per_corrector")
                    .value();
  // Fig. 4b: the top level receives clearly fewer corrections than the
  // bottom level.
  const double low = trained.model.component(f, 1).Mean();
  const double high = trained.model.component(f, 3).Mean();
  EXPECT_GT(low, high * 1.3) << "low=" << low << " high=" << high;
}

TEST(DomainReproductionTest, LanguageRuleDominanceSplits) {
  datagen::LanguageConfig config;
  config.num_users = 2000;
  auto data = datagen::GenerateLanguage(config);
  ASSERT_TRUE(data.ok());
  const TrainResult trained = TrainOn(data.value().dataset, 3);
  const int f =
      data.value().dataset.schema().FeatureIndex("correction_rule").value();
  // Table II: capitalization tops the unskilled side, articles/brackets
  // the skilled side.
  const auto unskilled = TopDominantCategories(trained.model, f, 3, false);
  ASSERT_TRUE(unskilled.ok());
  EXPECT_EQ(unskilled.value()[0].label, "i -> I");
  const auto skilled = TopDominantCategories(trained.model, f, 3, true);
  ASSERT_TRUE(skilled.ok());
  EXPECT_EQ(skilled.value()[0].label, "eps -> the");
}

TEST(DomainReproductionTest, CookingNoviceResemblesMidLevel) {
  // Default (bench-scale) configuration: the planted novice violation
  // needs the full population balance to dominate the learned level 1.
  datagen::CookingConfig config;
  auto data = datagen::GenerateCooking(config);
  ASSERT_TRUE(data.ok());
  const TrainResult trained = TrainOn(data.value().dataset, 5);
  const int f =
      data.value().dataset.schema().FeatureIndex("num_steps").value();
  // Fig. 5: learned level 1 sits well above learned level 2 (the planted
  // novice violation), and levels 2..5 are monotone increasing.
  const double level1 = trained.model.component(f, 1).Mean();
  const double level2 = trained.model.component(f, 2).Mean();
  EXPECT_GT(level1, level2 * 1.2) << level1 << " vs " << level2;
  for (int s = 3; s <= 5; ++s) {
    EXPECT_GT(trained.model.component(f, s).Mean(),
              trained.model.component(f, s - 1).Mean())
        << "level " << s;
  }
}

TEST(DomainReproductionTest, BeerAbvRisesWithLevel) {
  datagen::BeerConfig config;
  config.num_users = 300;
  config.num_beers = 800;
  config.mean_sequence_length = 80.0;
  auto data = datagen::GenerateBeer(config);
  ASSERT_TRUE(data.ok());
  const TrainResult trained = TrainOn(data.value().dataset, 5);
  const int f = data.value().dataset.schema().FeatureIndex("abv").value();
  // Fig. 6: monotone ABV means, with a clear level-1 to level-5 gap.
  double previous = 0.0;
  for (int s = 1; s <= 5; ++s) {
    const double mean = trained.model.component(f, s).Mean();
    EXPECT_GT(mean, previous) << "level " << s;
    previous = mean;
  }
  EXPECT_GT(trained.model.component(f, 5).Mean(),
            trained.model.component(f, 1).Mean() + 1.5);
}

TEST(DomainReproductionTest, BeerStyleDominanceFlips) {
  datagen::BeerConfig config;
  config.num_users = 300;
  config.num_beers = 800;
  config.mean_sequence_length = 80.0;
  auto data = datagen::GenerateBeer(config);
  ASSERT_TRUE(data.ok());
  const TrainResult trained = TrainOn(data.value().dataset, 5);
  const int f = data.value().dataset.schema().FeatureIndex("style").value();
  // Table III: the unskilled side is all tier-1/2 styles; the skilled
  // side all tier-4/5.
  const auto tier_of = [](const std::string& label) {
    for (const datagen::BeerStyle& style : datagen::BeerStyles()) {
      if (label == style.name) return style.tier;
    }
    return 0;
  };
  const auto unskilled = TopDominantCategories(trained.model, f, 5, false);
  ASSERT_TRUE(unskilled.ok());
  for (const DominanceEntry& entry : unskilled.value()) {
    EXPECT_LE(tier_of(entry.label), 2) << entry.label;
  }
  const auto skilled = TopDominantCategories(trained.model, f, 5, true);
  ASSERT_TRUE(skilled.ok());
  for (const DominanceEntry& entry : skilled.value()) {
    EXPECT_GE(tier_of(entry.label), 4) << entry.label;
  }
}

TEST(DomainReproductionTest, FilmPreprocessingFlipsTopLevelEra) {
  datagen::FilmConfig config;
  config.num_users = 500;
  config.num_filler_movies = 700;
  config.mean_sequence_length = 50.0;
  auto data = datagen::GenerateFilm(config);
  ASSERT_TRUE(data.ok());

  const auto mean_top_level_year = [&](const Dataset& dataset) {
    const TrainResult trained = TrainOn(dataset, 5);
    const auto release =
        dataset.items().Metadata(datagen::kFilmReleaseTimeKey).value();
    const auto top = TopFrequentCategories(
        trained.model, dataset.schema().id_feature(), 5, 15);
    EXPECT_TRUE(top.ok());
    double total = 0.0;
    for (const DominanceEntry& entry : top.value()) {
      total += release[static_cast<size_t>(entry.category)] / 365.25;
    }
    return total / static_cast<double>(top.value().size());
  };

  // Table IV: without preprocessing, the top level is dominated by recent
  // releases.
  const double naive_year = mean_top_level_year(data.value().dataset);
  EXPECT_GT(naive_year, 2004.0) << naive_year;

  // Table V: after preprocessing, the top level is dominated by old
  // classics.
  const auto filtered =
      FilterOldItems(data.value().dataset, datagen::kFilmReleaseTimeKey);
  ASSERT_TRUE(filtered.ok());
  const double fixed_year = mean_top_level_year(filtered.value().dataset);
  EXPECT_LT(fixed_year, naive_year - 20.0) << fixed_year;
}

}  // namespace
}  // namespace upskill
