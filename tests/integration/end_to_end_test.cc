// End-to-end integration tests: generate -> filter -> train -> assign ->
// estimate difficulty -> evaluate, exercising the same pipeline the bench
// harnesses use.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "baselines/uniform_model.h"
#include "core/difficulty.h"
#include "core/inference.h"
#include "core/trainer.h"
#include "data/io.h"
#include "data/split.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace upskill {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig config;
    config.num_users = 300;
    config.num_items = 500;
    config.mean_sequence_length = 30.0;
    config.seed = 4321;
    auto data = datagen::GenerateSynthetic(config);
    ASSERT_TRUE(data.ok());
    data_ = std::make_unique<datagen::GeneratedData>(std::move(data).value());

    SkillModelConfig model_config;
    model_config.num_levels = 5;
    model_config.min_init_actions = 20;
    Trainer trainer(model_config);
    auto trained = trainer.Train(data_->dataset);
    ASSERT_TRUE(trained.ok());
    trained_ = std::make_unique<TrainResult>(std::move(trained).value());
  }

  std::vector<double> FlattenTruth() const {
    std::vector<double> truth;
    for (const auto& seq : data_->truth.skill) {
      for (int level : seq) truth.push_back(level);
    }
    return truth;
  }

  std::vector<double> FlattenEstimates() const {
    std::vector<double> estimates;
    for (const auto& seq : trained_->assignments) {
      for (int level : seq) estimates.push_back(level);
    }
    return estimates;
  }

  std::unique_ptr<datagen::GeneratedData> data_;
  std::unique_ptr<TrainResult> trained_;
};

TEST_F(EndToEndTest, MultiFacetedBeatsUniformBaselineOnSkill) {
  const std::vector<double> truth = FlattenTruth();
  const std::vector<double> multi = FlattenEstimates();

  SkillModelConfig config;
  config.num_levels = 5;
  const auto uniform = TrainUniformBaseline(data_->dataset, config);
  ASSERT_TRUE(uniform.ok());
  std::vector<double> uniform_flat;
  for (const auto& seq : uniform.value().assignments) {
    for (int level : seq) uniform_flat.push_back(level);
  }

  const double r_multi = eval::PearsonCorrelation(multi, truth);
  const double r_uniform = eval::PearsonCorrelation(uniform_flat, truth);
  EXPECT_GT(r_multi, r_uniform) << "multi=" << r_multi
                                << " uniform=" << r_uniform;
}

TEST_F(EndToEndTest, GenerationDifficultyTracksGroundTruth) {
  const auto difficulty = EstimateDifficultyByGeneration(
      data_->dataset.items(), trained_->model, DifficultyPrior::kEmpirical,
      trained_->assignments);
  ASSERT_TRUE(difficulty.ok());
  const auto report = eval::ComputeCorrelationReport(difficulty.value(),
                                                     data_->truth.difficulty);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().pearson, 0.6);
  EXPECT_LT(report.value().rmse, 1.5);
}

TEST_F(EndToEndTest, GenerationHandlesUnseenItemsAssignmentCannot) {
  // A sparse dataset (few users, many items) guarantees never-selected
  // items — the case Section V-B motivates the generation estimator with.
  datagen::SyntheticConfig sparse_config;
  sparse_config.num_users = 25;
  sparse_config.num_items = 1000;
  sparse_config.mean_sequence_length = 20.0;
  sparse_config.seed = 777;
  auto sparse = datagen::GenerateSynthetic(sparse_config);
  ASSERT_TRUE(sparse.ok());

  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 15;
  config.max_iterations = 10;
  Trainer trainer(config);
  const auto trained = trainer.Train(sparse.value().dataset);
  ASSERT_TRUE(trained.ok());

  const std::vector<double> assignment_difficulty =
      EstimateDifficultyByAssignment(sparse.value().dataset,
                                     trained.value().assignments);
  const auto generation_difficulty = EstimateDifficultyByGeneration(
      sparse.value().dataset.items(), trained.value().model,
      DifficultyPrior::kEmpirical, trained.value().assignments);
  ASSERT_TRUE(generation_difficulty.ok());

  int unseen = 0;
  for (ItemId i = 0; i < sparse.value().dataset.items().num_items(); ++i) {
    if (std::isnan(assignment_difficulty[static_cast<size_t>(i)])) {
      ++unseen;
      // The generation-based estimator still produces an on-scale value.
      const double d = generation_difficulty.value()[static_cast<size_t>(i)];
      EXPECT_GE(d, 1.0);
      EXPECT_LE(d, 5.0);
    }
  }
  EXPECT_GT(unseen, 0) << "test needs some never-selected items";
}

TEST_F(EndToEndTest, ModelSurvivesSaveLoadWithIdenticalAssignments) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("upskill_e2e_model_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ASSERT_TRUE(trained_->model.Save(path).ok());
  const auto loaded = SkillModel::Load(path, data_->dataset.schema(),
                                       trained_->model.config());
  ASSERT_TRUE(loaded.ok());
  double ll_original = 0.0;
  double ll_loaded = 0.0;
  const SkillAssignments a = AssignSkills(data_->dataset, trained_->model,
                                          nullptr, {}, &ll_original);
  const SkillAssignments b = AssignSkills(data_->dataset, loaded.value(),
                                          nullptr, {}, &ll_loaded);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(ll_original, ll_loaded, 1e-9);
  std::filesystem::remove(path);
}

TEST_F(EndToEndTest, DatasetSurvivesSaveLoadWithIdenticalTraining) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("upskill_e2e_data_" + std::to_string(::getpid())))
          .string();
  ASSERT_TRUE(SaveDataset(data_->dataset, dir).ok());
  const auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());

  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 20;
  config.max_iterations = 5;
  Trainer trainer(config);
  const auto original = trainer.Train(data_->dataset);
  const auto reloaded = trainer.Train(loaded.value());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(original.value().assignments, reloaded.value().assignments);
  EXPECT_NEAR(original.value().final_log_likelihood,
              reloaded.value().final_log_likelihood, 1e-9);
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEndTest, NearestActionInferenceSupportsColdStartTimes) {
  // Inference works for times far outside the observed range.
  const UserId u = 0;
  const auto& seq = data_->dataset.sequence(u);
  ASSERT_FALSE(seq.empty());
  const auto& levels = trained_->assignments[0];
  EXPECT_EQ(NearestActionLevel(seq, levels, -1000000), levels.front());
  EXPECT_EQ(NearestActionLevel(seq, levels, 1000000), levels.back());
}

}  // namespace
}  // namespace upskill
