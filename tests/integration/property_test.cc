// Randomized cross-module property tests: for a sweep of random dataset
// shapes, the whole pipeline must uphold its invariants — no special
// cases, no crashes, conservation laws intact.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/csv.h"
#include "common/rng.h"
#include "core/difficulty.h"
#include "core/posterior.h"
#include "core/trainer.h"
#include "data/filter.h"
#include "data/split.h"
#include "datagen/synthetic.h"

namespace upskill {
namespace {

struct Shape {
  int num_users;
  int num_items;
  int num_levels;
  double mean_length;
  uint64_t seed;
};

class PipelinePropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(PipelinePropertyTest, InvariantsHoldOnRandomShapes) {
  const Shape shape = GetParam();
  datagen::SyntheticConfig gen;
  gen.num_users = shape.num_users;
  gen.num_levels = shape.num_levels;
  gen.num_items =
      (shape.num_items / shape.num_levels) * shape.num_levels;  // divisible
  gen.mean_sequence_length = shape.mean_length;
  gen.seed = shape.seed;
  auto data = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  const Dataset& dataset = data.value().dataset;

  // --- Generation invariants. ---------------------------------------
  ASSERT_EQ(dataset.num_users(), gen.num_users);
  ASSERT_TRUE(AssignmentsAreMonotone(data.value().truth.skill,
                                     gen.num_levels));
  for (double d : data.value().truth.difficulty) {
    ASSERT_GE(d, 1.0);
    ASSERT_LE(d, static_cast<double>(gen.num_levels));
  }

  // --- Training invariants. ------------------------------------------
  SkillModelConfig config;
  config.num_levels = gen.num_levels;
  config.min_init_actions =
      std::max(2, static_cast<int>(shape.mean_length / 2));
  config.max_iterations = 15;
  Trainer trainer(config);
  const auto trained = trainer.Train(dataset);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_TRUE(AssignmentsAreMonotone(trained.value().assignments,
                                     gen.num_levels));
  const auto& trace = trained.value().log_likelihood_trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-6 * std::abs(trace[i - 1]));
  }

  // --- Difficulty invariants. ----------------------------------------
  const auto difficulty = EstimateDifficultyByGeneration(
      dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
      trained.value().assignments);
  ASSERT_TRUE(difficulty.ok());
  for (double d : difficulty.value()) {
    EXPECT_GE(d, 1.0 - 1e-9);
    EXPECT_LE(d, static_cast<double>(gen.num_levels) + 1e-9);
  }
  const std::vector<double> by_assignment =
      EstimateDifficultyByAssignment(dataset, trained.value().assignments);
  for (double d : by_assignment) {
    if (!std::isnan(d)) {
      EXPECT_GE(d, 1.0);
      EXPECT_LE(d, static_cast<double>(gen.num_levels));
    }
  }

  // --- Split conservation. ---------------------------------------------
  Rng rng(shape.seed ^ 0xabcdef);
  const auto holdout = MakeHoldoutSplit(dataset, HoldoutPosition::kRandom,
                                        rng);
  ASSERT_TRUE(holdout.ok());
  EXPECT_EQ(holdout.value().train.num_actions() + holdout.value().test.size(),
            dataset.num_actions());
  const auto random_split = SplitActionsRandomly(dataset, 0.2, rng);
  ASSERT_TRUE(random_split.ok());
  EXPECT_EQ(random_split.value().train.num_actions() +
                random_split.value().test.size(),
            dataset.num_actions());

  // --- Filter identity. -------------------------------------------------
  const auto identity = FilterByActivity(dataset, 0, 0);
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value().dataset.num_actions(), dataset.num_actions());
  EXPECT_EQ(identity.value().dataset.num_users(), dataset.num_users());

  // --- Posterior sanity for one user. ------------------------------------
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (dataset.sequence(u).empty()) continue;
    const auto posterior = ComputeSequencePosterior(
        dataset.items(), dataset.sequence(u), trained.value().model,
        UninformativeTransitions(gen.num_levels));
    ASSERT_TRUE(posterior.ok());
    for (size_t t = 0; t < dataset.sequence(u).size(); ++t) {
      double total = 0.0;
      for (int s = 1; s <= gen.num_levels; ++s) {
        total += posterior.value().Probability(t, s);
      }
      EXPECT_NEAR(total, 1.0, 1e-6);
    }
    break;  // one user suffices per shape
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelinePropertyTest,
    ::testing::Values(Shape{10, 20, 2, 5.0, 1}, Shape{30, 50, 3, 12.0, 2},
                      Shape{60, 60, 5, 25.0, 3}, Shape{15, 100, 4, 8.0, 4},
                      Shape{100, 30, 6, 18.0, 5}, Shape{5, 10, 5, 3.0, 6},
                      Shape{40, 200, 5, 40.0, 7}));

TEST(CsvFuzzTest, ParserNeverCrashesOnRandomBytes) {
  Rng rng(0xfeed);
  const char alphabet[] = "ab,\"\\\n\r\t 0;|'";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line;
    const int length = static_cast<int>(rng.NextInt(40));
    for (int i = 0; i < length; ++i) {
      line += alphabet[rng.NextInt(static_cast<int64_t>(sizeof(alphabet) - 1))];
    }
    // Must return either a parse or an error — never crash or hang.
    const auto parsed = ParseCsvLine(line);
    if (parsed.ok()) {
      // Round-trip: formatting the parsed fields must re-parse to the
      // same fields.
      const auto reparsed = ParseCsvLine(FormatCsvLine(parsed.value()));
      ASSERT_TRUE(reparsed.ok());
      EXPECT_EQ(reparsed.value(), parsed.value());
    }
  }
}

TEST(TrainerDeterminismTest, IdenticalRunsProduceIdenticalResults) {
  datagen::SyntheticConfig gen;
  gen.num_users = 50;
  gen.num_items = 100;
  gen.mean_sequence_length = 15.0;
  const auto data_a = datagen::GenerateSynthetic(gen);
  const auto data_b = datagen::GenerateSynthetic(gen);
  ASSERT_TRUE(data_a.ok());
  ASSERT_TRUE(data_b.ok());
  SkillModelConfig config;
  config.num_levels = 5;
  config.min_init_actions = 10;
  const auto a = Trainer(config).Train(data_a.value().dataset);
  const auto b = Trainer(config).Train(data_b.value().dataset);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignments, b.value().assignments);
  EXPECT_EQ(a.value().log_likelihood_trace, b.value().log_likelihood_trace);
  for (int f = 0; f < a.value().model.num_features(); ++f) {
    for (int s = 1; s <= 5; ++s) {
      EXPECT_EQ(a.value().model.component(f, s).Parameters(),
                b.value().model.component(f, s).Parameters());
    }
  }
}

}  // namespace
}  // namespace upskill
