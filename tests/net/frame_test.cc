// Binary frame codec: request/response round trips for every opcode,
// incremental decoding (kNeedMore on every strict prefix), and malformed
// streams (bad magic, oversized length, bad opcode, payload mismatch).

#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace upskill {
namespace net {
namespace {

using Kind = serve::ServeRequest::Kind;

serve::ServeRequest MakeObserve() {
  serve::ServeRequest request;
  request.kind = Kind::kObserve;
  request.user = "alice";
  request.item = 42;
  request.has_time = true;
  request.time = -1234567890123LL;
  return request;
}

TEST(FrameTest, ObserveRequestRoundTrip) {
  std::string wire;
  EncodeRequest(MakeObserve(), &wire);
  ASSERT_GE(wire.size(), kFrameHeaderBytes);
  EXPECT_EQ(static_cast<uint8_t>(wire[0]), kRequestMagic);

  DecodedRequest decoded;
  std::string error;
  ASSERT_EQ(DecodeRequest(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                          &decoded, &error),
            DecodeStatus::kFrame)
      << error;
  EXPECT_EQ(decoded.frame_bytes, wire.size());
  EXPECT_EQ(decoded.request.kind, Kind::kObserve);
  EXPECT_EQ(decoded.request.user, "alice");
  EXPECT_EQ(decoded.request.item, 42);
  EXPECT_TRUE(decoded.request.has_time);
  EXPECT_EQ(decoded.request.time, -1234567890123LL);
}

TEST(FrameTest, EveryRequestKindRoundTrips) {
  std::vector<serve::ServeRequest> requests;
  requests.push_back(MakeObserve());
  {
    serve::ServeRequest r;
    r.kind = Kind::kLevel;
    r.user = "bob";
    requests.push_back(r);
  }
  {
    serve::ServeRequest r;
    r.kind = Kind::kRecommend;
    r.user = "carol";
    r.top_k = 7;
    r.stretch = 1.25;
    requests.push_back(r);
  }
  {
    serve::ServeRequest r;
    r.kind = Kind::kDifficulty;
    r.item = 99;
    requests.push_back(r);
  }
  {
    serve::ServeRequest r;
    r.kind = Kind::kSwap;
    r.path = "/tmp/some model.snap";
    requests.push_back(r);
  }
  {
    serve::ServeRequest r;
    r.kind = Kind::kEvict;
    r.time = 777;
    requests.push_back(r);
  }
  for (const Kind kind : {Kind::kStats, Kind::kReset, Kind::kQuit}) {
    serve::ServeRequest r;
    r.kind = kind;
    requests.push_back(r);
  }

  // Concatenate all frames into one stream and decode them back in order,
  // the way a pipelining server sees them.
  std::string wire;
  for (const auto& request : requests) EncodeRequest(request, &wire);
  size_t offset = 0;
  for (const auto& expected : requests) {
    DecodedRequest decoded;
    std::string error;
    ASSERT_EQ(DecodeRequest(wire.data() + offset, wire.size() - offset,
                            kDefaultMaxPayloadBytes, &decoded, &error),
              DecodeStatus::kFrame)
        << error;
    offset += decoded.frame_bytes;
    EXPECT_EQ(decoded.request.kind, expected.kind);
    EXPECT_EQ(decoded.request.user, expected.user);
    EXPECT_EQ(decoded.request.item, expected.item);
    EXPECT_EQ(decoded.request.path, expected.path);
    EXPECT_EQ(decoded.request.top_k, expected.top_k);
    EXPECT_DOUBLE_EQ(decoded.request.stretch, expected.stretch);
  }
  EXPECT_EQ(offset, wire.size());
}

TEST(FrameTest, EveryPrefixNeedsMore) {
  std::string wire;
  EncodeRequest(MakeObserve(), &wire);
  for (size_t n = 0; n < wire.size(); ++n) {
    DecodedRequest decoded;
    std::string error;
    EXPECT_EQ(DecodeRequest(wire.data(), n, kDefaultMaxPayloadBytes,
                            &decoded, &error),
              DecodeStatus::kNeedMore)
        << "prefix " << n;
  }
}

TEST(FrameTest, BadMagicIsError) {
  std::string wire = "observe alice 1 2\n";  // text bytes are not a frame
  DecodedRequest decoded;
  std::string error;
  EXPECT_EQ(DecodeRequest(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                          &decoded, &error),
            DecodeStatus::kError);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(FrameTest, OversizedPayloadIsErrorNotNeedMore) {
  std::string wire;
  EncodeRequest(MakeObserve(), &wire);
  // Rewrite the length field to announce more than the limit: must be
  // rejected immediately, even though the bytes never arrive.
  const uint32_t huge = 1u << 30;
  wire[2] = static_cast<char>(huge & 0xFF);
  wire[3] = static_cast<char>((huge >> 8) & 0xFF);
  wire[4] = static_cast<char>((huge >> 16) & 0xFF);
  wire[5] = static_cast<char>((huge >> 24) & 0xFF);
  DecodedRequest decoded;
  std::string error;
  EXPECT_EQ(DecodeRequest(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                          &decoded, &error),
            DecodeStatus::kError);
}

TEST(FrameTest, BadOpcodeIsError) {
  std::string wire;
  EncodeRequest(MakeObserve(), &wire);
  wire[1] = static_cast<char>(200);  // not a ServeRequest::Kind
  DecodedRequest decoded;
  std::string error;
  EXPECT_EQ(DecodeRequest(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                          &decoded, &error),
            DecodeStatus::kError);
}

TEST(FrameTest, TrailingPayloadBytesAreError) {
  serve::ServeRequest request;
  request.kind = Kind::kDifficulty;
  request.item = 3;
  std::string wire;
  EncodeRequest(request, &wire);
  // Grow the payload by one byte and patch the length to match: the
  // difficulty payload is fixed-size, so the extra byte is a protocol
  // error, not padding.
  wire.push_back('\0');
  const uint32_t payload = static_cast<uint32_t>(wire.size()) -
                           static_cast<uint32_t>(kFrameHeaderBytes);
  wire[2] = static_cast<char>(payload & 0xFF);
  wire[3] = static_cast<char>((payload >> 8) & 0xFF);
  wire[4] = static_cast<char>((payload >> 16) & 0xFF);
  wire[5] = static_cast<char>((payload >> 24) & 0xFF);
  DecodedRequest decoded;
  std::string error;
  EXPECT_EQ(DecodeRequest(wire.data(), wire.size(), kDefaultMaxPayloadBytes,
                          &decoded, &error),
            DecodeStatus::kError);
}

TEST(FrameTest, LevelResponseRoundTrip) {
  serve::SessionLevel level;
  level.level = 3;
  level.actions = 12345678901234ULL;
  std::string wire;
  EncodeLevelResponse(level, &wire);
  EXPECT_EQ(static_cast<uint8_t>(wire[0]), kResponseMagic);

  DecodedResponse decoded;
  std::string error;
  ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kObserve,
                           kDefaultMaxPayloadBytes, &decoded, &error),
            DecodeStatus::kFrame)
      << error;
  EXPECT_EQ(decoded.status_code, StatusCode::kOk);
  EXPECT_EQ(decoded.level, 3);
  EXPECT_EQ(decoded.actions, 12345678901234ULL);
  EXPECT_EQ(RenderResponseAsText(decoded, Kind::kObserve),
            "ok level=3 actions=12345678901234");
}

TEST(FrameTest, RecommendResponseRoundTrip) {
  std::vector<UpskillRecommendation> picks(2);
  picks[0].item = 7;
  picks[0].difficulty = 1.5;
  picks[0].log_prob = -2.25;
  picks[1].item = 9;
  picks[1].difficulty = 2.5;
  picks[1].log_prob = -3.5;
  std::string wire;
  EncodeRecommendResponse(picks, &wire);

  DecodedResponse decoded;
  std::string error;
  ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kRecommend,
                           kDefaultMaxPayloadBytes, &decoded, &error),
            DecodeStatus::kFrame)
      << error;
  ASSERT_EQ(decoded.picks.size(), 2u);
  EXPECT_EQ(decoded.picks[0].item, 7);
  EXPECT_DOUBLE_EQ(decoded.picks[0].difficulty, 1.5);
  EXPECT_DOUBLE_EQ(decoded.picks[1].log_prob, -3.5);
  EXPECT_EQ(RenderResponseAsText(decoded, Kind::kRecommend),
            "ok n=2 7:1.5:-2.25 9:2.5:-3.5");
}

TEST(FrameTest, RecommendResponseHugeCountRejectedBeforeAllocating) {
  // A malicious/corrupt peer announcing n=0xFFFFFFFF with no entry bytes
  // behind it must decode as malformed, not allocate ~100 GB of picks.
  std::string wire;
  wire.push_back(static_cast<char>(kResponseMagic));
  wire.push_back('\0');  // StatusCode::kOk
  const uint32_t payload_len = sizeof(uint32_t);
  wire.append(reinterpret_cast<const char*>(&payload_len),
              sizeof(payload_len));
  const uint32_t n = 0xFFFFFFFFu;
  wire.append(reinterpret_cast<const char*>(&n), sizeof(n));

  DecodedResponse decoded;
  std::string error;
  EXPECT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kRecommend,
                           kDefaultMaxPayloadBytes, &decoded, &error),
            DecodeStatus::kError);
  EXPECT_EQ(error, "truncated recommend response");
}

TEST(FrameTest, ErrorResponseRoundTrip) {
  std::string wire;
  EncodeErrorResponse(Status::Unavailable("shed deadline=0.001000s"), &wire);
  DecodedResponse decoded;
  std::string error;
  ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kObserve,
                           kDefaultMaxPayloadBytes, &decoded, &error),
            DecodeStatus::kFrame)
      << error;
  EXPECT_EQ(decoded.status_code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message, "shed deadline=0.001000s");
  EXPECT_EQ(RenderResponseAsText(decoded, Kind::kObserve),
            "ERR Unavailable shed deadline=0.001000s");
}

TEST(FrameTest, StatsAndAdminResponsesRoundTrip) {
  {
    std::string wire;
    EncodeTextResponse("ok sessions=1\nline2", &wire);
    DecodedResponse decoded;
    std::string error;
    ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kStats,
                             kDefaultMaxPayloadBytes, &decoded, &error),
              DecodeStatus::kFrame);
    EXPECT_EQ(decoded.text, "ok sessions=1\nline2");
    EXPECT_EQ(RenderResponseAsText(decoded, Kind::kStats),
              "ok sessions=1\nline2");
  }
  {
    std::string wire;
    EncodeSwapResponse(4, 1000, &wire);
    DecodedResponse decoded;
    std::string error;
    ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kSwap,
                             kDefaultMaxPayloadBytes, &decoded, &error),
              DecodeStatus::kFrame);
    EXPECT_EQ(RenderResponseAsText(decoded, Kind::kSwap),
              "ok swapped levels=4 items=1000");
  }
  {
    std::string wire;
    EncodeEvictResponse(5, 12, &wire);
    DecodedResponse decoded;
    std::string error;
    ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kEvict,
                             kDefaultMaxPayloadBytes, &decoded, &error),
              DecodeStatus::kFrame);
    EXPECT_EQ(RenderResponseAsText(decoded, Kind::kEvict),
              "ok evicted=5 sessions=12");
  }
  {
    std::string wire;
    EncodeEmptyResponse(&wire);
    DecodedResponse decoded;
    std::string error;
    ASSERT_EQ(DecodeResponse(wire.data(), wire.size(), Kind::kReset,
                             kDefaultMaxPayloadBytes, &decoded, &error),
              DecodeStatus::kFrame);
    EXPECT_EQ(RenderResponseAsText(decoded, Kind::kReset), "ok reset");
    EXPECT_EQ(RenderResponseAsText(decoded, Kind::kQuit), "ok bye");
  }
}

}  // namespace
}  // namespace net
}  // namespace upskill
