// The admin plane over a real TCP socket: /metrics, /healthz, /statusz,
// and /tracez all answer well-formed HTTP/1.1 with Content-Length and
// Connection: close, 404/405 behave, HEAD omits the body, and the
// /metrics payload is the same Prometheus exposition `stats` embeds
// (model-health gauges sampled at scrape time included).

#include "net/http_admin.h"

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"

namespace upskill {
namespace net {
namespace {

// Minimal blocking HTTP client: one request, read to EOF (the server
// always closes after the response drains).
std::string HttpRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port,
                     "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t blank = response.find("\r\n\r\n");
  EXPECT_NE(blank, std::string::npos) << response;
  return blank == std::string::npos ? "" : response.substr(blank + 4);
}

class HttpAdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 40;
    data_config.num_items = 80;
    data_config.mean_sequence_length = 20.0;
    data_config.seed = 321;
    auto data = datagen::GenerateSynthetic(data_config);
    ASSERT_TRUE(data.ok());
    dataset_ = std::make_unique<Dataset>(std::move(data).value().dataset);

    SkillModelConfig config;
    config.num_levels = 4;
    config.min_init_actions = 10;
    config.max_iterations = 5;
    auto trained = Trainer(config).Train(*dataset_);
    ASSERT_TRUE(trained.ok());
    const SkillAssignments assignments =
        AssignSkills(*dataset_, trained.value().model);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset_->items(), trained.value().model, DifficultyPrior::kEmpirical,
        assignments);
    ASSERT_TRUE(difficulty.ok());
    path_ = (std::filesystem::temp_directory_path() /
             ("upskill_http_" + std::to_string(::getpid()) + ".snap"))
                .string();
    auto snapshot = serve::MakeSnapshot(trained.value().model,
                                        dataset_->items(), difficulty.value());
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(serve::SaveSnapshot(snapshot.value(), path_).ok());
    auto serving = serve::ServingModel::FromSnapshotFile(path_);
    ASSERT_TRUE(serving.ok()) << serving.status().ToString();
    serving_ = serving.value();
  }

  void TearDown() override { std::filesystem::remove(path_); }

  // Drives a few requests through the server so every scrape target has
  // data: sessions, latency histograms, a recommend, an error.
  void DriveTraffic(serve::Server* server) {
    for (const char* line :
         {"observe admin_user 5 100", "observe admin_user 9 200",
          "level admin_user", "recommend admin_user 5",
          "difficulty 1000000"}) {
      const auto request = serve::ParseServeRequest(line);
      ASSERT_TRUE(request.ok());
      server->Execute(request.value());
    }
  }

  std::unique_ptr<Dataset> dataset_;
  std::string path_;
  std::shared_ptr<const serve::ServingModel> serving_;
};

TEST_F(HttpAdminTest, AllFourEndpointsAnswerOverRealTcp) {
  serve::Server server(serving_);
  obs::FlightRecorderOptions recorder_options;
  obs::FlightRecorder recorder(recorder_options);
  server.SetFlightRecorder(&recorder);
  DriveTraffic(&server);

  HttpAdminConfig config;  // 127.0.0.1, ephemeral port
  HttpAdminServer admin(config);
  InstallAdminEndpoints(&admin, &server, &recorder);
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_NE(admin.port(), 0);

  // /healthz: trivially alive.
  const std::string healthz = HttpGet(admin.port(), "/healthz");
  EXPECT_EQ(healthz.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << healthz;
  EXPECT_NE(healthz.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(BodyOf(healthz), "ok\n");

  // /metrics: Prometheus exposition with model-health sampled in.
  const std::string metrics = HttpGet(admin.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string metrics_body = BodyOf(metrics);
  EXPECT_NE(metrics_body.find("# TYPE upskill_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics_body.find("upskill_model_session_level_count{level=\"0\"}"),
            std::string::npos)
      << metrics_body.substr(0, 2000);
  EXPECT_NE(metrics_body.find("upskill_model_snapshot_age_seconds"),
            std::string::npos);
  EXPECT_EQ(metrics_body.rfind("# EOF\n"), metrics_body.size() - 6);
  // Content-Length is honest: body size matches the header.
  const std::string marker = "Content-Length: ";
  const size_t cl_pos = metrics.find(marker);
  ASSERT_NE(cl_pos, std::string::npos);
  EXPECT_EQ(static_cast<size_t>(std::stoul(metrics.substr(
                cl_pos + marker.size()))),
            metrics_body.size());

  // /statusz: the operator page names the load-bearing facts.
  const std::string statusz_body = BodyOf(HttpGet(admin.port(), "/statusz"));
  EXPECT_NE(statusz_body.find("snapshot_version:"), std::string::npos);
  EXPECT_NE(statusz_body.find("snapshot_age_seconds:"), std::string::npos);
  EXPECT_NE(statusz_body.find("sessions: 1"), std::string::npos)
      << statusz_body;
  EXPECT_NE(statusz_body.find("trace_dropped:"), std::string::npos);
  EXPECT_NE(statusz_body.find("flight_recorder:"), std::string::npos);
  EXPECT_NE(statusz_body.find("p99="), std::string::npos) << statusz_body;

  // /tracez: Chrome-trace JSON with the driven requests in it.
  const std::string tracez = HttpGet(admin.port(), "/tracez");
  EXPECT_NE(tracez.find("Content-Type: application/json"), std::string::npos);
  const std::string tracez_body = BodyOf(tracez);
  EXPECT_EQ(tracez_body.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(tracez_body.find("\"name\":\"serve/observe\""), std::string::npos);
  EXPECT_NE(tracez_body.find("\"name\":\"serve/recommend\""),
            std::string::npos);
  // The difficulty request failed (out of range): flagged in the dump.
  EXPECT_NE(tracez_body.find("\"error\":true"), std::string::npos);

  admin.Stop();
}

TEST_F(HttpAdminTest, UnknownPathMethodAndHeadSemantics) {
  serve::Server server(serving_);
  HttpAdminConfig config;
  HttpAdminServer admin(config);
  InstallAdminEndpoints(&admin, &server, nullptr);
  ASSERT_TRUE(admin.Start().ok());

  const std::string missing = HttpGet(admin.port(), "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u) << missing;
  // The 404 body lists what does exist, so curl typos self-diagnose.
  EXPECT_NE(BodyOf(missing).find("/metrics"), std::string::npos);

  const std::string post = HttpRequest(
      admin.port(), "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0), 0u) << post;

  const std::string head = HttpRequest(
      admin.port(), "HEAD /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_EQ(head.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_EQ(BodyOf(head), "");  // headers only
  EXPECT_NE(head.find("Content-Length: 3\r\n"), std::string::npos) << head;

  // Query strings are stripped before path matching.
  const std::string with_query = HttpGet(admin.port(), "/healthz?verbose=1");
  EXPECT_EQ(with_query.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);

  // /tracez with no flight recorder attached: valid empty trace.
  EXPECT_EQ(BodyOf(HttpGet(admin.port(), "/tracez")),
            "{\"traceEvents\":[]}\n");
  admin.Stop();
  admin.Stop();  // idempotent
}

TEST_F(HttpAdminTest, ConcurrentScrapersAllGetCompleteResponses) {
  serve::Server server(serving_);
  obs::FlightRecorder recorder;
  server.SetFlightRecorder(&recorder);
  DriveTraffic(&server);

  HttpAdminConfig config;
  HttpAdminServer admin(config);
  InstallAdminEndpoints(&admin, &server, &recorder);
  ASSERT_TRUE(admin.Start().ok());

  constexpr int kScrapers = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  const char* paths[] = {"/metrics", "/healthz", "/statusz", "/tracez"};
  for (int t = 0; t < kScrapers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        const std::string response =
            HttpGet(admin.port(), paths[(t + i) % 4]);
        if (response.rfind("HTTP/1.1 200 OK\r\n", 0) != 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  admin.Stop();
}

TEST(ParseHostPortTest, AcceptsTheListenGrammar) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:9100", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9100);
  ASSERT_TRUE(ParseHostPort(":9100", &host, &port).ok());
  EXPECT_EQ(host, "0.0.0.0");
  ASSERT_TRUE(ParseHostPort("localhost:0", &host, &port).ok());
  EXPECT_EQ(port, 0);
  EXPECT_FALSE(ParseHostPort("nocolon", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:notaport", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:99999", &host, &port).ok());
}

}  // namespace
}  // namespace net
}  // namespace upskill
