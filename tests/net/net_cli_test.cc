// End-to-end network serving through the real binary: generate -> train
// -> snapshot -> `upskill_cli serve --listen` on an ephemeral port, then
// drive both protocols with `upskill_cli client` over a real TCP socket,
// including a mid-session snapshot swap. The server's lifetime is owned
// through its stdin pipe (EOF stops it), and the actual port is parsed
// from its "listening on host:port" stderr line.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace upskill {
namespace {

class NetCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("upskill_net_cli_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    if (server_ != nullptr) {
      std::fputs("shutdown\n", server_);
      pclose(server_);
      server_ = nullptr;
    }
    std::filesystem::remove_all(dir_);
  }

  void Run(const std::string& argv_tail) {
    const std::string log = dir_ + "/cmd.log";
    const std::string command = std::string(UPSKILL_CLI_PATH) + " " +
                                argv_tail + " > " + log + " 2>&1";
    const int status = std::system(command.c_str());
    ASSERT_EQ(status, 0) << command << "\n" << Slurp(log);
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static std::vector<std::string> Lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(text);
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  /// Starts `serve --listen 127.0.0.1:0` with its stdin on our pipe and
  /// returns the port it actually bound (0 on failure).
  int StartServer(const std::string& extra_flags) {
    const std::string log = dir_ + "/serve.log";
    const std::string command = std::string(UPSKILL_CLI_PATH) + " serve " +
                                dir_ + "/model.snap --listen 127.0.0.1:0 " +
                                extra_flags + " 2> " + log;
    server_ = popen(command.c_str(), "w");
    if (server_ == nullptr) return 0;
    // The "listening on ..." line is flushed before the server blocks on
    // stdin; poll for it (training the model took far longer than this).
    for (int attempt = 0; attempt < 200; ++attempt) {
      const std::string text = Slurp(log);
      const size_t mark = text.find("listening on 127.0.0.1:");
      if (mark != std::string::npos) {
        return std::atoi(text.c_str() + mark + 23);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return 0;
  }

  /// Runs `client` with the given request lines on stdin; returns its
  /// stdout lines.
  std::vector<std::string> RunClient(int port, const std::string& flags,
                                     const std::string& requests) {
    const std::string in_path = dir_ + "/requests.txt";
    const std::string out_path = dir_ + "/responses.txt";
    std::ofstream(in_path) << requests;
    const std::string command = std::string(UPSKILL_CLI_PATH) +
                                " client 127.0.0.1:" + std::to_string(port) +
                                " " + flags + " < " + in_path + " > " +
                                out_path + " 2> " + dir_ + "/client.log";
    EXPECT_EQ(std::system(command.c_str()), 0)
        << command << "\n"
        << Slurp(dir_ + "/client.log");
    return Lines(Slurp(out_path));
  }

  std::string dir_;
  std::FILE* server_ = nullptr;
};

TEST_F(NetCliTest, TcpRoundTripBothProtocolsWithMidSessionSwap) {
  Run("generate synthetic " + dir_ + "/data --users 30 --seed 5");
  Run("train " + dir_ + "/data " + dir_ + "/model.csv --levels 4");
  Run("snapshot " + dir_ + "/data " + dir_ + "/model.csv " + dir_ +
      "/model.snap --levels 4");
  // A second snapshot with a different S for the mid-session swap.
  Run("train " + dir_ + "/data " + dir_ + "/model3.csv --levels 3");
  Run("snapshot " + dir_ + "/data " + dir_ + "/model3.csv " + dir_ +
      "/model3.snap --levels 3");

  const int port = StartServer("--net-workers 2");
  ASSERT_GT(port, 0) << Slurp(dir_ + "/serve.log");

  // Text protocol over the real socket.
  const std::vector<std::string> text = RunClient(
      port, "",
      "observe cli_user 3 100\nobserve cli_user 7 200\nlevel cli_user\n");
  ASSERT_EQ(text.size(), 3u);
  EXPECT_EQ(text[0].rfind("ok level=", 0), 0u) << text[0];
  EXPECT_NE(text[1].find("actions=2"), std::string::npos) << text[1];
  EXPECT_EQ(text[2], text[1]);  // level echoes the last observe

  // Binary protocol: same session (server-side state), then a
  // mid-session swap to the S=3 snapshot, which resets sessions.
  const std::vector<std::string> binary = RunClient(
      port, "--binary",
      "level cli_user\n"
      "recommend cli_user 3\n"
      "swap " + dir_ + "/model3.snap\n"
      "level cli_user\n"
      "observe cli_user 3 300\n");
  ASSERT_EQ(binary.size(), 5u);
  EXPECT_EQ(binary[0], text[2]);  // binary sees the text session's state
  EXPECT_EQ(binary[1].rfind("ok n=3 ", 0), 0u) << binary[1];
  EXPECT_EQ(binary[2].rfind("ok swapped levels=3 ", 0), 0u) << binary[2];
  EXPECT_EQ(binary[3].rfind("ERR NotFound", 0), 0u)
      << "session should reset on S change: " << binary[3];
  EXPECT_NE(binary[4].find("actions=1"), std::string::npos) << binary[4];

  // stats carries the net metrics over the wire.
  const std::vector<std::string> stats = RunClient(port, "--binary",
                                                   "stats\n");
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].rfind("ok sessions=", 0), 0u) << stats[0];
  bool saw_net_metric = false;
  for (const std::string& line : stats) {
    if (line.rfind("upskill_net_", 0) == 0) saw_net_metric = true;
  }
  EXPECT_TRUE(saw_net_metric);

  // Clean shutdown through the stdin pipe; pclose reaps exit status 0.
  std::fputs("shutdown\n", server_);
  const int status = pclose(server_);
  server_ = nullptr;
  EXPECT_EQ(status, 0);
}

TEST_F(NetCliTest, QuantizedListenServesAndSwaps) {
  Run("generate synthetic " + dir_ + "/data --users 25 --seed 6");
  Run("train " + dir_ + "/data " + dir_ + "/model.csv --levels 3");
  Run("snapshot " + dir_ + "/data " + dir_ + "/model.csv " + dir_ +
      "/model.snap --levels 3");

  const int port = StartServer("--quantized");
  ASSERT_GT(port, 0) << Slurp(dir_ + "/serve.log");

  const std::vector<std::string> lines = RunClient(
      port, "--binary",
      "observe q_user 2 10\n"
      "swap " + dir_ + "/model.snap\n"
      "observe q_user 2 20\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("ok level=", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ok swapped ", 0), 0u) << lines[1];
  // Same-S swap keeps the session: second observe is action 2.
  EXPECT_NE(lines[2].find("actions=2"), std::string::npos) << lines[2];
}

}  // namespace
}  // namespace upskill
