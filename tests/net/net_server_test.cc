// The epoll TCP front end: text-over-TCP responses byte-identical to
// Server::Execute, binary round trips for every opcode, snapshot hot-swap
// (plain and quantized) under live connections, deadline load shedding,
// connection limits, and concurrent mixed-protocol clients (the TSan
// target for the net subsystem).

#include "net/net_server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/serving_model.h"

namespace upskill {
namespace net {
namespace {

using Kind = serve::ServeRequest::Kind;

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 40;
    data_config.num_items = 80;
    data_config.mean_sequence_length = 20.0;
    data_config.seed = 321;
    auto data = datagen::GenerateSynthetic(data_config);
    ASSERT_TRUE(data.ok());
    dataset_ = std::make_unique<Dataset>(std::move(data).value().dataset);

    SkillModelConfig config;
    config.num_levels = 4;
    config.min_init_actions = 10;
    config.max_iterations = 5;
    auto trained = Trainer(config).Train(*dataset_);
    ASSERT_TRUE(trained.ok());
    const SkillAssignments assignments =
        AssignSkills(*dataset_, trained.value().model);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset_->items(), trained.value().model, DifficultyPrior::kEmpirical,
        assignments);
    ASSERT_TRUE(difficulty.ok());

    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("upskill_net_" + std::to_string(::getpid())))
            .string();
    path_ = stem + ".snap";
    path_other_s_ = stem + "_s3.snap";

    auto snapshot = serve::MakeSnapshot(trained.value().model, dataset_->items(),
                                 difficulty.value());
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(serve::SaveSnapshot(snapshot.value(), path_).ok());

    SkillModelConfig config3 = config;
    config3.num_levels = 3;
    auto trained3 = Trainer(config3).Train(*dataset_);
    ASSERT_TRUE(trained3.ok());
    const SkillAssignments assignments3 =
        AssignSkills(*dataset_, trained3.value().model);
    auto difficulty3 = EstimateDifficultyByGeneration(
        dataset_->items(), trained3.value().model, DifficultyPrior::kEmpirical,
        assignments3);
    ASSERT_TRUE(difficulty3.ok());
    auto snapshot3 = serve::MakeSnapshot(trained3.value().model, dataset_->items(),
                                  difficulty3.value());
    ASSERT_TRUE(snapshot3.ok());
    ASSERT_TRUE(serve::SaveSnapshot(snapshot3.value(), path_other_s_).ok());

    auto serving = serve::ServingModel::FromSnapshotFile(path_);
    ASSERT_TRUE(serving.ok()) << serving.status().ToString();
    serving_ = serving.value();
  }

  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_other_s_);
  }

  std::unique_ptr<Dataset> dataset_;
  std::string path_;
  std::string path_other_s_;
  std::shared_ptr<const serve::ServingModel> serving_;
};

TEST_F(NetServerTest, TextOverTcpMatchesExecuteByteForByte) {
  serve::Server server(serving_);
  NetServerConfig config;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  // A reference Server with its own session state: both see the same
  // request sequence, so their responses must agree byte for byte.
  serve::Server reference(serving_);
  const std::vector<std::string> lines = {
      "observe u1 5 100",
      "observe u1 9 200",
      "level u1",
      "recommend u1 5",
      "recommend u1 3 1.5",
      "difficulty 9",
      "difficulty 1000000",  // out of range
      "observe u1 notanint 1",
      "evict 50",
      "level missing_user",
      "flarb",  // unknown command
      "reset",
  };
  std::string expected;
  for (const std::string& line : lines) {
    const auto request = serve::ParseServeRequest(line);
    expected += request.ok()
                    ? reference.Execute(request.value())
                    : serve::FormatErrorResponse(request.status());
    expected += '\n';
  }

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  ASSERT_TRUE(client.SendRaw(payload).ok());
  const auto responses = client.ReadLines(lines.size());
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  std::string actual;
  for (const std::string& response : responses.value()) {
    actual += response + "\n";
  }
  EXPECT_EQ(actual, expected);
  net.Stop();
}

TEST_F(NetServerTest, TextBatchDirectiveMatchesStdioSemantics) {
  serve::Server server(serving_);
  NetServerConfig config;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  serve::Server reference(serving_);
  const auto o1 = serve::ParseServeRequest("observe bu 3 10");
  const auto o2 = serve::ParseServeRequest("observe bu 7 20");
  ASSERT_TRUE(o1.ok() && o2.ok());
  // Stdio batch semantics: responses in request order, parse errors
  // interleaved in place.
  std::vector<std::string> expected;
  expected.push_back(reference.Execute(o1.value()));
  expected.push_back(serve::FormatErrorResponse(
      serve::ParseServeRequest("observe bu oops 30").status()));
  expected.push_back(reference.Execute(o2.value()));

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("batch 3\nobserve bu 3 10\nobserve bu oops 30\n"
                           "observe bu 7 20\n")
                  .ok());
  const auto responses = client.ReadLines(3);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  EXPECT_EQ(responses.value(), expected);
  net.Stop();
}

TEST_F(NetServerTest, TextBatchCountAboveLimitRejected) {
  serve::Server server(serving_);
  NetServerConfig config;
  config.max_batch_requests = 8;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  // The oversized directive is rejected up front (no batch mode entered),
  // so the following line executes as an ordinary request.
  ASSERT_TRUE(client.SendRaw("batch 9\ndifficulty 9\n").ok());
  const auto responses = client.ReadLines(2);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  EXPECT_EQ(responses.value()[0],
            serve::FormatErrorResponse(
                Status::InvalidArgument("batch count exceeds limit 8")));
  EXPECT_EQ(responses.value()[1].rfind("ok difficulty=", 0), 0u)
      << responses.value()[1];

  // An absurd count must not allocate for it: the connection answers
  // normally afterwards instead of dying on bad_alloc.
  ASSERT_TRUE(client.SendRaw("batch 9999999999\ndifficulty 9\n").ok());
  const auto after = client.ReadLines(2);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value()[0].rfind("ERR InvalidArgument batch count", 0), 0u)
      << after.value()[0];
  EXPECT_EQ(after.value()[1].rfind("ok difficulty=", 0), 0u);
  net.Stop();
}

TEST_F(NetServerTest, TextPartialBatchFlushedOnEof) {
  serve::Server server(serving_);
  NetServerConfig config;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  serve::Server reference(serving_);
  const auto observe = serve::ParseServeRequest("observe eof_user 3 10");
  ASSERT_TRUE(observe.ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  // EOF after 1 of 3 declared lines: stdio executes the partial batch and
  // still emits one line per declared slot (missing slots are empty).
  ASSERT_TRUE(client.SendRaw("batch 3\nobserve eof_user 3 10\n").ok());
  client.ShutdownWrite();
  const auto responses = client.ReadLines(3);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  EXPECT_EQ(responses.value()[0], reference.Execute(observe.value()));
  EXPECT_EQ(responses.value()[1], "");
  EXPECT_EQ(responses.value()[2], "");
  EXPECT_EQ(client.ReadAll(), "");  // server closes after the flush
  net.Stop();
}

TEST_F(NetServerTest, BinaryRoundTripEveryOpcode) {
  serve::Server server(serving_);
  NetServerConfig config;
  config.num_workers = 2;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());

  serve::ServeRequest observe;
  observe.kind = Kind::kObserve;
  observe.user = "bin_user";
  observe.item = 5;
  observe.has_time = true;
  observe.time = 100;
  auto response = client.Call(observe);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status_code, StatusCode::kOk);
  EXPECT_EQ(response.value().actions, 1u);
  const int level_after_observe = response.value().level;

  serve::ServeRequest level;
  level.kind = Kind::kLevel;
  level.user = "bin_user";
  response = client.Call(level);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().level, level_after_observe);

  serve::ServeRequest recommend;
  recommend.kind = Kind::kRecommend;
  recommend.user = "bin_user";
  recommend.top_k = 4;
  response = client.Call(recommend);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, StatusCode::kOk);
  EXPECT_EQ(response.value().picks.size(), 4u);

  serve::ServeRequest difficulty;
  difficulty.kind = Kind::kDifficulty;
  difficulty.item = 5;
  response = client.Call(difficulty);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, StatusCode::kOk);

  // Typed responses agree with the text protocol rendering of the same
  // state (the cross-format equivalence the wire format promises).
  serve::Server reference(serving_);
  const auto ref_observe = serve::ParseServeRequest("observe bin_user 5 100");
  ASSERT_TRUE(ref_observe.ok());
  const std::string ref_text = reference.Execute(ref_observe.value());
  serve::ServeRequest level2;
  level2.kind = Kind::kLevel;
  level2.user = "bin_user";
  const auto level_response = client.Call(level2);
  ASSERT_TRUE(level_response.ok());
  EXPECT_EQ(RenderResponseAsText(level_response.value(), Kind::kLevel),
            ref_text);

  serve::ServeRequest stats;
  stats.kind = Kind::kStats;
  response = client.Call(stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, StatusCode::kOk);
  EXPECT_NE(response.value().text.find("ok sessions="), std::string::npos);

  serve::ServeRequest bad_difficulty;
  bad_difficulty.kind = Kind::kDifficulty;
  bad_difficulty.item = 1000000;
  response = client.Call(bad_difficulty);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, StatusCode::kOutOfRange);

  serve::ServeRequest evict;
  evict.kind = Kind::kEvict;
  evict.time = 0;
  response = client.Call(evict);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, StatusCode::kOk);

  serve::ServeRequest reset;
  reset.kind = Kind::kReset;
  response = client.Call(reset);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(server.num_sessions(), 0u);

  serve::ServeRequest quit;
  quit.kind = Kind::kQuit;
  response = client.Call(quit);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status_code, StatusCode::kOk);
  // The server closes after the quit response drains.
  EXPECT_EQ(client.ReadAll(), "");
  net.Stop();
}

TEST_F(NetServerTest, PipelinedBinaryRequestsAnswerInOrder) {
  serve::Server server(serving_);
  NetServerConfig config;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  constexpr int kPipeline = 500;
  for (int i = 0; i < kPipeline; ++i) {
    serve::ServeRequest observe;
    observe.kind = Kind::kObserve;
    observe.user = "pipe_user";
    observe.item = i % 80;
    observe.has_time = true;
    observe.time = i;
    client.QueueRequest(observe);
  }
  ASSERT_TRUE(client.Flush().ok());
  for (int i = 0; i < kPipeline; ++i) {
    const auto response = client.ReadResponse(Kind::kObserve);
    ASSERT_TRUE(response.ok()) << "request " << i;
    ASSERT_EQ(response.value().status_code, StatusCode::kOk);
    // actions echoes the per-session counter: proof of in-order delivery.
    EXPECT_EQ(response.value().actions, static_cast<uint64_t>(i + 1));
  }
  net.Stop();
}

TEST_F(NetServerTest, SnapshotSwapUnderLiveConnections) {
  serve::Server server(serving_);
  NetServerConfig config;
  config.num_workers = 2;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient session;
  ASSERT_TRUE(session.Connect("127.0.0.1", net.port()).ok());
  serve::ServeRequest observe;
  observe.kind = Kind::kObserve;
  observe.user = "swap_user";
  observe.item = 1;
  observe.has_time = true;
  observe.time = 1;
  ASSERT_TRUE(session.Call(observe).ok());
  ASSERT_EQ(server.num_sessions(), 1u);

  // Swap to a different level count over a second connection; sessions
  // reset (levels changed), but the first connection keeps working.
  NetClient admin;
  ASSERT_TRUE(admin.Connect("127.0.0.1", net.port()).ok());
  serve::ServeRequest swap;
  swap.kind = Kind::kSwap;
  swap.path = path_other_s_;
  const auto swapped = admin.Call(swap);
  ASSERT_TRUE(swapped.ok());
  ASSERT_EQ(swapped.value().status_code, StatusCode::kOk)
      << swapped.value().message;
  EXPECT_EQ(swapped.value().levels, 3);
  EXPECT_EQ(server.num_sessions(), 0u);

  observe.time = 2;
  const auto after = session.Call(observe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().status_code, StatusCode::kOk);
  EXPECT_EQ(after.value().actions, 1u);  // fresh session post-reset
  net.Stop();
}

TEST_F(NetServerTest, QuantizedServerSwapsOverTcp) {
  serve::Server server(serving_, 64, /*quantized=*/true);
  NetServerConfig config;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  serve::ServeRequest observe;
  observe.kind = Kind::kObserve;
  observe.user = "q_user";
  observe.item = 2;
  observe.has_time = true;
  observe.time = 1;
  ASSERT_TRUE(client.Call(observe).ok());

  serve::ServeRequest swap;
  swap.kind = Kind::kSwap;
  swap.path = path_other_s_;
  const auto swapped = client.Call(swap);
  ASSERT_TRUE(swapped.ok());
  ASSERT_EQ(swapped.value().status_code, StatusCode::kOk)
      << swapped.value().message;
  EXPECT_TRUE(server.quantized());

  observe.time = 2;
  const auto after = client.Call(observe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().status_code, StatusCode::kOk);
  net.Stop();
}

TEST_F(NetServerTest, DeadlineSheddingEngagesAndRecovers) {
  serve::Server server(serving_);
  NetServerConfig config;
  // An impossible budget: every data-plane request projects past it, so
  // shedding engages deterministically once a latency sample exists.
  config.deadline_seconds = 1e-12;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  obs::Counter& shed_total = obs::MetricsRegistry::Global().GetCounter(
      "upskill_net_shed_total");
  const uint64_t shed_before = shed_total.Value();

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());

  // Seed the latency histograms (the mean-cost estimate starts at zero,
  // and elapsed time within a single drain can round to ~0): run a few
  // requests, then verify shedding kicks in on subsequent ones.
  int shed_count = 0;
  int ok_count = 0;
  for (int i = 0; i < 200; ++i) {
    serve::ServeRequest observe;
    observe.kind = Kind::kObserve;
    observe.user = "shed_user";
    observe.item = i % 80;
    observe.has_time = true;
    observe.time = i;
    const auto response = client.Call(observe);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response.value().status_code == StatusCode::kUnavailable) {
      ++shed_count;
      // The stable marker: first token of the shed message is `shed`.
      EXPECT_EQ(response.value().message.rfind("shed ", 0), 0u)
          << response.value().message;
    } else {
      ASSERT_EQ(response.value().status_code, StatusCode::kOk);
      ++ok_count;
    }
  }
  EXPECT_GT(shed_count, 0) << "load shedding never engaged";
  EXPECT_GT(shed_total.Value(), shed_before);

  // Admin requests are exempt: stats must get through the same server.
  serve::ServeRequest stats;
  stats.kind = Kind::kStats;
  const auto stats_response = client.Call(stats);
  ASSERT_TRUE(stats_response.ok());
  EXPECT_EQ(stats_response.value().status_code, StatusCode::kOk);

  // Session state stays consistent: the session observed exactly the
  // non-shed requests.
  const auto sessions = server.CurrentLevel("shed_user");
  if (ok_count > 0) {
    ASSERT_TRUE(sessions.ok());
    EXPECT_EQ(sessions.value().actions, static_cast<uint64_t>(ok_count));
  }
  net.Stop();
}

TEST_F(NetServerTest, TextProtocolShedsWithErrLine) {
  serve::Server server(serving_);
  NetServerConfig config;
  config.deadline_seconds = 1e-12;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  bool saw_shed = false;
  for (int i = 0; i < 200 && !saw_shed; ++i) {
    ASSERT_TRUE(client.SendRaw("observe tshed 1 " + std::to_string(i) + "\n")
                    .ok());
    const auto lines = client.ReadLines(1);
    ASSERT_TRUE(lines.ok());
    if (lines.value()[0].rfind("ERR Unavailable shed ", 0) == 0) {
      saw_shed = true;
    }
  }
  EXPECT_TRUE(saw_shed);
  net.Stop();
}

TEST_F(NetServerTest, ConnectionLimitRejectsExtraClients) {
  serve::Server server(serving_);
  NetServerConfig config;
  config.max_connections = 1;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  NetClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", net.port()).ok());
  // Prove the first connection is established end to end.
  serve::ServeRequest stats;
  stats.kind = Kind::kStats;
  ASSERT_TRUE(first.Call(stats).ok());

  // The second connect succeeds at the TCP level (the backlog accepts),
  // but the server closes it immediately without serving anything.
  NetClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", net.port()).ok());
  EXPECT_EQ(second.ReadAll(), "");

  obs::Counter& rejected = obs::MetricsRegistry::Global().GetCounter(
      "upskill_net_connections_rejected_total");
  EXPECT_GE(rejected.Value(), 1u);
  net.Stop();
}

TEST_F(NetServerTest, ConcurrentMixedProtocolClients) {
  serve::Server server(serving_);
  NetServerConfig config;
  config.num_workers = 4;
  NetServer net(&server, nullptr, config);
  ASSERT_TRUE(net.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", net.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string user = "mixed" + std::to_string(c);
      if (c % 2 == 0) {
        for (int i = 0; i < kRequests; ++i) {
          serve::ServeRequest observe;
          observe.kind = Kind::kObserve;
          observe.user = user;
          observe.item = i % 80;
          observe.has_time = true;
          observe.time = i;
          client.QueueRequest(observe);
        }
        if (!client.Flush().ok()) {
          failures.fetch_add(1);
          return;
        }
        for (int i = 0; i < kRequests; ++i) {
          const auto response = client.ReadResponse(Kind::kObserve);
          if (!response.ok() ||
              response.value().status_code != StatusCode::kOk ||
              response.value().actions != static_cast<uint64_t>(i + 1)) {
            failures.fetch_add(1);
            return;
          }
        }
      } else {
        std::string payload;
        for (int i = 0; i < kRequests; ++i) {
          payload += "observe " + user + " " + std::to_string(i % 80) + " " +
                     std::to_string(i) + "\n";
        }
        if (!client.SendRaw(payload).ok()) {
          failures.fetch_add(1);
          return;
        }
        const auto lines = client.ReadLines(kRequests);
        if (!lines.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (const std::string& line : lines.value()) {
          if (line.rfind("ok level=", 0) != 0) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.num_sessions(), static_cast<size_t>(kClients));
  net.Stop();
  EXPECT_EQ(net.active_connections(), 0);
}

}  // namespace
}  // namespace net
}  // namespace upskill
