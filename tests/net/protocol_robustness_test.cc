// Malformed-input robustness for both wire formats: truncated, oversized,
// and garbage binary frames, plus malformed text lines, against a live
// NetServer. The server must answer with the right ERR code (or close the
// connection for unframeable streams) and keep serving other clients —
// this is the ASan target for the net subsystem.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"

namespace upskill {
namespace net {
namespace {

using Kind = serve::ServeRequest::Kind;

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 20;
    data_config.num_items = 50;
    data_config.mean_sequence_length = 15.0;
    data_config.seed = 11;
    auto data = datagen::GenerateSynthetic(data_config);
    ASSERT_TRUE(data.ok());
    const Dataset& dataset = data.value().dataset;

    SkillModelConfig config;
    config.num_levels = 3;
    config.min_init_actions = 8;
    config.max_iterations = 4;
    auto trained = Trainer(config).Train(dataset);
    ASSERT_TRUE(trained.ok());
    const SkillAssignments assignments =
        AssignSkills(dataset, trained.value().model);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
        assignments);
    ASSERT_TRUE(difficulty.ok());
    auto snapshot = serve::MakeSnapshot(trained.value().model, dataset.items(),
                                 difficulty.value());
    ASSERT_TRUE(snapshot.ok());
    auto serving = serve::ServingModel::FromSnapshot(snapshot.value());
    ASSERT_TRUE(serving.ok());
    serving_ = new std::shared_ptr<const serve::ServingModel>(
        serving.value());
  }
  static void TearDownTestSuite() {
    delete serving_;
    serving_ = nullptr;
  }

  void SetUp() override {
    server_ = std::make_unique<serve::Server>(*serving_);
    NetServerConfig config;
    net_ = std::make_unique<NetServer>(server_.get(), nullptr, config);
    ASSERT_TRUE(net_->Start().ok());
  }
  void TearDown() override { net_->Stop(); }

  /// Asserts the server is still healthy by running a fresh, well-formed
  /// request over a fresh connection.
  void ExpectServerStillServes() {
    NetClient probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", net_->port()).ok());
    serve::ServeRequest stats;
    stats.kind = Kind::kStats;
    const auto response = probe.Call(stats);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status_code, StatusCode::kOk);
  }

  static std::shared_ptr<const serve::ServingModel>* serving_;
  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<NetServer> net_;
};

std::shared_ptr<const serve::ServingModel>* RobustnessTest::serving_ =
    nullptr;

TEST_F(RobustnessTest, GarbageBinaryFrameGetsErrorAndClose) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  // Request magic followed by garbage: decodes as a bad opcode.
  std::string garbage;
  garbage.push_back(static_cast<char>(kRequestMagic));
  garbage += std::string("\xFF\x01\x00\x00\x00Z", 6);  // NULs are payload
  ASSERT_TRUE(client.SendRaw(garbage).ok());
  const std::string reply = client.ReadAll();  // server closes after error
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  DecodedResponse response;
  std::string error;
  ASSERT_EQ(DecodeResponse(reply.data(), reply.size(), Kind::kObserve,
                           kDefaultMaxPayloadBytes, &response, &error),
            DecodeStatus::kFrame)
      << error;
  EXPECT_EQ(response.status_code, StatusCode::kInvalidArgument);
  EXPECT_NE(response.message.find("bad frame"), std::string::npos);
  ExpectServerStillServes();
}

TEST_F(RobustnessTest, OversizedFrameLengthGetsErrorAndClose) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  serve::ServeRequest observe;
  observe.kind = Kind::kObserve;
  observe.user = "u";
  observe.item = 1;
  std::string wire;
  EncodeRequest(observe, &wire);
  const uint32_t huge = 1u << 30;
  wire[2] = static_cast<char>(huge & 0xFF);
  wire[3] = static_cast<char>((huge >> 8) & 0xFF);
  wire[4] = static_cast<char>((huge >> 16) & 0xFF);
  wire[5] = static_cast<char>((huge >> 24) & 0xFF);
  ASSERT_TRUE(client.SendRaw(wire).ok());
  const std::string reply = client.ReadAll();
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  DecodedResponse response;
  std::string error;
  ASSERT_EQ(DecodeResponse(reply.data(), reply.size(), Kind::kObserve,
                           kDefaultMaxPayloadBytes, &response, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(response.status_code, StatusCode::kInvalidArgument);
  ExpectServerStillServes();
}

TEST_F(RobustnessTest, TruncatedFrameThenDisconnectIsClean) {
  // A partial frame that never completes: the server must neither
  // execute anything nor leak the buffered prefix when the client
  // vanishes mid-frame.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  serve::ServeRequest observe;
  observe.kind = Kind::kObserve;
  observe.user = "truncated_user";
  observe.item = 1;
  std::string wire;
  EncodeRequest(observe, &wire);
  ASSERT_TRUE(client.SendRaw(wire.substr(0, wire.size() - 3)).ok());
  client.Close();
  ExpectServerStillServes();
  // The truncated observe must not have executed.
  EXPECT_FALSE(server_->CurrentLevel("truncated_user").ok());
}

TEST_F(RobustnessTest, PayloadShorterThanStringLengthIsError) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  // A `level` frame whose u16 user-length field claims more bytes than
  // the payload holds: the inner decoder must not read past the frame.
  std::string wire;
  wire.push_back(static_cast<char>(kRequestMagic));
  wire.push_back(static_cast<char>(Kind::kLevel));
  wire += std::string("\x04\x00\x00\x00", 4);  // payload length 4
  wire += std::string("\xFF\xFF", 2);          // user length 65535
  wire += "ab";                                // ...but only 2 bytes follow
  ASSERT_TRUE(client.SendRaw(wire).ok());
  const std::string reply = client.ReadAll();
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  DecodedResponse response;
  std::string error;
  ASSERT_EQ(DecodeResponse(reply.data(), reply.size(), Kind::kLevel,
                           kDefaultMaxPayloadBytes, &response, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(response.status_code, StatusCode::kInvalidArgument);
  ExpectServerStillServes();
}

TEST_F(RobustnessTest, MalformedTextLinesGetErrLinesAndSurvive) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  const std::vector<std::string> lines = {
      "flarb",                    // unknown command
      "observe",                  // wrong arity
      "observe u notanint 1",     // bad integer
      "difficulty -5",            // out of range
      "recommend u xyz",          // bad top_k
      "batch notanint",           // bad batch count
  };
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  ASSERT_TRUE(client.SendRaw(payload).ok());
  const auto responses = client.ReadLines(lines.size());
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  for (size_t i = 0; i < responses.value().size(); ++i) {
    EXPECT_EQ(responses.value()[i].rfind("ERR ", 0), 0u)
        << "line " << i << ": " << responses.value()[i];
  }
  // Unknown commands carry the stable machine-parseable marker.
  EXPECT_NE(responses.value()[0].find("unknown_command"), std::string::npos);
  // The connection survives malformed text: a good request still works.
  ASSERT_TRUE(client.SendRaw("observe mal_user 1 1\n").ok());
  const auto ok_line = client.ReadLines(1);
  ASSERT_TRUE(ok_line.ok());
  EXPECT_EQ(ok_line.value()[0].rfind("ok level=", 0), 0u);
  ExpectServerStillServes();
}

TEST_F(RobustnessTest, OverlongTextLineIsRejectedAndClosed) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
  // A text line longer than the payload limit with no newline in sight
  // must not buffer without bound.
  const std::string huge(kDefaultMaxPayloadBytes + 1024, 'a');
  ASSERT_TRUE(client.SendRaw(huge).ok());
  // The server rejects and closes; depending on timing the close can RST
  // away the error line, so only require that any reply we did get is the
  // right error (and, below, that the server survived).
  const std::string reply = client.ReadAll();
  if (!reply.empty()) {
    EXPECT_NE(reply.find("ERR InvalidArgument"), std::string::npos);
  }
  ExpectServerStillServes();
}

TEST_F(RobustnessTest, RandomBytesNeverCrashTheServer) {
  // Deterministic pseudo-random garbage across several connections; the
  // only requirement is clean survival (error frame or close).
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (int round = 0; round < 10; ++round) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", net_->port()).ok());
    std::string garbage;
    // Half the rounds look binary (leading request magic), half text.
    if (round % 2 == 0) garbage.push_back(static_cast<char>(kRequestMagic));
    for (int i = 0; i < 512; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      garbage.push_back(static_cast<char>(state >> 56));
    }
    ASSERT_TRUE(client.SendRaw(garbage).ok());
    // Garbage may be an incomplete frame/line the server rightly waits
    // on; don't wait for a reply, just disconnect and move on.
    client.Close();
  }
  ExpectServerStillServes();
}

}  // namespace
}  // namespace net
}  // namespace upskill
