// Telemetry must be observation-only: training with metrics and tracing
// enabled produces bitwise-identical models, assignments, and objectives
// to training with both disabled, including under a multi-threaded pool.
// Runs under UPSKILL_SANITIZE=thread as a race detector for the
// instrumented MapShards / ThreadPool paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/difficulty.h"
#include "core/online_trainer.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/serving_model.h"
#include "serve/snapshot.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeData() {
  datagen::SyntheticConfig config;
  config.num_users = 100;
  config.num_items = 90;
  config.mean_sequence_length = 18.0;
  config.seed = 20260808;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

SkillModelConfig MakeConfig(int threads) {
  SkillModelConfig config;
  config.num_levels = 4;
  config.max_iterations = 6;
  config.min_init_actions = 8;
  config.parallel.num_threads = threads;
  config.parallel.users = threads > 1;
  config.parallel.levels = threads > 1;
  config.parallel.features = threads > 1;
  return config;
}

// Every component's parameter vector, in (feature, level) order; bitwise
// equality of these vectors means the fitted model is bitwise identical.
std::vector<std::vector<double>> ModelParams(const SkillModel& model) {
  std::vector<std::vector<double>> params;
  for (int f = 0; f < model.num_features(); ++f) {
    for (int s = 1; s <= model.num_levels(); ++s) {
      params.push_back(model.component(f, s).Parameters());
    }
  }
  return params;
}

TEST(ObsDeterminismTest, MetricsAndTracingDoNotPerturbTraining) {
  const datagen::GeneratedData data = MakeData();
  for (const int threads : {1, 8}) {
    const SkillModelConfig config = MakeConfig(threads);

    // Baseline: all telemetry off.
    obs::SetMetricsEnabled(false);
    obs::TraceRecorder::Global().Disable();
    const auto baseline = Trainer(config).Train(data.dataset);
    ASSERT_TRUE(baseline.ok());

    // Instrumented: metrics on, recorder capturing every span.
    obs::SetMetricsEnabled(true);
    obs::TraceRecorder::Global().Enable();
    const auto instrumented = Trainer(config).Train(data.dataset);
    obs::TraceRecorder::Global().Disable();
    ASSERT_TRUE(instrumented.ok());
    EXPECT_FALSE(obs::TraceRecorder::Global().Events().empty());

    EXPECT_EQ(baseline.value().iterations, instrumented.value().iterations)
        << "threads=" << threads;
    // Bitwise, not approximate: telemetry may not reorder a single
    // floating-point operation.
    EXPECT_EQ(baseline.value().final_log_likelihood,
              instrumented.value().final_log_likelihood)
        << "threads=" << threads;
    EXPECT_EQ(ModelParams(baseline.value().model),
              ModelParams(instrumented.value().model))
        << "threads=" << threads;
    EXPECT_EQ(baseline.value().assignments, instrumented.value().assignments)
        << "threads=" << threads;
  }
}

// The phase-seconds readout (TrainResult) must stay populated whether or
// not the registry is recording: the Span clock runs regardless.
TEST(ObsDeterminismTest, PhaseSecondsPopulatedWithMetricsDisabled) {
  const datagen::GeneratedData data = MakeData();
  obs::SetMetricsEnabled(false);
  const auto result = Trainer(MakeConfig(1)).Train(data.dataset);
  obs::SetMetricsEnabled(true);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().init_seconds, 0.0);
  EXPECT_GT(result.value().assignment_seconds, 0.0);
  EXPECT_GT(result.value().update_seconds, 0.0);
  EXPECT_GT(result.value().cache_seconds, 0.0);
}

// `base` plus appended actions on two users and one new user — a
// deterministic "current" dataset for an online refresh.
Dataset GrowDataset(const Dataset& base) {
  Dataset out(base.items());
  for (UserId u = 0; u < base.num_users(); ++u) {
    out.AddUser(base.user_name(u));
    for (const Action& a : base.sequence(u)) {
      EXPECT_TRUE(out.AddAction(u, a.time, a.item, a.rating).ok());
    }
  }
  const int num_items = base.items().num_items();
  for (UserId u : {UserId{0}, UserId{5}}) {
    const auto seq = base.sequence(u);
    const int64_t start = seq.empty() ? 0 : seq.back().time + 1;
    for (int k = 0; k < 6; ++k) {
      EXPECT_TRUE(out.AddAction(u, start + k, (u * 11 + k) % num_items).ok());
    }
  }
  const UserId fresh = out.AddUser("det_newcomer");
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(out.AddAction(fresh, 1000 + k, (k * 3) % num_items).ok());
  }
  return out;
}

// The refresh's param-delta gauge must be a pure readout: computing it
// (metrics on) cannot change a single bit of the refreshed model vs not
// computing it (metrics off).
TEST(ObsDeterminismTest, RefreshTelemetryDoesNotPerturbOnlineTraining) {
  const datagen::GeneratedData data = MakeData();
  const Dataset grown = GrowDataset(data.dataset);
  SkillModelConfig config = MakeConfig(1);
  config.transitions = TransitionModel::kNone;

  obs::SetMetricsEnabled(false);
  OnlineTrainer baseline(config);
  ASSERT_TRUE(baseline.TrainFullReplay(data.dataset).ok());
  const auto baseline_stats = baseline.Refresh(data.dataset, grown);
  ASSERT_TRUE(baseline_stats.ok()) << baseline_stats.status().ToString();
  // Disabled metrics: the delta is not computed at all.
  EXPECT_EQ(baseline_stats.value().param_delta_l2, 0.0);

  obs::SetMetricsEnabled(true);
  OnlineTrainer instrumented(config);
  ASSERT_TRUE(instrumented.TrainFullReplay(data.dataset).ok());
  const auto instrumented_stats = instrumented.Refresh(data.dataset, grown);
  ASSERT_TRUE(instrumented_stats.ok());
  EXPECT_GT(instrumented_stats.value().dirty_users, 0u);
  EXPECT_GE(instrumented_stats.value().param_delta_l2, 0.0);

  EXPECT_EQ(baseline_stats.value().dirty_users,
            instrumented_stats.value().dirty_users);
  EXPECT_EQ(ModelParams(baseline.model()), ModelParams(instrumented.model()));
  EXPECT_EQ(baseline.assignments(), instrumented.assignments());
}

// Attaching a flight recorder to a serving stack must be bitwise
// invisible in every response byte (the recorder is written to, never
// read from, on the request path).
TEST(ObsDeterminismTest, FlightRecorderDoesNotPerturbServing) {
  const datagen::GeneratedData data = MakeData();
  SkillModelConfig config = MakeConfig(1);
  const auto trained = Trainer(config).Train(data.dataset);
  ASSERT_TRUE(trained.ok());
  const SkillAssignments assignments =
      AssignSkills(data.dataset, trained.value().model);
  const auto difficulty = EstimateDifficultyByGeneration(
      data.dataset.items(), trained.value().model, DifficultyPrior::kEmpirical,
      assignments);
  ASSERT_TRUE(difficulty.ok());
  const auto snapshot = serve::MakeSnapshot(
      trained.value().model, data.dataset.items(), difficulty.value());
  ASSERT_TRUE(snapshot.ok());
  const auto serving = serve::ServingModel::FromSnapshot(snapshot.value());
  ASSERT_TRUE(serving.ok());

  const std::vector<std::string> lines = {
      "observe det_u 5 100",  "observe det_u 9 200", "level det_u",
      "recommend det_u 5",    "difficulty 9",        "difficulty 1000000",
      "recommend unknown_u 3", "evict 50",           "level det_u",
  };

  const auto run = [&](serve::Server& server) {
    std::vector<std::string> responses;
    for (const std::string& line : lines) {
      const auto request = serve::ParseServeRequest(line);
      EXPECT_TRUE(request.ok()) << line;
      responses.push_back(server.Execute(request.value()));
    }
    return responses;
  };

  serve::Server plain(serving.value());
  const std::vector<std::string> expected = run(plain);

  obs::FlightRecorderOptions options;
  options.capacity = 8;  // small enough to exercise overwrite too
  obs::FlightRecorder recorder(options);
  serve::Server recorded(serving.value());
  recorded.SetFlightRecorder(&recorder);
  EXPECT_EQ(run(recorded), expected);
  EXPECT_GT(recorder.Stats().recorded, 0u);

  // And with telemetry fully dark, the fast path answers identically.
  obs::SetMetricsEnabled(false);
  serve::Server dark(serving.value());
  EXPECT_EQ(run(dark), expected);
  obs::SetMetricsEnabled(true);
}

}  // namespace
}  // namespace upskill
