// Telemetry must be observation-only: training with metrics and tracing
// enabled produces bitwise-identical models, assignments, and objectives
// to training with both disabled, including under a multi-threaded pool.
// Runs under UPSKILL_SANITIZE=thread as a race detector for the
// instrumented MapShards / ThreadPool paths.

#include <gtest/gtest.h>

#include <vector>

#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeData() {
  datagen::SyntheticConfig config;
  config.num_users = 100;
  config.num_items = 90;
  config.mean_sequence_length = 18.0;
  config.seed = 20260808;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

SkillModelConfig MakeConfig(int threads) {
  SkillModelConfig config;
  config.num_levels = 4;
  config.max_iterations = 6;
  config.min_init_actions = 8;
  config.parallel.num_threads = threads;
  config.parallel.users = threads > 1;
  config.parallel.levels = threads > 1;
  config.parallel.features = threads > 1;
  return config;
}

// Every component's parameter vector, in (feature, level) order; bitwise
// equality of these vectors means the fitted model is bitwise identical.
std::vector<std::vector<double>> ModelParams(const SkillModel& model) {
  std::vector<std::vector<double>> params;
  for (int f = 0; f < model.num_features(); ++f) {
    for (int s = 1; s <= model.num_levels(); ++s) {
      params.push_back(model.component(f, s).Parameters());
    }
  }
  return params;
}

TEST(ObsDeterminismTest, MetricsAndTracingDoNotPerturbTraining) {
  const datagen::GeneratedData data = MakeData();
  for (const int threads : {1, 8}) {
    const SkillModelConfig config = MakeConfig(threads);

    // Baseline: all telemetry off.
    obs::SetMetricsEnabled(false);
    obs::TraceRecorder::Global().Disable();
    const auto baseline = Trainer(config).Train(data.dataset);
    ASSERT_TRUE(baseline.ok());

    // Instrumented: metrics on, recorder capturing every span.
    obs::SetMetricsEnabled(true);
    obs::TraceRecorder::Global().Enable();
    const auto instrumented = Trainer(config).Train(data.dataset);
    obs::TraceRecorder::Global().Disable();
    ASSERT_TRUE(instrumented.ok());
    EXPECT_FALSE(obs::TraceRecorder::Global().Events().empty());

    EXPECT_EQ(baseline.value().iterations, instrumented.value().iterations)
        << "threads=" << threads;
    // Bitwise, not approximate: telemetry may not reorder a single
    // floating-point operation.
    EXPECT_EQ(baseline.value().final_log_likelihood,
              instrumented.value().final_log_likelihood)
        << "threads=" << threads;
    EXPECT_EQ(ModelParams(baseline.value().model),
              ModelParams(instrumented.value().model))
        << "threads=" << threads;
    EXPECT_EQ(baseline.value().assignments, instrumented.value().assignments)
        << "threads=" << threads;
  }
}

// The phase-seconds readout (TrainResult) must stay populated whether or
// not the registry is recording: the Span clock runs regardless.
TEST(ObsDeterminismTest, PhaseSecondsPopulatedWithMetricsDisabled) {
  const datagen::GeneratedData data = MakeData();
  obs::SetMetricsEnabled(false);
  const auto result = Trainer(MakeConfig(1)).Train(data.dataset);
  obs::SetMetricsEnabled(true);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().init_seconds, 0.0);
  EXPECT_GT(result.value().assignment_seconds, 0.0);
  EXPECT_GT(result.value().update_seconds, 0.0);
  EXPECT_GT(result.value().cache_seconds, 0.0);
}

}  // namespace
}  // namespace upskill
