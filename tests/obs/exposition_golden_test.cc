// Golden-file lock on the Prometheus exposition format: HELP precedes
// TYPE, samples group by family in sorted order, label values escape
// backslash/quote/newline, histogram buckets are cumulative with the
// labeled _sum/_count pair, and the payload ends with the OpenMetrics
// `# EOF` marker. Scrapers parse this byte stream — any change here is a
// compatibility decision, so it must show up as a golden diff, not as a
// silently passing substring check.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/exposition.h"
#include "obs/metrics.h"

#ifndef UPSKILL_TESTDATA_DIR
#error "UPSKILL_TESTDATA_DIR must be defined by the build"
#endif

namespace upskill {
namespace obs {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ExpositionGoldenTest, PrometheusRenderingMatchesGoldenFile) {
  // A local registry, populated exactly like the golden expects: two
  // labeled counters in one family, a zero-valued bare counter, an
  // identity gauge whose label value needs every escape class, and a
  // small labeled histogram.
  MetricsRegistry registry;
  registry.SetHelp("upskill_requests_total",
                   "Total serve requests by kind.");
  registry.SetHelp("upskill_lat_seconds", "Request latency in seconds.");
  registry.SetHelp("upskill_model_snapshot_info",
                   "Identity of the installed snapshot.");

  registry.GetCounter("upskill_requests_total", "kind=\"observe\"")
      .Increment(3);
  registry.GetCounter("upskill_requests_total", "kind=\"level\"").Increment(1);
  registry.GetCounter("upskill_trace_dropped_total");

  const std::string raw_path = "/tmp/we\"ird\\snap\n.v1";
  registry
      .GetGauge("upskill_model_snapshot_info",
                "path=\"" + EscapeLabelValue(raw_path) + "\"")
      .Set(1.0);
  registry.GetGauge("upskill_uptime_seconds").Set(12.5);

  HistogramOptions options;
  options.min_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // bounds 1, 2, 4
  Histogram& histogram =
      registry.GetHistogram("upskill_lat_seconds", "kind=\"observe\"", options);
  histogram.Observe(0.5);
  histogram.Observe(3.0);
  histogram.Observe(100.0);

  const std::string actual = RenderPrometheus(registry);
  const std::string golden = ReadFileOrDie(
      std::string(UPSKILL_TESTDATA_DIR) + "/exposition_golden.prom");

  if (actual != golden) {
    // Byte-exact diff support: leave the actual rendering next to the
    // golden name so `diff` explains the failure.
    const std::string dump =
        (std::filesystem::temp_directory_path() / "exposition_actual.prom")
            .string();
    std::ofstream(dump, std::ios::binary) << actual;
    ADD_FAILURE() << "exposition drifted from golden; actual written to "
                  << dump << "\n--- actual ---\n"
                  << actual;
  }
}

TEST(ExpositionGoldenTest, EscapeLabelValueCoversEveryClass) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

}  // namespace
}  // namespace obs
}  // namespace upskill
