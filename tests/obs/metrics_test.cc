// The metrics registry's contract: instruments are exact under
// concurrency (the per-thread stripes lose no updates), bucket boundaries
// are le-inclusive, the registry hands back stable identities, and the
// whole thing degrades to a no-op when disabled. The 8-thread hammer
// tests double as race detectors under UPSKILL_SANITIZE=thread.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"

namespace upskill {
namespace obs {
namespace {

// Metrics are enabled by default; tests that flip the switch restore it.
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : saved_(MetricsEnabled()) {}
  ~MetricsEnabledGuard() { SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

TEST(CounterTest, ExactTotalsFromEightThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, DeltaIncrements) {
  Counter counter;
  counter.Increment(5);
  counter.Increment();
  counter.Increment(0);
  EXPECT_EQ(counter.Value(), 6u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.Add(1.5);
  gauge.Add(-2.0);
  EXPECT_EQ(gauge.Value(), 3.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, ExactCountAndSumFromEightThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Small integers: their double sum is exact, so the total is
        // asserted with operator==, not a tolerance.
        histogram.Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  // Sum of (t+1) over t in [0,8) is 36 per round of one observation each.
  EXPECT_EQ(histogram.Sum(), 36.0 * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t count : histogram.BucketCounts()) bucket_total += count;
  EXPECT_EQ(bucket_total, histogram.Count());
}

TEST(HistogramTest, BucketBoundariesAreLeInclusive) {
  HistogramOptions options;
  options.min_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // bounds 1, 2, 4 (+Inf overflow)
  Histogram histogram(options);
  ASSERT_EQ(histogram.bucket_bounds(), (std::vector<double>{1.0, 2.0, 4.0}));

  histogram.Observe(0.5);   // bucket 0 (<= 1)
  histogram.Observe(1.0);   // bucket 0 (boundary is inclusive)
  histogram.Observe(1.5);   // bucket 1
  histogram.Observe(2.0);   // bucket 1 (boundary)
  histogram.Observe(3.0);   // bucket 2
  histogram.Observe(4.0);   // bucket 2 (boundary)
  histogram.Observe(4.001); // overflow
  histogram.Observe(-1.0);  // bucket 0 (non-positive clamps low)
  const std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, DefaultCoversMicrosecondsToHours) {
  Histogram histogram;
  EXPECT_EQ(histogram.num_buckets(), 45);
  EXPECT_DOUBLE_EQ(histogram.bucket_bounds().front(), 1e-6);
  EXPECT_GT(histogram.bucket_bounds().back(), 3600.0);
  histogram.Observe(1e-9);
  histogram.Observe(0.25);
  histogram.Observe(1e9);
  EXPECT_EQ(histogram.Count(), 3u);
}

TEST(HistogramQuantileTest, InterpolatesWithinTheOwningBucket) {
  // Bounds 1, 2, 4: counts below place 4 observations in bucket 0,
  // 4 in bucket 1, and 2 in bucket 2.
  const std::vector<uint64_t> counts = {4, 4, 2, 0};
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // p50 -> rank ceil(0.5*10)=5, the 1st of 4 observations in [1,2].
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(counts, bounds, 0.5), 1.25);
  // p90 -> rank 9, the 1st of 2 in (2,4].
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(counts, bounds, 0.9), 3.0);
  // p99 -> rank 10, the 2nd of 2 in (2,4].
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(counts, bounds, 0.99), 4.0);
  // Bucket 0 interpolates from a lower bound of zero.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(counts, bounds, 0.25), 0.75);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(counts, bounds, -1.0),
                   QuantileFromBuckets(counts, bounds, 0.0));
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(counts, bounds, 2.0),
                   QuantileFromBuckets(counts, bounds, 1.0));
}

TEST(HistogramQuantileTest, OverflowClampsToLastFiniteBound) {
  const std::vector<double> bounds = {1.0, 2.0};
  // All mass in the +Inf bucket: no finite upper edge to interpolate
  // toward, so the estimate saturates at the largest resolvable bound.
  const std::vector<uint64_t> overflow_only = {0, 0, 5};
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(overflow_only, bounds, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(overflow_only, bounds, 0.99), 2.0);
}

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(HistogramQuantileTest, MatchesExactValuesOnDegenerateBuckets) {
  HistogramOptions options;
  options.min_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 8;  // bounds 1..128
  Histogram histogram(options);
  // A single observation: every quantile lands in its bucket.
  histogram.Observe(10.0);  // bucket (8,16]
  const double p50 = histogram.Quantile(0.5);
  EXPECT_GT(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.01), histogram.Quantile(0.99));
}

TEST(MetricsRegistryTest, SameNameAndLabelsYieldSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests", "kind=\"x\"");
  Counter& b = registry.GetCounter("requests", "kind=\"x\"");
  Counter& c = registry.GetCounter("requests", "kind=\"y\"");
  Counter& d = registry.GetCounter("other");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_NE(&a, &d);
  // Gauges and histograms live in separate namespaces.
  Gauge& g = registry.GetGauge("requests");
  Histogram& h = registry.GetHistogram("requests");
  EXPECT_EQ(&g, &registry.GetGauge("requests"));
  EXPECT_EQ(&h, &registry.GetHistogram("requests"));
}

TEST(MetricsRegistryTest, CollectIsSortedAndReflectsValues) {
  MetricsRegistry registry;
  registry.GetCounter("zeta").Increment(7);
  registry.GetCounter("alpha", "kind=\"b\"").Increment(1);
  registry.GetCounter("alpha", "kind=\"a\"").Increment(2);
  registry.GetGauge("depth").Set(4.0);
  registry.GetHistogram("lat").Observe(0.5);

  const MetricsSnapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[0].labels, "kind=\"a\"");
  EXPECT_EQ(snapshot.counters[0].value, 2u);
  EXPECT_EQ(snapshot.counters[1].labels, "kind=\"b\"");
  EXPECT_EQ(snapshot.counters[2].name, "zeta");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 4.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_EQ(snapshot.histograms[0].sum, 0.5);
  EXPECT_EQ(snapshot.histograms[0].counts.size(),
            snapshot.histograms[0].bounds.size() + 1);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsIdentity) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("hits");
  counter.Increment(9);
  registry.GetGauge("depth").Set(2.0);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(registry.Collect().gauges[0].value, 0.0);
  EXPECT_EQ(&counter, &registry.GetCounter("hits"));
}

TEST(MetricsEnabledTest, DisabledInstrumentsAreNoOps) {
  MetricsEnabledGuard guard;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  counter.Increment();
  gauge.Set(5.0);
  gauge.Add(1.0);
  histogram.Observe(1.0);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(histogram.Count(), 0u);
  SetMetricsEnabled(true);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 1u);
}

TEST(ExpositionTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("upskill_requests_total", "kind=\"observe\"")
      .Increment(3);
  registry.GetGauge("upskill_depth").Set(2.5);
  HistogramOptions options;
  options.min_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 2;  // bounds 1, 2
  Histogram& histogram =
      registry.GetHistogram("upskill_lat_seconds", "", options);
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(9.0);

  const std::string text = RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE upskill_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_requests_total{kind=\"observe\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE upskill_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("upskill_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE upskill_lat_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(text.find("upskill_lat_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_lat_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("upskill_lat_seconds_sum 11\n"), std::string::npos);
  // Terminated by the OpenMetrics-style EOF marker.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(ExpositionTest, JsonContainsEverySection) {
  MetricsRegistry registry;
  registry.GetCounter("c", "kind=\"a\"").Increment(2);
  registry.GetGauge("g").Set(1.25);
  registry.GetHistogram("h").Observe(3.0);
  const std::string json = RenderMetricsJson(registry);
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":\"kind=\\\"a\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// Concurrent writers against *registry-owned* instruments while a reader
// collects: no torn values, and the final totals are exact.
TEST(MetricsRegistryTest, ConcurrentWritersAndCollector) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("hammered_total");
  Histogram& histogram = registry.GetHistogram("hammered_seconds");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(1.0);
      }
    });
  }
  // Interleaved reads; values observed mid-flight just have to be sane.
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = registry.Collect();
    EXPECT_LE(snapshot.counters[0].value,
              static_cast<uint64_t>(kThreads * kPerThread));
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram.Sum(), static_cast<double>(kThreads * kPerThread));
}

}  // namespace
}  // namespace obs
}  // namespace upskill
