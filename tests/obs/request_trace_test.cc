// FlightRecorder: the main ring keeps exactly the last K completions,
// tail sampling retains errors/sheds/slowest past ring overwrite,
// sample_every thins only the main ring, the Chrome-trace dump carries
// the request-id/kind/error args, and concurrent recorders lose nothing
// (the TSan target for the request-trace subsystem). Also the satellite
// regression for TraceRecorder overflow accounting:
// upskill_trace_dropped_total must move with dropped().

#include "obs/request_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace upskill {
namespace obs {
namespace {

using Clock = std::chrono::steady_clock;

// Record a completion of `duration_us` starting `start_us` after the
// recorder's epoch, on the calling thread.
void RecordAt(FlightRecorder& recorder, int kind, const char* name,
              int64_t start_us, int64_t duration_us, bool error = false,
              bool shed = false) {
  const Clock::time_point start =
      recorder.epoch() + std::chrono::microseconds(start_us);
  recorder.Record(kind, name, start,
                  start + std::chrono::microseconds(duration_us), error, shed);
}

TEST(NextRequestIdTest, UniqueNonZeroAndMonotoneWithinProcess) {
  std::set<uint64_t> seen;
  uint64_t previous = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = NextRequestId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    if (previous != 0) {
      EXPECT_GT(id, previous);
    }
    previous = id;
  }
}

TEST(FlightRecorderTest, RingKeepsLastKAndDropsOldest) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.num_stripes = 1;
  options.slowest_per_kind = 0;  // isolate the ring from tail retention
  FlightRecorder recorder(options);

  for (int i = 0; i < 10; ++i) {
    RecordAt(recorder, 0, "serve/observe", /*start_us=*/i, /*duration_us=*/1);
  }
  const std::vector<RequestRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);
  // Chronological, and only the last four completions survive.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].start_ns, static_cast<int64_t>((6 + i) * 1000));
    EXPECT_STREQ(recent[i].kind_name, "serve/observe");
    EXPECT_NE(recent[i].id, 0u);
  }
  const FlightRecorderStats stats = recorder.Stats();
  EXPECT_EQ(stats.recorded, 10u);
  EXPECT_EQ(stats.ring_size, 4u);
  EXPECT_EQ(stats.sampled_out, 0u);
}

TEST(FlightRecorderTest, ErrorsAndShedsSurviveRingOverwrite) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.num_stripes = 1;
  options.slowest_per_kind = 0;
  FlightRecorder recorder(options);

  // One error and one shed early, then enough traffic to overwrite the
  // ring many times over.
  RecordAt(recorder, 0, "serve/observe", 0, 1, /*error=*/true);
  RecordAt(recorder, 1, "serve/level", 1, 1, /*error=*/true, /*shed=*/true);
  for (int i = 0; i < 100; ++i) {
    RecordAt(recorder, 0, "serve/observe", 10 + i, 1);
  }

  const std::vector<RequestRecord> recent = recorder.Recent();
  for (const RequestRecord& record : recent) EXPECT_FALSE(record.error);

  const std::vector<RequestRecord> retained = recorder.Retained();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_TRUE(retained[0].error);
  EXPECT_FALSE(retained[0].shed);
  EXPECT_TRUE(retained[1].error);
  EXPECT_TRUE(retained[1].shed);
  EXPECT_STREQ(retained[1].kind_name, "serve/level");

  const FlightRecorderStats stats = recorder.Stats();
  EXPECT_EQ(stats.errors_retained, 2u);
  EXPECT_EQ(stats.sheds_retained, 1u);
}

TEST(FlightRecorderTest, SlowestPerKindSurvivesAndKeepsTrueMaxima) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.num_stripes = 1;
  options.slowest_per_kind = 2;
  FlightRecorder recorder(options);

  // Durations 1..50us for kind 0; the slow table must end up holding
  // exactly the two largest regardless of arrival order or overwrite.
  std::vector<int64_t> durations;
  for (int64_t d = 1; d <= 50; ++d) durations.push_back(d);
  // Shuffle deterministically: odd durations first, then even descending.
  std::vector<int64_t> order;
  for (int64_t d : durations) {
    if (d % 2 == 1) order.push_back(d);
  }
  for (auto it = durations.rbegin(); it != durations.rend(); ++it) {
    if (*it % 2 == 0) order.push_back(*it);
  }
  int64_t start = 0;
  for (int64_t d : order) {
    RecordAt(recorder, 0, "serve/recommend", start++, d);
  }

  std::vector<int64_t> retained_durations;
  for (const RequestRecord& record : recorder.Retained()) {
    EXPECT_EQ(record.kind_index, 0);
    retained_durations.push_back(record.duration_ns / 1000);
  }
  std::sort(retained_durations.begin(), retained_durations.end());
  EXPECT_EQ(retained_durations, (std::vector<int64_t>{49, 50}));
  EXPECT_EQ(recorder.Stats().slowest_size, 2u);

  // A kind index past kMaxKinds still reaches the ring without crashing.
  RecordAt(recorder, FlightRecorder::kMaxKinds + 3, "serve/unknown", 999, 1);
  EXPECT_EQ(recorder.Stats().slowest_size, 2u);
}

TEST(FlightRecorderTest, SampleEveryThinsOnlyTheMainRing) {
  FlightRecorderOptions options;
  options.capacity = 64;
  options.num_stripes = 1;
  options.slowest_per_kind = 0;
  options.sample_every = 4;
  FlightRecorder recorder(options);

  for (int i = 0; i < 40; ++i) {
    RecordAt(recorder, 0, "serve/observe", i, 1);
  }
  // One error mid-stream: always retained even while thinning.
  RecordAt(recorder, 0, "serve/observe", 100, 1, /*error=*/true);

  const FlightRecorderStats stats = recorder.Stats();
  EXPECT_EQ(stats.recorded, 41u);
  // Of 41 offered, every 4th lands: ceil(41 / 4) = 11 kept.
  EXPECT_EQ(stats.ring_size, 11u);
  EXPECT_EQ(stats.sampled_out, 30u);
  EXPECT_EQ(stats.errors_retained, 1u);
  ASSERT_EQ(recorder.Retained().size(), 1u);
  EXPECT_TRUE(recorder.Retained()[0].error);
}

// Caller-sequenced recording: seqs on the sampling cadence land in the
// main ring and account for their whole block, so Stats().recorded
// tracks the true completion count even though sampled-out requests
// never touch the recorder's counters.
TEST(FlightRecorderTest, RecordSampledKeepsCadenceAndBlockAccounting) {
  FlightRecorderOptions options;
  options.capacity = 64;
  options.num_stripes = 1;
  options.slowest_per_kind = 0;
  options.sample_every = 4;
  FlightRecorder recorder(options);

  for (uint64_t seq = 0; seq < 16; ++seq) {
    const Clock::time_point start =
        recorder.epoch() + std::chrono::microseconds(seq);
    recorder.RecordSampled(seq, 0, "serve/observe", start,
                           start + std::chrono::microseconds(1), false, false);
  }

  const FlightRecorderStats stats = recorder.Stats();
  // Seqs 0, 4, 8, 12 are cadence reps; each accounts for 4 offers.
  EXPECT_EQ(stats.recorded, 16u);
  EXPECT_EQ(stats.ring_size, 4u);
  EXPECT_EQ(stats.sampled_out, 12u);
}

// Off-cadence errors and slowest candidates are still admitted — into
// tail retention only, never the main ring, so cadence accounting
// stays exact.
TEST(FlightRecorderTest, RecordSampledAdmitsTailOffCadence) {
  FlightRecorderOptions options;
  options.capacity = 64;
  options.num_stripes = 1;
  options.slowest_per_kind = 2;
  options.sample_every = 8;
  FlightRecorder recorder(options);

  const auto at = [&](uint64_t seq, int64_t duration_us, bool error) {
    const Clock::time_point start =
        recorder.epoch() + std::chrono::microseconds(seq);
    recorder.RecordSampled(seq, 0, "serve/observe", start,
                           start + std::chrono::microseconds(duration_us),
                           error, false);
  };
  at(1, 1, /*error=*/true);   // off-cadence error: error ring only
  at(2, 500, /*error=*/false);  // off-cadence slow: slowest table only
  at(8, 1, /*error=*/false);  // cadence rep: main ring

  const FlightRecorderStats stats = recorder.Stats();
  EXPECT_EQ(stats.errors_retained, 1u);
  EXPECT_EQ(stats.ring_size, 1u);  // only the cadence rep
  EXPECT_EQ(stats.recorded, 8u);   // one block accounted
  const std::vector<RequestRecord> retained = recorder.Retained();
  // Error + both slow-table rows (the error and the 500us request are
  // candidates while the table fills).
  EXPECT_GE(retained.size(), 2u);
  bool saw_error = false;
  bool saw_slow = false;
  for (const RequestRecord& record : retained) {
    if (record.error) saw_error = true;
    if (record.duration_ns == 500 * 1000) saw_slow = true;
  }
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(saw_slow);
}

TEST(FlightRecorderTest, JsonDumpCarriesArgsAndDeduplicatesRetained) {
  FlightRecorderOptions options;
  options.capacity = 8;
  options.num_stripes = 1;
  options.slowest_per_kind = 2;
  FlightRecorder recorder(options);

  RecordAt(recorder, 2, "serve/recommend", 5, 123);
  RecordAt(recorder, 1, "serve/level", 50, 4, /*error=*/true, /*shed=*/true);

  const std::string json = RenderFlightRecorderJson(recorder);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"serve/recommend\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve/level\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"error\":true"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"retained\":true"), std::string::npos);
  // Both records sit in the ring AND the slow tables / error ring; the
  // dump must emit each id exactly once.
  size_t events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
}

TEST(FlightRecorderTest, CapacitySmallerThanStripesStillWorks) {
  FlightRecorderOptions options;
  options.capacity = 2;
  options.num_stripes = 16;  // shrunk until each stripe holds >= 1 record
  FlightRecorder recorder(options);
  EXPECT_LE(recorder.options().num_stripes, 2u);
  for (int i = 0; i < 8; ++i) {
    RecordAt(recorder, 0, "serve/observe", i, 1);
  }
  EXPECT_GE(recorder.Recent().size(), 1u);
  EXPECT_LE(recorder.Recent().size(), 2u);
}

// 8 threads recording concurrently: totals are exact, every surviving
// record is intact (no torn kind_name / id), and readers can snapshot
// mid-flight. Doubles as the race detector under UPSKILL_SANITIZE=thread.
TEST(FlightRecorderTest, ConcurrentRecordersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  FlightRecorderOptions options;
  options.capacity = 1024;
  options.num_stripes = 8;
  FlightRecorder recorder(options);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool error = (i % 997) == 0;
        RecordAt(recorder, t % FlightRecorder::kMaxKinds, "serve/observe",
                 /*start_us=*/static_cast<int64_t>(t) * kPerThread + i,
                 /*duration_us=*/1 + i % 7, error);
      }
    });
  }
  // Interleaved reads while writers run.
  for (int i = 0; i < 20; ++i) {
    const FlightRecorderStats stats = recorder.Stats();
    EXPECT_LE(stats.recorded, static_cast<uint64_t>(kThreads * kPerThread));
    (void)recorder.Recent();
    (void)recorder.Retained();
  }
  for (std::thread& thread : threads) thread.join();

  const FlightRecorderStats stats = recorder.Stats();
  EXPECT_EQ(stats.recorded, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.errors_retained,
            static_cast<uint64_t>(kThreads * ((kPerThread + 996) / 997)));
  for (const RequestRecord& record : recorder.Recent()) {
    EXPECT_STREQ(record.kind_name, "serve/observe");
    EXPECT_NE(record.id, 0u);
    EXPECT_GE(record.duration_ns, 1000);
  }
}

// Satellite regression: overflowing the phase-trace buffer must bump
// both the recorder's own dropped() counter and the exported
// upskill_trace_dropped_total metric by the same amount.
TEST(TraceDroppedTest, OverflowCountsDropsInMetricAndRecorder) {
  TraceRecorder& recorder = TraceRecorder::Global();
  Counter& dropped_total =
      MetricsRegistry::Global().GetCounter("upskill_trace_dropped_total");

  recorder.SetCapacityForTest(4);
  recorder.Enable();
  const uint64_t metric_before = dropped_total.Value();
  for (int i = 0; i < 10; ++i) {
    Span span("obs_test/overflow");
  }
  recorder.Disable();

  EXPECT_EQ(recorder.Events().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_EQ(dropped_total.Value() - metric_before, 6u);

  // Enable() starts a fresh run: dropped() resets, the cumulative
  // process-level counter does not.
  recorder.Enable();
  recorder.Disable();
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(dropped_total.Value() - metric_before, 6u);
  recorder.SetCapacityForTest(TraceRecorder::kMaxEvents);
}

}  // namespace
}  // namespace obs
}  // namespace upskill
