// TraceRecorder + Span: spans only record while the recorder is enabled,
// events carry the shard/iteration tags, the Chrome-trace JSON is well
// formed, and a real training run emits one span per trainer phase per
// iteration (the contract behind `train --trace-out`).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "obs/metrics.h"

namespace upskill {
namespace obs {
namespace {

// Every test in this binary shares the global recorder; leave it disabled
// and empty on exit.
class RecorderGuard {
 public:
  ~RecorderGuard() { TraceRecorder::Global().Disable(); }
};

size_t CountSpans(const std::vector<TraceEvent>& events, const char* name) {
  size_t count = 0;
  for (const TraceEvent& event : events) {
    if (std::string(event.name) == name) ++count;
  }
  return count;
}

TEST(TraceRecorderTest, DisabledRecorderCollectsNothing) {
  RecorderGuard guard;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  { Span span("obs_test/ignored"); }
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(TraceRecorderTest, SpanRecordsNameTagsAndNonNegativeTimes) {
  RecorderGuard guard;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  {
    Span span("obs_test/phase", /*shard=*/3, /*iteration=*/7);
    const double first = span.StopSeconds();
    EXPECT_GE(first, 0.0);
    // Idempotent: a second stop neither re-records nor re-times.
    EXPECT_EQ(span.StopSeconds(), first);
  }
  { UPSKILL_SPAN("obs_test/macro"); }
  { UPSKILL_SPAN_SHARD("obs_test/macro_shard", 5); }
  recorder.Disable();

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "obs_test/phase");
  EXPECT_EQ(events[0].shard, 3);
  EXPECT_EQ(events[0].iteration, 7);
  EXPECT_GE(events[0].start_ns, 0);
  EXPECT_GE(events[0].duration_ns, 0);
  EXPECT_GE(events[0].thread, 0);
  EXPECT_STREQ(events[1].name, "obs_test/macro");
  EXPECT_EQ(events[1].shard, -1);
  EXPECT_EQ(events[2].shard, 5);
}

TEST(TraceRecorderTest, EnableClearsPreviousEvents) {
  RecorderGuard guard;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  { Span span("obs_test/old"); }
  recorder.Enable();  // restart: previous run's spans are gone
  { Span span("obs_test/new"); }
  recorder.Disable();
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "obs_test/new");
}

TEST(TraceRecorderTest, ThreadsGetDistinctDenseIds) {
  const int here = CurrentThreadId();
  EXPECT_GE(here, 0);
  int other = -1;
  std::thread thread([&other] { other = CurrentThreadId(); });
  thread.join();
  EXPECT_GE(other, 0);
  EXPECT_NE(here, other);
  // Stable per thread.
  EXPECT_EQ(CurrentThreadId(), here);
}

TEST(ChromeTraceTest, RendersCompleteEventsWithArgs) {
  RecorderGuard guard;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  { Span span("obs_test/render", /*shard=*/2, /*iteration=*/4); }
  recorder.Disable();
  const std::string json = RenderChromeTrace(recorder);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"obs_test/render\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\":2"), std::string::npos);
  EXPECT_NE(json.find("\"iteration\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

// The tentpole contract: a training run under an enabled recorder emits
// one "train/<phase>" span per iteration (update may be skipped on the
// final, converged iteration — that is the trainer's long-standing
// control flow) plus exactly one init span.
TEST(ChromeTraceTest, TrainingEmitsPhaseSpansPerIteration) {
  RecorderGuard guard;
  datagen::SyntheticConfig data_config;
  data_config.num_users = 60;
  data_config.num_items = 80;
  data_config.mean_sequence_length = 15.0;
  data_config.seed = 20260807;
  const auto data = datagen::GenerateSynthetic(data_config);
  ASSERT_TRUE(data.ok());

  SkillModelConfig config;
  config.num_levels = 3;
  config.max_iterations = 5;
  config.min_init_actions = 5;

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  const auto result = Trainer(config).Train(data.value().dataset);
  recorder.Disable();
  ASSERT_TRUE(result.ok());
  const size_t iterations = static_cast<size_t>(result.value().iterations);
  ASSERT_GE(iterations, 1u);

  const std::vector<TraceEvent> events = recorder.Events();
  EXPECT_EQ(CountSpans(events, "train/init"), 1u);
  EXPECT_EQ(CountSpans(events, "train/cache"), iterations);
  EXPECT_EQ(CountSpans(events, "train/assignment"), iterations);
  const size_t updates = CountSpans(events, "train/update");
  EXPECT_GE(updates, iterations - 1);
  EXPECT_LE(updates, iterations);
  // Phase spans are iteration-tagged so the trace groups cleanly.
  for (const TraceEvent& event : events) {
    if (std::string(event.name) == "train/cache") {
      EXPECT_GE(event.iteration, 0);
      EXPECT_LT(event.iteration, static_cast<int64_t>(iterations));
    }
  }
}

}  // namespace
}  // namespace obs
}  // namespace upskill
