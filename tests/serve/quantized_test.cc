// Quantized (--quantized) serving path: the int16 fixed-point forward DP
// must track the double reference within the documented error budget —
// levels within +/-1 at every step, top-1 recommendation agreement at or
// above 99.9% — across datagen scenarios, and snapshot hot-swaps must
// requantize and carry session accumulators with the same semantics as
// the double path (carry on same-S swaps, reset on an S change; a swap to
// an identical snapshot is observationally a no-op).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/difficulty.h"
#include "core/dp.h"
#include "core/recommend.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace upskill {
namespace serve {
namespace {

struct Scenario {
  std::string name;
  datagen::SyntheticConfig data;
  int train_levels = 0;  // 0: match data.num_levels
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "baseline";
    s.data.num_levels = 4;
    s.data.num_users = 60;
    s.data.num_items = 80;
    s.data.mean_sequence_length = 30.0;
    s.data.seed = 71;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "breaks_and_fast_users";
    s.data.num_levels = 5;
    s.data.num_users = 50;
    s.data.num_items = 100;
    s.data.mean_sequence_length = 35.0;
    s.data.fast_user_fraction = 0.3;
    s.data.break_probability = 0.05;
    s.data.seed = 72;
    scenarios.push_back(s);
  }
  return scenarios;
}

// Trains on the scenario's dataset and snapshots the result; returns the
// snapshot path (caller removes it).
struct TrainedScenario {
  std::unique_ptr<Dataset> dataset;
  std::string snapshot_path;
  std::shared_ptr<const ServingModel> serving;
};

TrainedScenario Materialize(const Scenario& scenario, const char* tag) {
  TrainedScenario out;
  auto data = datagen::GenerateSynthetic(scenario.data);
  EXPECT_TRUE(data.ok());
  out.dataset = std::make_unique<Dataset>(std::move(data).value().dataset);

  SkillModelConfig config;
  config.num_levels = scenario.train_levels > 0 ? scenario.train_levels
                                                : scenario.data.num_levels;
  config.min_init_actions = 15;
  config.max_iterations = 5;
  auto trained = Trainer(config).Train(*out.dataset);
  EXPECT_TRUE(trained.ok());
  const SkillModel& model = trained.value().model;
  const SkillAssignments assignments = AssignSkills(*out.dataset, model);
  auto difficulty = EstimateDifficultyByGeneration(
      out.dataset->items(), model, DifficultyPrior::kEmpirical, assignments);
  EXPECT_TRUE(difficulty.ok());
  auto snapshot =
      MakeSnapshot(model, out.dataset->items(), difficulty.value());
  EXPECT_TRUE(snapshot.ok());
  out.snapshot_path =
      (std::filesystem::temp_directory_path() /
       ("upskill_quantized_" + std::to_string(::getpid()) + "_" +
        scenario.name + "_" + tag + ".snap"))
          .string();
  EXPECT_TRUE(SaveSnapshot(snapshot.value(), out.snapshot_path).ok());
  auto serving = ServingModel::FromSnapshotFile(out.snapshot_path);
  EXPECT_TRUE(serving.ok()) << serving.status().ToString();
  out.serving = serving.value();
  return out;
}

TEST(QuantizedServeTest, LevelsWithinOneAndTopPickAgreesAcrossScenarios) {
  for (const Scenario& scenario : Scenarios()) {
    SCOPED_TRACE(scenario.name);
    TrainedScenario t = Materialize(scenario, "main");
    Server exact(t.serving);
    Server quantized(t.serving, /*num_shards=*/64, /*quantized=*/true);
    ASSERT_FALSE(exact.quantized());
    ASSERT_TRUE(quantized.quantized());

    UpskillRecommendationOptions options;
    options.max_results = 5;
    options.exclude_tried = false;

    // The +/-1 bound is stated against the double forward column: when
    // the double column has near-tied lanes (margin below the accumulated
    // fixed-point error), the quantized argmax may legitimately land on
    // any near-co-optimal level, even one further than +/-1 from the
    // double argmax. The test therefore replays the double column itself
    // (free start, zero costs — the snapshot carries no transitions) and
    // accepts a distant level only when it is within kTieMargin of the
    // column's maximum.
    ASSERT_EQ(t.serving->transitions(), nullptr);
    constexpr double kTieMargin = 0.25;  // nats; >> accumulated quant error
    const int num_levels = t.serving->num_levels();
    std::vector<std::vector<double>> columns(
        static_cast<size_t>(t.dataset->num_users()));
    std::vector<double> next(static_cast<size_t>(num_levels));

    size_t steps = 0;
    size_t level_exact_matches = 0;
    size_t level_within_one = 0;
    size_t top1_comparisons = 0;
    size_t top1_matches = 0;
    for (UserId u = 0; u < t.dataset->num_users(); ++u) {
      const auto& sequence = t.dataset->sequence(u);
      if (sequence.empty()) continue;
      const std::string name = "user" + std::to_string(u);
      std::vector<double>& column = columns[static_cast<size_t>(u)];
      for (const Action& action : sequence) {
        const auto exact_level =
            exact.Observe(name, action.item, action.time, true);
        const auto quantized_level =
            quantized.Observe(name, action.item, action.time, true);
        ASSERT_TRUE(exact_level.ok()) << exact_level.status().ToString();
        ASSERT_TRUE(quantized_level.ok())
            << quantized_level.status().ToString();
        if (column.empty()) {
          column.resize(static_cast<size_t>(num_levels));
          MonotoneForwardStart(t.serving->ItemRow(action.item), {}, column);
        } else {
          MonotoneForwardStep(column, t.serving->ItemRow(action.item), 0.0,
                              0.0, false, 0.0, next);
          column.swap(next);
        }
        ASSERT_EQ(MonotoneForwardLevel(column), exact_level.value().level);
        const int level_gap =
            std::abs(quantized_level.value().level - exact_level.value().level);
        if (level_gap > 1) {
          const double max =
              *std::max_element(column.begin(), column.end());
          const double at_quantized =
              column[static_cast<size_t>(quantized_level.value().level - 1)];
          ASSERT_LE(max - at_quantized, kTieMargin)
              << "user " << u << " after " << exact_level.value().actions
              << " actions: quantized level "
              << quantized_level.value().level << " vs double level "
              << exact_level.value().level << " without a near-tie";
        }
        ++steps;
        level_within_one += level_gap <= 1;
        level_exact_matches +=
            quantized_level.value().level == exact_level.value().level;

        const auto exact_picks = exact.Recommend(name, options);
        const auto quantized_picks = quantized.Recommend(name, options);
        ASSERT_TRUE(exact_picks.ok());
        ASSERT_TRUE(quantized_picks.ok());
        ++top1_comparisons;
        const bool both_empty =
            exact_picks.value().empty() && quantized_picks.value().empty();
        top1_matches +=
            both_empty ||
            (!exact_picks.value().empty() && !quantized_picks.value().empty() &&
             exact_picks.value()[0].item == quantized_picks.value()[0].item);
      }
    }
    ASSERT_GT(steps, 1000u) << "scenario too small to be meaningful";
    // Top-1 agreement budget from the issue: >= 99.9%.
    EXPECT_GE(static_cast<double>(top1_matches),
              0.999 * static_cast<double>(top1_comparisons))
        << top1_matches << "/" << top1_comparisons;
    // Not a contract, but if exact-level agreement ever collapses the
    // quantization is broken even when +/-1 still holds.
    EXPECT_GE(static_cast<double>(level_exact_matches),
              0.99 * static_cast<double>(steps))
        << level_exact_matches << "/" << steps;
    // The near-tie escape hatch above must stay an escape hatch: +/-1
    // itself holds on (at least) 99.9% of steps.
    EXPECT_GE(static_cast<double>(level_within_one),
              0.999 * static_cast<double>(steps))
        << level_within_one << "/" << steps;

    std::filesystem::remove(t.snapshot_path);
  }
}

TEST(QuantizedServeTest, RecommendationsComeFromTheDoubleView) {
  // Rankings and difficulties are never quantized: whenever the two
  // servers agree on the level, their shortlists must be identical down
  // to the double-precision scores.
  const Scenario scenario = Scenarios()[0];
  TrainedScenario t = Materialize(scenario, "ranks");
  Server exact(t.serving);
  Server quantized(t.serving, 64, true);
  UpskillRecommendationOptions options;
  options.max_results = 10;
  options.exclude_tried = false;
  int compared = 0;
  for (UserId u = 0; u < t.dataset->num_users() && compared < 500; ++u) {
    const auto& sequence = t.dataset->sequence(u);
    if (sequence.empty()) continue;
    const std::string name = "user" + std::to_string(u);
    for (const Action& action : sequence) {
      const auto exact_level =
          exact.Observe(name, action.item, action.time, true);
      const auto quantized_level =
          quantized.Observe(name, action.item, action.time, true);
      ASSERT_TRUE(exact_level.ok());
      ASSERT_TRUE(quantized_level.ok());
      if (exact_level.value().level != quantized_level.value().level) continue;
      const auto a = exact.Recommend(name, options);
      const auto b = quantized.Recommend(name, options);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a.value().size(), b.value().size());
      for (size_t i = 0; i < a.value().size(); ++i) {
        EXPECT_EQ(a.value()[i].item, b.value()[i].item);
        EXPECT_EQ(a.value()[i].difficulty, b.value()[i].difficulty);
        EXPECT_EQ(a.value()[i].log_prob, b.value()[i].log_prob);
      }
      ++compared;
    }
  }
  EXPECT_GT(compared, 100);
  std::filesystem::remove(t.snapshot_path);
}

TEST(QuantizedServeTest, MidSessionSwapMatchesFreshSessionReplay) {
  // Swap to an identical snapshot halfway through every session, then
  // finish the replay: every post-swap level must equal the one a server
  // that never swapped reports for the same prefix. This is the
  // observable form of the accumulator-carry rule — requantization plus
  // the fixed global accumulator scale make the swap transparent.
  const Scenario scenario = Scenarios()[0];
  TrainedScenario t = Materialize(scenario, "swap");
  Server swapped(t.serving, 64, true);
  Server control(t.serving, 64, true);

  // First half of every session.
  std::vector<size_t> halves(static_cast<size_t>(t.dataset->num_users()));
  for (UserId u = 0; u < t.dataset->num_users(); ++u) {
    const auto& sequence = t.dataset->sequence(u);
    halves[static_cast<size_t>(u)] = sequence.size() / 2;
    const std::string name = "user" + std::to_string(u);
    for (size_t n = 0; n < halves[static_cast<size_t>(u)]; ++n) {
      ASSERT_TRUE(
          swapped.Observe(name, sequence[n].item, sequence[n].time, true).ok());
      ASSERT_TRUE(
          control.Observe(name, sequence[n].item, sequence[n].time, true).ok());
    }
  }
  const size_t sessions_before = swapped.num_sessions();
  ASSERT_TRUE(swapped.SwapSnapshotFile(t.snapshot_path).ok());
  EXPECT_EQ(swapped.num_sessions(), sessions_before);  // same S: carried

  size_t post_swap_steps = 0;
  for (UserId u = 0; u < t.dataset->num_users(); ++u) {
    const auto& sequence = t.dataset->sequence(u);
    const std::string name = "user" + std::to_string(u);
    for (size_t n = halves[static_cast<size_t>(u)]; n < sequence.size(); ++n) {
      const auto after =
          swapped.Observe(name, sequence[n].item, sequence[n].time, true);
      const auto fresh =
          control.Observe(name, sequence[n].item, sequence[n].time, true);
      ASSERT_TRUE(after.ok()) << after.status().ToString();
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(after.value().level, fresh.value().level)
          << "user " << u << " action " << n;
      ++post_swap_steps;
    }
  }
  EXPECT_GT(post_swap_steps, 100u);
  std::filesystem::remove(t.snapshot_path);
}

TEST(QuantizedServeTest, SwapToDifferentModelKeepsQuantizedNearDouble) {
  // Cross-model swap: sessions carry their accumulator into the new view
  // exactly like the double path carries its column. The quantized
  // server must keep tracking a double server that performs the very
  // same swap, within the usual +/-1 budget.
  std::vector<Scenario> scenarios = Scenarios();
  Scenario retrain = scenarios[0];
  retrain.data.seed = 4242;  // different data -> different parameters
  TrainedScenario first = Materialize(scenarios[0], "xswap_a");
  TrainedScenario second = Materialize(retrain, "xswap_b");
  ASSERT_EQ(first.serving->num_levels(), second.serving->num_levels());

  Server exact(first.serving);
  Server quantized(first.serving, 64, true);
  for (UserId u = 0; u < first.dataset->num_users(); ++u) {
    const auto& sequence = first.dataset->sequence(u);
    const std::string name = "user" + std::to_string(u);
    for (size_t n = 0; n < sequence.size() / 2; ++n) {
      ASSERT_TRUE(
          exact.Observe(name, sequence[n].item, sequence[n].time, true).ok());
      ASSERT_TRUE(
          quantized.Observe(name, sequence[n].item, sequence[n].time, true)
              .ok());
    }
  }
  ASSERT_TRUE(exact.SwapSnapshotFile(second.snapshot_path).ok());
  ASSERT_TRUE(quantized.SwapSnapshotFile(second.snapshot_path).ok());
  size_t checked = 0;
  for (UserId u = 0; u < first.dataset->num_users(); ++u) {
    const auto& sequence = first.dataset->sequence(u);
    const std::string name = "user" + std::to_string(u);
    for (size_t n = sequence.size() / 2; n < sequence.size(); ++n) {
      const auto a = exact.Observe(name, sequence[n].item, sequence[n].time,
                                   true);
      const auto b = quantized.Observe(name, sequence[n].item,
                                       sequence[n].time, true);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_NEAR(b.value().level, a.value().level, 1)
          << "user " << u << " action " << n;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
  std::filesystem::remove(first.snapshot_path);
  std::filesystem::remove(second.snapshot_path);
}

TEST(QuantizedServeTest, SwapAcrossLevelCountsResetsQuantizedSessions) {
  std::vector<Scenario> scenarios = Scenarios();
  TrainedScenario four = Materialize(scenarios[0], "reset4");  // S = 4
  Scenario three = scenarios[0];
  three.train_levels = 3;
  TrainedScenario other = Materialize(three, "reset3");  // S = 3
  ASSERT_NE(four.serving->num_levels(), other.serving->num_levels());

  Server server(four.serving, 64, true);
  ASSERT_TRUE(server.Observe("reset-me", 0, 1, true).ok());
  ASSERT_EQ(server.num_sessions(), 1u);
  ASSERT_TRUE(server.SwapSnapshotFile(other.snapshot_path).ok());
  EXPECT_EQ(server.num_sessions(), 0u);
  const auto fresh = server.Observe("reset-me", 0, 2, true);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GE(fresh.value().level, 1);
  EXPECT_LE(fresh.value().level, 3);
  std::filesystem::remove(four.snapshot_path);
  std::filesystem::remove(other.snapshot_path);
}

}  // namespace
}  // namespace serve
}  // namespace upskill
