// End-to-end integration test of the serving pipeline through the real
// binary: generate -> train -> snapshot -> `upskill_cli serve` over a
// scripted stdin session, including a mid-session snapshot swap (same-S
// swap keeps the session; an S-changing swap resets it). The binary path
// is injected by CMake as UPSKILL_CLI_PATH.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace upskill {
namespace {

class ServeCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("upskill_serve_cli_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Runs the CLI with `argv_tail`, stdout+stderr to a log file; fails the
  // test (with the log) on a non-zero exit.
  void Run(const std::string& argv_tail) {
    const std::string log = dir_ + "/cmd.log";
    const std::string command = std::string(UPSKILL_CLI_PATH) + " " +
                                argv_tail + " > " + log + " 2>&1";
    const int status = std::system(command.c_str());
    ASSERT_EQ(status, 0) << command << "\n" << Slurp(log);
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static std::vector<std::string> Lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(text);
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  std::string dir_;
};

TEST_F(ServeCliTest, TrainSnapshotServeRoundTripWithMidSessionSwap) {
  Run("generate synthetic " + dir_ + "/data --users 40 --seed 11");
  Run("train " + dir_ + "/data " + dir_ + "/model.csv --levels 4");
  Run("snapshot " + dir_ + "/data " + dir_ + "/model.csv " + dir_ +
      "/model.snap --levels 4 --transitions");
  Run("train " + dir_ + "/data " + dir_ + "/model3.csv --levels 3");
  Run("snapshot " + dir_ + "/data " + dir_ + "/model3.csv " + dir_ +
      "/model3.snap --levels 3");

  {
    std::ofstream script(dir_ + "/input.txt");
    script << "observe alice 3 100\n"
           << "observe alice 5 200\n"
           << "level alice\n"
           << "recommend alice 5\n"
           << "difficulty 3\n"
           << "swap " << dir_ << "/model.snap\n"   // same S: session lives
           << "level alice\n"
           << "swap " << dir_ << "/model3.snap\n"  // S change: sessions reset
           << "level alice\n"                       // -> error
           << "observe alice 3 300\n"               // fresh session, S = 3
           << "batch 2\n"
           << "observe bob 1 10\n"
           << "observe carol 2 20\n"
           << "no-such-command\n"
           << "quit\n";
  }
  const std::string out = dir_ + "/output.txt";
  const std::string command = std::string(UPSKILL_CLI_PATH) + " serve " +
                              dir_ + "/model.snap < " + dir_ +
                              "/input.txt > " + out + " 2> /dev/null";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::vector<std::string> lines = Lines(Slurp(out));
  ASSERT_EQ(lines.size(), 14u) << Slurp(out);
  EXPECT_EQ(lines[0].substr(0, 9), "ok level=");           // observe alice
  EXPECT_EQ(lines[1].substr(0, 9), "ok level=");           // observe alice
  EXPECT_EQ(lines[2].substr(0, 9), "ok level=");           // level alice
  EXPECT_NE(lines[2].find("actions=2"), std::string::npos) << lines[2];
  EXPECT_EQ(lines[3].substr(0, 5), "ok n=");               // recommend
  EXPECT_EQ(lines[4].substr(0, 14), "ok difficulty=");     // difficulty
  EXPECT_EQ(lines[5].substr(0, 20), "ok swapped levels=4 ");
  EXPECT_NE(lines[6].find("actions=2"), std::string::npos)
      << "same-S swap must keep the session: " << lines[6];
  EXPECT_EQ(lines[7].substr(0, 20), "ok swapped levels=3 ");
  EXPECT_EQ(lines[8].substr(0, 13), "ERR NotFound ")
      << "S-changing swap must reset sessions: " << lines[8];
  EXPECT_NE(lines[9].find("actions=1"), std::string::npos) << lines[9];
  EXPECT_EQ(lines[10].substr(0, 9), "ok level=");          // batch: bob
  EXPECT_EQ(lines[11].substr(0, 9), "ok level=");          // batch: carol
  EXPECT_EQ(lines[12].substr(0, 20), "ERR InvalidArgument ")
      << "unknown command must use the machine-parseable ERR line: "
      << lines[12];
  EXPECT_EQ(lines[13], "ok bye");
}

TEST_F(ServeCliTest, StatsEmitsPrometheusExposition) {
  Run("generate synthetic " + dir_ + "/data --users 30 --seed 13");
  Run("train " + dir_ + "/data " + dir_ + "/model.csv --levels 3");
  Run("snapshot " + dir_ + "/data " + dir_ + "/model.csv " + dir_ +
      "/model.snap --levels 3");

  {
    std::ofstream script(dir_ + "/input.txt");
    script << "observe alice 1 100\n"
           << "observe bob 2 200\n"
           << "level ghost\n"   // NotFound -> error counter for kind=level
           << "evict 150\n"     // evicts alice (last_time 100 < 150)
           << "stats\n"
           << "quit\n";
  }
  const std::string out = dir_ + "/output.txt";
  const std::string command = std::string(UPSKILL_CLI_PATH) + " serve " +
                              dir_ + "/model.snap < " + dir_ +
                              "/input.txt > " + out + " 2> /dev/null";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string text = Slurp(out);
  const std::vector<std::string> lines = Lines(text);
  ASSERT_GE(lines.size(), 6u) << text;
  EXPECT_EQ(lines[2].substr(0, 13), "ERR NotFound ") << lines[2];
  EXPECT_EQ(lines[3], "ok evicted=1 sessions=1");
  // The stats response: summary header line, then the full Prometheus
  // exposition terminated by "# EOF", then quit's "ok bye".
  EXPECT_NE(text.find("ok sessions=1 shards="), std::string::npos) << text;
  EXPECT_NE(
      text.find("# TYPE upskill_serve_request_latency_seconds histogram"),
      std::string::npos);
  EXPECT_NE(text.find("upskill_serve_request_latency_seconds_bucket{"
                      "kind=\"observe\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("upskill_serve_request_latency_seconds_count{"
                      "kind=\"observe\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_serve_live_sessions 1"), std::string::npos);
  EXPECT_NE(text.find("upskill_serve_sessions_evicted_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_serve_snapshot_swaps_total 0"),
            std::string::npos);
  EXPECT_NE(text.find("upskill_serve_request_errors_total{kind=\"level\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("\n# EOF\n"), std::string::npos);
  EXPECT_EQ(lines.back(), "ok bye");
}

TEST_F(ServeCliTest, TrainWritesTraceAndMetricsDumps) {
  Run("generate synthetic " + dir_ + "/data --users 30 --seed 17");
  Run("train " + dir_ + "/data " + dir_ + "/model.csv --levels 3 " +
      "--trace-out " + dir_ + "/trace.json --metrics-out " + dir_ +
      "/metrics.prom");

  const std::string trace = Slurp(dir_ + "/trace.json");
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  // One span per trainer phase per iteration.
  EXPECT_NE(trace.find("\"name\":\"train/init\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"train/cache\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"train/assignment\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string metrics = Slurp(dir_ + "/metrics.prom");
  ASSERT_FALSE(metrics.empty());
  EXPECT_NE(metrics.find("# TYPE upskill_train_phase_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("upskill_train_phase_seconds_count{"
                         "phase=\"assignment\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("upskill_train_iterations_total"),
            std::string::npos);
  EXPECT_NE(metrics.rfind("# EOF\n"), std::string::npos);
}

TEST_F(ServeCliTest, ServeRejectsMissingSnapshot) {
  const std::string command = std::string(UPSKILL_CLI_PATH) + " serve " +
                              dir_ + "/nope.snap < /dev/null > /dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}

TEST_F(ServeCliTest, ValueFlagsWithoutValuesAreUsageErrors) {
  const std::string log = dir_ + "/flag.log";
  const std::string command = std::string(UPSKILL_CLI_PATH) +
                              " train somewhere model.csv --levels --em > " +
                              log + " 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
  EXPECT_NE(Slurp(log).find("--levels requires a value"), std::string::npos)
      << Slurp(log);
}

}  // namespace
}  // namespace upskill
