// Server front end: request parsing, the observe/level/recommend/
// difficulty surface, agreement with the batch pipeline, and snapshot
// swaps (sessions survive a same-S swap, reset on an S change).

#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "core/difficulty.h"
#include "core/recommend.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "serve/snapshot.h"

namespace upskill {
namespace serve {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 50;
    data_config.num_items = 100;
    data_config.mean_sequence_length = 25.0;
    data_config.seed = 99;
    auto data = datagen::GenerateSynthetic(data_config);
    ASSERT_TRUE(data.ok());
    dataset_ = std::make_unique<Dataset>(std::move(data).value().dataset);

    SkillModelConfig config;
    config.num_levels = 4;
    config.min_init_actions = 15;
    config.max_iterations = 6;
    auto trained = Trainer(config).Train(*dataset_);
    ASSERT_TRUE(trained.ok());
    model_ = std::make_unique<SkillModel>(std::move(trained).value().model);
    assignments_ = AssignSkills(*dataset_, *model_);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset_->items(), *model_, DifficultyPrior::kEmpirical, assignments_);
    ASSERT_TRUE(difficulty.ok());
    difficulty_ = std::move(difficulty).value();

    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("upskill_server_" + std::to_string(::getpid())))
            .string();
    path_ = stem + ".snap";
    path_other_s_ = stem + "_s3.snap";

    auto snapshot = MakeSnapshot(*model_, dataset_->items(), difficulty_);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(SaveSnapshot(snapshot.value(), path_).ok());

    // A second snapshot with a different level count, for swap-reset tests.
    SkillModelConfig config3 = config;
    config3.num_levels = 3;
    auto trained3 = Trainer(config3).Train(*dataset_);
    ASSERT_TRUE(trained3.ok());
    const SkillAssignments assignments3 =
        AssignSkills(*dataset_, trained3.value().model);
    auto difficulty3 = EstimateDifficultyByGeneration(
        dataset_->items(), trained3.value().model, DifficultyPrior::kEmpirical,
        assignments3);
    ASSERT_TRUE(difficulty3.ok());
    auto snapshot3 = MakeSnapshot(trained3.value().model, dataset_->items(),
                                  difficulty3.value());
    ASSERT_TRUE(snapshot3.ok());
    ASSERT_TRUE(SaveSnapshot(snapshot3.value(), path_other_s_).ok());

    auto serving = ServingModel::FromSnapshotFile(path_);
    ASSERT_TRUE(serving.ok()) << serving.status().ToString();
    serving_ = serving.value();
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_other_s_);
  }

  // Replays user `u`'s full recorded sequence into `server` under the name
  // `name`, asserting each step succeeds, and returns the final level.
  int Replay(Server& server, UserId u, const std::string& name) {
    int level = 0;
    for (const Action& action : dataset_->sequence(u)) {
      const auto result = server.Observe(name, action.item, action.time, true);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      level = result.value().level;
    }
    return level;
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SkillModel> model_;
  SkillAssignments assignments_;
  std::vector<double> difficulty_;
  std::string path_;
  std::string path_other_s_;
  std::shared_ptr<const ServingModel> serving_;
};

TEST_F(ServerTest, ObservedLevelsMatchBatchAssignmentTails) {
  // The snapshot carries no transitions, so the batch counterpart is the
  // plain AssignSkills run — its per-user tail level must equal the level
  // the server reports after replaying that user's history.
  Server server(serving_);
  size_t replayed = 0;
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    if (dataset_->sequence(u).empty()) continue;
    const std::string name = "user" + std::to_string(u);
    const int streamed = Replay(server, u, name);
    EXPECT_EQ(streamed, assignments_[static_cast<size_t>(u)].back())
        << "user " << u;
    const auto level = server.CurrentLevel(name);
    ASSERT_TRUE(level.ok());
    EXPECT_EQ(level.value().level, streamed);
    EXPECT_EQ(level.value().actions, dataset_->sequence(u).size());
    ++replayed;
  }
  EXPECT_EQ(server.num_sessions(), replayed);
  EXPECT_GT(replayed, 0u);
}

TEST_F(ServerTest, RecommendMatchesBatchRecommender) {
  Server server(serving_);
  UpskillRecommendationOptions options;
  options.max_results = 8;
  options.stretch = 1.5;
  options.exclude_tried = false;  // sessions carry no item history
  int compared = 0;
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    if (dataset_->sequence(u).empty()) continue;
    const std::string name = "user" + std::to_string(u);
    Replay(server, u, name);
    const auto batch = RecommendForUpskilling(*dataset_, *model_,
                                              assignments_, difficulty_, u,
                                              options);
    ASSERT_TRUE(batch.ok());
    const auto served = server.Recommend(name, options);
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.value().size(), batch.value().size()) << "user " << u;
    for (size_t i = 0; i < batch.value().size(); ++i) {
      EXPECT_EQ(served.value()[i].item, batch.value()[i].item);
      EXPECT_EQ(served.value()[i].difficulty, batch.value()[i].difficulty);
      EXPECT_EQ(served.value()[i].log_prob, batch.value()[i].log_prob);
    }
    compared += static_cast<int>(batch.value().size());
  }
  EXPECT_GT(compared, 0) << "test needs at least one non-empty shortlist";
}

TEST_F(ServerTest, TopLevelUserGetsEmptyListNotError) {
  const int top = serving_->num_levels();
  UpskillRecommendationOptions options;
  const auto picks = serving_->Recommend(top, options);
  ASSERT_TRUE(picks.ok()) << picks.status().ToString();
  EXPECT_TRUE(picks.value().empty());
}

TEST_F(ServerTest, NanDifficultiesAreNeverRecommended) {
  // Rebuild the snapshot with a handful of difficulties knocked out.
  auto snapshot = MakeSnapshot(*model_, dataset_->items(), difficulty_);
  ASSERT_TRUE(snapshot.ok());
  ModelSnapshot patched = std::move(snapshot).value();
  for (size_t i = 0; i < patched.difficulty.size(); i += 3) {
    patched.difficulty[i] = std::nan("");
  }
  auto serving = ServingModel::FromSnapshot(std::move(patched));
  ASSERT_TRUE(serving.ok());
  UpskillRecommendationOptions options;
  options.max_results = 1000;
  options.stretch = 10.0;  // widest window: everything non-NaN is eligible
  for (int level = 1; level < serving.value()->num_levels(); ++level) {
    const auto picks = serving.value()->Recommend(level, options);
    ASSERT_TRUE(picks.ok());
    for (const UpskillRecommendation& pick : picks.value()) {
      EXPECT_NE(static_cast<size_t>(pick.item) % 3, 0u)
          << "item " << pick.item << " has NaN difficulty";
      EXPECT_FALSE(std::isnan(pick.difficulty));
    }
    EXPECT_FALSE(picks.value().empty());
  }
}

TEST_F(ServerTest, RejectsBadRequests) {
  Server server(serving_);
  EXPECT_FALSE(server.Observe("u", -1, 0, true).ok());
  EXPECT_FALSE(server.Observe("u", serving_->num_items(), 0, true).ok());
  EXPECT_FALSE(server.CurrentLevel("never-seen").ok());
  EXPECT_FALSE(server.Recommend("never-seen", {}).ok());
  EXPECT_FALSE(server.ItemDifficulty(-1).ok());

  ASSERT_TRUE(server.Observe("u", 0, 100, true).ok());
  EXPECT_FALSE(server.Observe("u", 0, 50, true).ok());  // time goes backwards
  EXPECT_TRUE(server.Observe("u", 0, 100, true).ok());  // equal time is fine
}

TEST_F(ServerTest, SwapKeepsSessionsWhenLevelsMatch) {
  Server server(serving_);
  ASSERT_TRUE(server.Observe("keep-me", 0, 1, true).ok());
  ASSERT_EQ(server.num_sessions(), 1u);
  ASSERT_TRUE(server.SwapSnapshotFile(path_).ok());  // same S
  EXPECT_EQ(server.num_sessions(), 1u);
  EXPECT_TRUE(server.CurrentLevel("keep-me").ok());
  // Observations keep streaming against the swapped-in view.
  EXPECT_TRUE(server.Observe("keep-me", 1, 2, true).ok());
}

TEST_F(ServerTest, SwapResetsSessionsWhenLevelsChange) {
  Server server(serving_);
  ASSERT_TRUE(server.Observe("reset-me", 0, 1, true).ok());
  ASSERT_TRUE(server.SwapSnapshotFile(path_other_s_).ok());  // S: 4 -> 3
  EXPECT_EQ(server.model()->num_levels(), 3);
  EXPECT_EQ(server.num_sessions(), 0u);
  EXPECT_FALSE(server.CurrentLevel("reset-me").ok());
  // A fresh session under the new model works immediately.
  const auto result = server.Observe("reset-me", 0, 1, true);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().level, 1);
  EXPECT_LE(result.value().level, 3);
}

TEST_F(ServerTest, ParseServeRequestCoversTheGrammar) {
  auto observe = ParseServeRequest("observe alice 7 123");
  ASSERT_TRUE(observe.ok());
  EXPECT_EQ(observe.value().kind, ServeRequest::Kind::kObserve);
  EXPECT_EQ(observe.value().user, "alice");
  EXPECT_EQ(observe.value().item, 7);
  EXPECT_EQ(observe.value().time, 123);
  EXPECT_TRUE(observe.value().has_time);

  auto no_time = ParseServeRequest("  observe bob 2  ");
  ASSERT_TRUE(no_time.ok());
  EXPECT_FALSE(no_time.value().has_time);

  auto recommend = ParseServeRequest("recommend alice 5 2.5");
  ASSERT_TRUE(recommend.ok());
  EXPECT_EQ(recommend.value().top_k, 5);
  EXPECT_EQ(recommend.value().stretch, 2.5);

  EXPECT_EQ(ParseServeRequest("level u").value().kind,
            ServeRequest::Kind::kLevel);
  EXPECT_EQ(ParseServeRequest("difficulty 3").value().item, 3);
  EXPECT_EQ(ParseServeRequest("swap /tmp/x.snap").value().path,
            "/tmp/x.snap");
  EXPECT_EQ(ParseServeRequest("stats").value().kind,
            ServeRequest::Kind::kStats);
  auto evict = ParseServeRequest("evict 500");
  ASSERT_TRUE(evict.ok());
  EXPECT_EQ(evict.value().kind, ServeRequest::Kind::kEvict);
  EXPECT_EQ(evict.value().time, 500);
  EXPECT_TRUE(evict.value().has_time);
  EXPECT_EQ(ParseServeRequest("reset").value().kind,
            ServeRequest::Kind::kReset);
  EXPECT_EQ(ParseServeRequest("quit").value().kind,
            ServeRequest::Kind::kQuit);

  EXPECT_FALSE(ParseServeRequest("").ok());
  EXPECT_FALSE(ParseServeRequest("   ").ok());
  EXPECT_FALSE(ParseServeRequest("observe").ok());
  EXPECT_FALSE(ParseServeRequest("observe u").ok());
  EXPECT_FALSE(ParseServeRequest("observe u notanitem").ok());
  EXPECT_FALSE(ParseServeRequest("observe u 1 2 3").ok());
  EXPECT_FALSE(ParseServeRequest("level").ok());
  EXPECT_FALSE(ParseServeRequest("difficulty x").ok());
  EXPECT_FALSE(ParseServeRequest("stats extra").ok());
  EXPECT_FALSE(ParseServeRequest("evict").ok());
  EXPECT_FALSE(ParseServeRequest("evict soon").ok());
  EXPECT_FALSE(ParseServeRequest("make me a sandwich").ok());
}

TEST_F(ServerTest, ExecuteRendersOneLinePerRequest) {
  Server server(serving_);
  EXPECT_EQ(server.Execute(ParseServeRequest("observe a 0 1").value())
                .substr(0, 9),
            "ok level=");
  EXPECT_EQ(server.Execute(ParseServeRequest("level nobody").value())
                .substr(0, 13),
            "ERR NotFound ");
  const std::string stats =
      server.Execute(ParseServeRequest("stats").value());
  EXPECT_NE(stats.find("sessions=1"), std::string::npos) << stats;
  EXPECT_EQ(server.Execute(ParseServeRequest("reset").value()), "ok reset");
  EXPECT_EQ(server.num_sessions(), 0u);
  EXPECT_EQ(server.requests_served(), 4u);
}

TEST_F(ServerTest, EvictCommandDropsIdleSessionsOnly) {
  Server server(serving_);
  ASSERT_TRUE(server.Observe("idle", 0, 10, true).ok());
  ASSERT_TRUE(server.Observe("active", 0, 100, true).ok());
  ASSERT_EQ(server.num_sessions(), 2u);

  EXPECT_EQ(server.Execute(ParseServeRequest("evict 50").value()),
            "ok evicted=1 sessions=1");
  EXPECT_FALSE(server.CurrentLevel("idle").ok());
  EXPECT_TRUE(server.CurrentLevel("active").ok());

  // An evicted user starts over as a brand-new session.
  const auto back = server.Observe("idle", 0, 200, true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().actions, 1u);
  EXPECT_EQ(server.Execute(ParseServeRequest("evict 50").value()),
            "ok evicted=0 sessions=2");
}

TEST_F(ServerTest, ExecuteBatchPreservesRequestOrder) {
  Server server(serving_);
  ThreadPool pool(4);
  std::vector<ServeRequest> requests;
  for (int i = 0; i < 64; ++i) {
    requests.push_back(
        ParseServeRequest("observe u" + std::to_string(i) + " 0 1").value());
  }
  requests.push_back(ParseServeRequest("level u63").value());
  requests.push_back(ParseServeRequest("level nobody").value());
  const std::vector<std::string> responses =
      server.ExecuteBatch(requests, &pool);
  ASSERT_EQ(responses.size(), requests.size());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(responses[static_cast<size_t>(i)].substr(0, 9), "ok level=");
  }
  EXPECT_EQ(responses[64].substr(0, 9), "ok level=");
  EXPECT_EQ(responses[65].substr(0, 4), "ERR ");
  EXPECT_EQ(server.num_sessions(), 64u);
}

TEST_F(ServerTest, ConcurrentObserveMatchesBatchUnderThePool) {
  // The full serving stack under concurrency: replay every user in
  // parallel via ExecuteBatch (interleaving all sessions), then check
  // every final level against the batch DP tails.
  Server server(serving_);
  ThreadPool pool(4);
  // Round-robin the users' actions so same-user requests stay ordered
  // across batches while different users interleave within one batch.
  size_t max_len = 0;
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    max_len = std::max(max_len, dataset_->sequence(u).size());
  }
  for (size_t n = 0; n < max_len; ++n) {
    std::vector<ServeRequest> wave;
    for (UserId u = 0; u < dataset_->num_users(); ++u) {
      const auto& seq = dataset_->sequence(u);
      if (n >= seq.size()) continue;
      ServeRequest request;
      request.kind = ServeRequest::Kind::kObserve;
      request.user = "user" + std::to_string(u);
      request.item = seq[n].item;
      request.time = seq[n].time;
      request.has_time = true;
      wave.push_back(std::move(request));
    }
    for (const std::string& response : server.ExecuteBatch(wave, &pool)) {
      EXPECT_EQ(response.substr(0, 9), "ok level=") << response;
    }
  }
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    if (dataset_->sequence(u).empty()) continue;
    const auto level = server.CurrentLevel("user" + std::to_string(u));
    ASSERT_TRUE(level.ok());
    EXPECT_EQ(level.value().level, assignments_[static_cast<size_t>(u)].back())
        << "user " << u;
  }
}

}  // namespace
}  // namespace serve
}  // namespace upskill
