// ServingModel: the precomputed per-level rankings and the windowed
// Recommend walk over them.

#include "serve/serving_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "serve/snapshot.h"

namespace upskill {
namespace serve {
namespace {

class ServingModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 40;
    data_config.num_items = 80;
    data_config.mean_sequence_length = 25.0;
    data_config.seed = 321;
    auto data = datagen::GenerateSynthetic(data_config);
    ASSERT_TRUE(data.ok());
    dataset_ = std::make_unique<Dataset>(std::move(data).value().dataset);

    SkillModelConfig config;
    config.num_levels = 4;
    config.min_init_actions = 15;
    config.max_iterations = 6;
    auto trained = Trainer(config).Train(*dataset_);
    ASSERT_TRUE(trained.ok());
    model_ = std::make_unique<SkillModel>(std::move(trained).value().model);
    const SkillAssignments assignments = AssignSkills(*dataset_, *model_);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset_->items(), *model_, DifficultyPrior::kEmpirical, assignments);
    ASSERT_TRUE(difficulty.ok());
    difficulty_ = std::move(difficulty).value();

    auto snapshot = MakeSnapshot(*model_, dataset_->items(), difficulty_);
    ASSERT_TRUE(snapshot.ok());
    auto serving = ServingModel::FromSnapshot(std::move(snapshot).value());
    ASSERT_TRUE(serving.ok()) << serving.status().ToString();
    serving_ = serving.value();
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SkillModel> model_;
  std::vector<double> difficulty_;
  std::shared_ptr<const ServingModel> serving_;
};

TEST_F(ServingModelTest, RankedItemsAreCompletePermutationsInScoreOrder) {
  const std::vector<double>& log_probs = serving_->item_log_probs();
  const size_t levels = static_cast<size_t>(serving_->num_levels());
  for (int level = 1; level <= serving_->num_levels(); ++level) {
    const std::span<const ItemId> ranked = serving_->RankedItems(level);
    ASSERT_EQ(ranked.size(),
              static_cast<size_t>(serving_->num_items()));
    std::vector<bool> seen(ranked.size(), false);
    for (size_t r = 0; r < ranked.size(); ++r) {
      const ItemId item = ranked[r];
      ASSERT_GE(item, 0);
      ASSERT_LT(item, serving_->num_items());
      EXPECT_FALSE(seen[static_cast<size_t>(item)]);  // a permutation
      seen[static_cast<size_t>(item)] = true;
      if (r == 0) continue;
      const double prev = log_probs[static_cast<size_t>(ranked[r - 1]) *
                                        levels +
                                    static_cast<size_t>(level - 1)];
      const double cur =
          log_probs[static_cast<size_t>(item) * levels +
                    static_cast<size_t>(level - 1)];
      // Descending score; ties toward the smaller item id.
      EXPECT_TRUE(prev > cur || (prev == cur && ranked[r - 1] < item))
          << "level " << level << " rank " << r;
    }
  }
}

TEST_F(ServingModelTest, ItemRowMatchesCacheLayout) {
  const size_t levels = static_cast<size_t>(serving_->num_levels());
  for (ItemId item : {ItemId{0}, ItemId{17},
                      ItemId{serving_->num_items() - 1}}) {
    const std::span<const double> row = serving_->ItemRow(item);
    ASSERT_EQ(row.size(), levels);
    for (size_t s = 0; s < levels; ++s) {
      EXPECT_EQ(row[s],
                serving_->item_log_probs()[static_cast<size_t>(item) *
                                               levels +
                                           s]);
    }
  }
}

TEST_F(ServingModelTest, RecommendRespectsTheStretchWindow) {
  UpskillRecommendationOptions options;
  options.max_results = 1000;
  options.stretch = 0.75;
  for (int level = 1; level <= serving_->num_levels(); ++level) {
    const auto picks = serving_->Recommend(level, options);
    ASSERT_TRUE(picks.ok());
    for (const UpskillRecommendation& pick : picks.value()) {
      EXPECT_GT(pick.difficulty, static_cast<double>(level));
      EXPECT_LE(pick.difficulty, level + options.stretch);
    }
  }
}

TEST_F(ServingModelTest, RecommendHonorsMaxResults) {
  UpskillRecommendationOptions wide;
  wide.max_results = 1000;
  wide.stretch = 3.0;
  const auto all = serving_->Recommend(1, wide);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all.value().size(), 3u);

  UpskillRecommendationOptions narrow = wide;
  narrow.max_results = 3;
  const auto top3 = serving_->Recommend(1, narrow);
  ASSERT_TRUE(top3.ok());
  ASSERT_EQ(top3.value().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top3.value()[i].item, all.value()[i].item);
  }
}

TEST_F(ServingModelTest, RecommendValidatesInputs) {
  UpskillRecommendationOptions options;
  EXPECT_FALSE(serving_->Recommend(0, options).ok());
  EXPECT_FALSE(
      serving_->Recommend(serving_->num_levels() + 1, options).ok());
  options.max_results = -1;
  EXPECT_FALSE(serving_->Recommend(1, options).ok());
  options.max_results = 10;
  options.stretch = -0.5;
  EXPECT_FALSE(serving_->Recommend(1, options).ok());
}

TEST_F(ServingModelTest, FromSnapshotRejectsShapeMismatches) {
  auto snapshot = MakeSnapshot(*model_, dataset_->items(), difficulty_);
  ASSERT_TRUE(snapshot.ok());
  ModelSnapshot broken = std::move(snapshot).value();
  broken.difficulty.pop_back();
  EXPECT_FALSE(ServingModel::FromSnapshot(std::move(broken)).ok());
}

}  // namespace
}  // namespace serve
}  // namespace upskill
