// SessionStore: the striped-mutex sharded session map. The concurrency
// tests here are the ones the ThreadSanitizer suite (UPSKILL_SANITIZE=
// thread) exercises hardest — same-user updates must serialize exactly,
// distinct users must not lose writes.

#include "serve/session_store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace upskill {
namespace serve {
namespace {

TEST(SessionStoreTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SessionStore(1).num_shards(), 1);
  EXPECT_EQ(SessionStore(2).num_shards(), 2);
  EXPECT_EQ(SessionStore(3).num_shards(), 4);
  EXPECT_EQ(SessionStore(64).num_shards(), 64);
  EXPECT_EQ(SessionStore(65).num_shards(), 128);
  EXPECT_EQ(SessionStore(0).num_shards(), 1);
  EXPECT_EQ(SessionStore(-5).num_shards(), 1);
}

TEST(SessionStoreTest, CreatesSessionsOnDemand) {
  SessionStore store(4);
  EXPECT_EQ(store.size(), 0u);

  SessionState copy;
  EXPECT_FALSE(store.Lookup("alice", &copy));

  store.WithSession("alice", [](SessionState& session) {
    EXPECT_EQ(session.actions, 0u);
    EXPECT_EQ(session.level, 0);
    session.actions = 3;
    session.level = 2;
  });
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Lookup("alice", &copy));
  EXPECT_EQ(copy.actions, 3u);
  EXPECT_EQ(copy.level, 2);
}

TEST(SessionStoreTest, EraseAndClear) {
  SessionStore store(4);
  store.WithSession("a", [](SessionState&) {});
  store.WithSession("b", [](SessionState&) {});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Erase("a"));
  EXPECT_FALSE(store.Erase("a"));
  EXPECT_EQ(store.size(), 1u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  SessionState copy;
  EXPECT_FALSE(store.Lookup("b", &copy));
}

TEST(SessionStoreTest, LookupCopiesRatherThanAliases) {
  SessionStore store(2);
  store.WithSession("u", [](SessionState& session) {
    session.column = {1.0, 2.0};
    session.actions = 1;
  });
  SessionState copy;
  ASSERT_TRUE(store.Lookup("u", &copy));
  copy.column[0] = 99.0;  // mutating the copy must not touch the store
  SessionState again;
  ASSERT_TRUE(store.Lookup("u", &again));
  EXPECT_EQ(again.column[0], 1.0);
}

TEST(SessionStoreTest, ConcurrentSameUserUpdatesSerialize) {
  SessionStore store(8);
  constexpr int kThreads = 8;
  constexpr int kUpdates = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kUpdates; ++i) {
        store.WithSession("hot-user", [](SessionState& session) {
          ++session.actions;
        });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SessionState copy;
  ASSERT_TRUE(store.Lookup("hot-user", &copy));
  EXPECT_EQ(copy.actions,
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kUpdates));
}

TEST(SessionStoreTest, ConcurrentDistinctUsersDontInterfere) {
  SessionStore store(4);  // fewer shards than threads: forced collisions
  constexpr int kThreads = 8;
  constexpr int kUsersPerThread = 50;
  constexpr int kUpdates = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int u = 0; u < kUsersPerThread; ++u) {
        const std::string user =
            "u" + std::to_string(t) + "-" + std::to_string(u);
        for (int i = 0; i < kUpdates; ++i) {
          store.WithSession(user, [](SessionState& session) {
            ++session.actions;
            session.level = static_cast<int>(session.actions % 5) + 1;
          });
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.size(),
            static_cast<size_t>(kThreads) * kUsersPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int u = 0; u < kUsersPerThread; ++u) {
      SessionState copy;
      ASSERT_TRUE(store.Lookup(
          "u" + std::to_string(t) + "-" + std::to_string(u), &copy));
      EXPECT_EQ(copy.actions, static_cast<uint64_t>(kUpdates));
    }
  }
}

TEST(SessionStoreTest, EvictIdleSessionsDropsStrictlyOlder) {
  SessionStore store(4);
  store.WithSession("stale", [](SessionState& session) {
    session.actions = 1;
    session.last_time = 10;
  });
  store.WithSession("boundary", [](SessionState& session) {
    session.actions = 1;
    session.last_time = 20;
  });
  store.WithSession("fresh", [](SessionState& session) {
    session.actions = 1;
    session.last_time = 30;
  });

  // Eviction is strictly-older-than: last_time == min_last_time survives.
  EXPECT_EQ(store.EvictIdleSessions(20), 1u);
  EXPECT_EQ(store.size(), 2u);
  SessionState copy;
  EXPECT_FALSE(store.Lookup("stale", &copy));
  EXPECT_TRUE(store.Lookup("boundary", &copy));
  EXPECT_TRUE(store.Lookup("fresh", &copy));

  EXPECT_EQ(store.EvictIdleSessions(100), 2u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.EvictIdleSessions(100), 0u);
}

TEST(SessionStoreTest, ConcurrentEvictionDuringLiveTraffic) {
  // Eviction locks one shard at a time, so observes and evicts may
  // interleave freely. A session touched after its eviction must come
  // back as a fresh entry; nothing may crash or deadlock (the TSan suite
  // runs this hardest).
  SessionStore store(4);
  constexpr int kWriters = 4;
  constexpr int kUpdates = 1500;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&store, t] {
      const std::string user = "live-" + std::to_string(t);
      for (int i = 0; i < kUpdates; ++i) {
        store.WithSession(user, [i](SessionState& session) {
          ++session.actions;
          session.last_time = i;
        });
      }
    });
  }
  std::thread evictor([&store] {
    for (int i = 0; i < 400; ++i) {
      store.EvictIdleSessions(kUpdates / 2);
    }
  });
  for (std::thread& t : writers) t.join();
  evictor.join();

  // Every writer finishes at last_time = kUpdates - 1, past the eviction
  // horizon, so a final sweep must keep all of them.
  EXPECT_EQ(store.EvictIdleSessions(kUpdates / 2), 0u);
  EXPECT_EQ(store.size(), static_cast<size_t>(kWriters));
  for (int t = 0; t < kWriters; ++t) {
    SessionState copy;
    ASSERT_TRUE(store.Lookup("live-" + std::to_string(t), &copy));
    EXPECT_EQ(copy.last_time, kUpdates - 1);
    EXPECT_GE(copy.actions, 1u);
  }
}

TEST(SessionStoreTest, ConcurrentReadersDuringWrites) {
  SessionStore store(8);
  store.WithSession("reader-target", [](SessionState& session) {
    session.actions = 1;
  });
  std::thread writer([&store] {
    for (int i = 0; i < 5000; ++i) {
      store.WithSession("reader-target", [](SessionState& session) {
        ++session.actions;
      });
    }
  });
  std::thread sizer([&store] {
    for (int i = 0; i < 200; ++i) {
      EXPECT_GE(store.size(), 1u);
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    SessionState copy;
    ASSERT_TRUE(store.Lookup("reader-target", &copy));
    EXPECT_GE(copy.actions, last);  // monotone under a single writer
    last = copy.actions;
  }
  writer.join();
  sizer.join();
}

}  // namespace
}  // namespace serve
}  // namespace upskill
