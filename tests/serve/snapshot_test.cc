// Snapshot round-trip guarantees: bitwise parity of every parameter,
// rejection of corrupted / truncated / foreign files, and equivalence of
// the CSV model path and the snapshot path under the assignment DP.

#include "serve/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/difficulty.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "serve/serving_model.h"

namespace upskill {
namespace serve {
namespace {

// Bitwise comparison that treats NaN == NaN (memcmp on the payload), the
// same notion of equality the snapshot format promises.
bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig data_config;
    data_config.num_users = 60;
    data_config.num_items = 120;
    data_config.mean_sequence_length = 25.0;
    data_config.seed = 2026;
    auto data = datagen::GenerateSynthetic(data_config);
    ASSERT_TRUE(data.ok());
    dataset_ = std::make_unique<Dataset>(std::move(data).value().dataset);

    SkillModelConfig config;
    config.num_levels = 4;
    config.min_init_actions = 15;
    config.max_iterations = 8;
    auto trained = Trainer(config).Train(*dataset_);
    ASSERT_TRUE(trained.ok());
    model_ = std::make_unique<SkillModel>(std::move(trained).value().model);
    assignments_ = AssignSkills(*dataset_, *model_);
    auto difficulty = EstimateDifficultyByGeneration(
        dataset_->items(), *model_, DifficultyPrior::kEmpirical, assignments_);
    ASSERT_TRUE(difficulty.ok());
    difficulty_ = std::move(difficulty).value();
    transitions_ = FitTransitionWeights(assignments_, config.num_levels,
                                        config.smoothing);

    path_ = (std::filesystem::temp_directory_path() /
             ("upskill_snap_" + std::to_string(::getpid()) + ".snap"))
                .string();
    auto snapshot =
        MakeSnapshot(*model_, dataset_->items(), difficulty_, &transitions_);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    ASSERT_TRUE(SaveSnapshot(snapshot.value(), path_).ok());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string ReadBytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void WriteBytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SkillModel> model_;
  SkillAssignments assignments_;
  std::vector<double> difficulty_;
  TransitionWeights transitions_;
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripIsBitwise) {
  const auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ModelSnapshot& snap = loaded.value();

  EXPECT_EQ(snap.config.num_levels, model_->config().num_levels);
  EXPECT_EQ(snap.config.smoothing, model_->config().smoothing);
  EXPECT_EQ(snap.config.transitions, model_->config().transitions);
  EXPECT_EQ(snap.schema.num_features(), dataset_->schema().num_features());
  EXPECT_EQ(snap.items.num_items(), dataset_->items().num_items());

  // Every component's parameter vector survives bit for bit.
  for (int f = 0; f < model_->num_features(); ++f) {
    for (int s = 1; s <= model_->num_levels(); ++s) {
      EXPECT_TRUE(BitwiseEqual(snap.model.component(f, s).Parameters(),
                               model_->component(f, s).Parameters()))
          << "feature " << f << " level " << s;
    }
  }
  // Item feature columns and names survive.
  for (int f = 0; f < snap.schema.num_features(); ++f) {
    const auto col = snap.items.column(f);
    const auto original = dataset_->items().column(f);
    ASSERT_EQ(col.size(), original.size());
    EXPECT_EQ(std::memcmp(col.data(), original.data(),
                          col.size() * sizeof(double)),
              0);
  }
  for (ItemId i = 0; i < snap.items.num_items(); ++i) {
    EXPECT_EQ(snap.items.name(i), dataset_->items().name(i));
  }
  EXPECT_TRUE(BitwiseEqual(snap.difficulty, difficulty_));
  ASSERT_TRUE(snap.has_transitions);
  EXPECT_TRUE(BitwiseEqual(snap.transitions.log_initial,
                           transitions_.log_initial));
  EXPECT_EQ(snap.transitions.log_stay, transitions_.log_stay);
  EXPECT_EQ(snap.transitions.log_up, transitions_.log_up);

  // The strongest single check: the derived scoring surface is identical.
  EXPECT_TRUE(BitwiseEqual(snap.model.ItemLogProbCache(snap.items),
                           model_->ItemLogProbCache(dataset_->items())));
}

TEST_F(SnapshotTest, SnapshotModelAssignsIdenticallyToCsvModel) {
  // CSV path: Save + Load (the interchange format)...
  const std::string csv = path_ + ".csv";
  ASSERT_TRUE(model_->Save(csv).ok());
  const auto csv_model =
      SkillModel::Load(csv, dataset_->schema(), model_->config());
  ASSERT_TRUE(csv_model.ok());
  // ...snapshot path: LoadSnapshot (the serving format).
  const auto snap = LoadSnapshot(path_);
  ASSERT_TRUE(snap.ok());

  double ll_csv = 0.0;
  double ll_snap = 0.0;
  const SkillAssignments from_csv =
      AssignSkills(*dataset_, csv_model.value(), nullptr, {}, &ll_csv);
  const SkillAssignments from_snap =
      AssignSkills(*dataset_, snap.value().model, nullptr, {}, &ll_snap);
  EXPECT_EQ(from_csv, from_snap);
  EXPECT_EQ(ll_csv, ll_snap);
  std::filesystem::remove(csv);
}

TEST_F(SnapshotTest, RejectsCorruptedPayload) {
  std::string bytes = ReadBytes();
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  WriteBytes(bytes);
  const auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  const std::string bytes = ReadBytes();
  // Truncated payload.
  WriteBytes(bytes.substr(0, bytes.size() - 9));
  EXPECT_FALSE(LoadSnapshot(path_).ok());
  // Truncated inside the header.
  WriteBytes(bytes.substr(0, 11));
  EXPECT_FALSE(LoadSnapshot(path_).ok());
  // Empty file.
  WriteBytes("");
  EXPECT_FALSE(LoadSnapshot(path_).ok());
}

TEST_F(SnapshotTest, RejectsBadMagicAndUnknownVersion) {
  std::string bytes = ReadBytes();
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteBytes(bad_magic);
  ASSERT_FALSE(LoadSnapshot(path_).ok());

  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(0xEF);  // version u32 at offset 8
  WriteBytes(bad_version);
  const auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, MissingFileFails) {
  EXPECT_FALSE(LoadSnapshot(path_ + ".does-not-exist").ok());
}

TEST_F(SnapshotTest, MakeSnapshotValidatesDifficultyCoverage) {
  std::vector<double> short_table(difficulty_.begin(),
                                  difficulty_.end() - 1);
  EXPECT_FALSE(
      MakeSnapshot(*model_, dataset_->items(), short_table).ok());
}

TEST_F(SnapshotTest, ServingModelMatchesBatchCache) {
  const auto model = ServingModel::FromSnapshotFile(path_);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_TRUE(BitwiseEqual(model.value()->item_log_probs(),
                           model_->ItemLogProbCache(dataset_->items())));
  EXPECT_EQ(model.value()->num_levels(), model_->num_levels());
  EXPECT_EQ(model.value()->num_items(), dataset_->items().num_items());
  ASSERT_NE(model.value()->transitions(), nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace upskill
