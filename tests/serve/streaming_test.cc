// Streaming-vs-batch equivalence: after every observed action, the level
// reported by the O(S) forward-column update (MonotoneForwardStart / Step /
// Level) must equal the tail level of re-running the full batch assignment
// DP on the prefix observed so far — for the plain monotone DP, the
// transition-weighted DP, and the forgetting-weighted DP, on randomized
// datasets. This is the invariant that makes the serving layer's per-user
// state O(S) instead of O(n).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/dp.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"

namespace upskill {
namespace {

class StreamingEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::SyntheticConfig config;
    config.num_users = 40;
    config.num_items = 90;
    config.mean_sequence_length = 35.0;
    config.seed = 555;
    auto data = datagen::GenerateSynthetic(config);
    ASSERT_TRUE(data.ok());
    dataset_ = std::make_unique<Dataset>(std::move(data).value().dataset);

    SkillModelConfig model_config;
    model_config.num_levels = 5;
    model_config.min_init_actions = 20;
    model_config.max_iterations = 6;
    auto trained = Trainer(model_config).Train(*dataset_);
    ASSERT_TRUE(trained.ok());
    model_ = std::make_unique<SkillModel>(std::move(trained).value().model);
    log_probs_ = model_->ItemLogProbCache(dataset_->items());
    num_levels_ = model_->num_levels();
    transitions_ = FitTransitionWeights(AssignSkills(*dataset_, *model_),
                                        num_levels_, model_config.smoothing);
  }

  // Feeds user `u`'s sequence one action at a time through the forward
  // column and checks the streamed level against the batch DP tail on each
  // prefix. `log_initial` empty + zero costs = the plain monotone DP;
  // `gap_threshold >= 0` additionally opens forgetting down-edges.
  void CheckUser(UserId u, std::span<const double> log_initial,
                 double log_stay, double log_up, bool forgetting,
                 int64_t gap_threshold, double log_down) {
    std::span<const Action> seq = dataset_->sequence(u);
    const size_t levels = static_cast<size_t>(num_levels_);
    std::vector<double> column(levels);
    std::vector<double> next(levels);
    std::vector<int32_t> prefix_items;
    std::vector<uint8_t> allow_down;
    DpScratch scratch;

    for (size_t n = 0; n < seq.size(); ++n) {
      const ItemId item = seq[n].item;
      const std::span<const double> item_row(
          log_probs_.data() + static_cast<size_t>(item) * levels, levels);
      if (n == 0) {
        MonotoneForwardStart(item_row, log_initial, column);
      } else {
        const bool down =
            forgetting && (seq[n].time - seq[n - 1].time) > gap_threshold;
        allow_down.push_back(down ? 1 : 0);
        MonotoneForwardStep(column, item_row, log_stay, log_up, down,
                            log_down, next);
        std::swap(column, next);
      }
      prefix_items.push_back(item);

      // Batch DP over the prefix observed so far.
      if (forgetting) {
        SolveMonotonePathItemsWithForgetting(
            log_probs_, prefix_items, num_levels_, log_initial, log_stay,
            log_up, allow_down, log_down, scratch);
      } else {
        SolveMonotonePathItems(log_probs_, prefix_items, num_levels_,
                               log_initial, log_stay, log_up, scratch);
      }
      ASSERT_EQ(MonotoneForwardLevel(column), scratch.levels.back())
          << "user " << u << " action " << n;
    }
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SkillModel> model_;
  std::vector<double> log_probs_;
  int num_levels_ = 0;
  TransitionWeights transitions_;
};

TEST_F(StreamingEquivalenceTest, PlainDpMatchesBatchTailOnEveryPrefix) {
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    CheckUser(u, {}, 0.0, 0.0, /*forgetting=*/false, 0, 0.0);
  }
}

TEST_F(StreamingEquivalenceTest, TransitionWeightedMatchesBatchTail) {
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    CheckUser(u, transitions_.log_initial, transitions_.log_stay,
              transitions_.log_up, /*forgetting=*/false, 0, 0.0);
  }
}

TEST_F(StreamingEquivalenceTest, ForgettingWeightedMatchesBatchTail) {
  const double log_down = std::log(0.05);
  // A zero threshold opens the down-edge on every positive gap, the
  // adversarial case for the streaming update.
  for (UserId u = 0; u < dataset_->num_users(); ++u) {
    CheckUser(u, transitions_.log_initial, transitions_.log_stay,
              transitions_.log_up, /*forgetting=*/true, 0, log_down);
  }
}

TEST_F(StreamingEquivalenceTest, SingleLevelModelStaysAtLevelOne) {
  // S = 1 degenerates every rule (no up, no down, free stay); the forward
  // column must still work.
  std::vector<double> column(1);
  std::vector<double> next(1);
  const std::vector<double> row = {-2.5};
  MonotoneForwardStart(row, {}, column);
  EXPECT_EQ(MonotoneForwardLevel(column), 1);
  MonotoneForwardStep(column, row, -0.1, -2.3, false, 0.0, next);
  EXPECT_EQ(MonotoneForwardLevel(next), 1);
  EXPECT_DOUBLE_EQ(next[0], -5.0);  // top-level self-transition is free
}

TEST_F(StreamingEquivalenceTest, TiesResolveToLowestLevel) {
  // Identical scores at every level: the batch backtrack picks the lowest
  // level, and so must the streamed argmax.
  std::vector<double> column(4, -1.0);
  EXPECT_EQ(MonotoneForwardLevel(column), 1);
  column[2] = -0.5;
  EXPECT_EQ(MonotoneForwardLevel(column), 3);
  column[1] = -0.5;
  EXPECT_EQ(MonotoneForwardLevel(column), 2);
}

}  // namespace
}  // namespace upskill
