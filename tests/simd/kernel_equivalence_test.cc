// Backend equivalence for the SIMD kernel layer: every dispatched kernel
// must match the scalar reference bitwise (double kernels) / bit-exactly
// (integer quantized kernels) on adversarial inputs — non-integral and
// out-of-range lookup keys, NaN/inf lanes, -inf log-probs, tie-heavy DP
// rows, saturating quantized columns — across every batch size that
// exercises full vector blocks, tails, and the empty span. The same
// guarantee is then checked one layer up: the four Distribution kinds and
// both item-indexed DP solvers are swept under ForceScalarForTest(on/off)
// and compared bitwise.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "core/dp.h"
#include "dist/categorical.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/poisson.h"
#include "serve/quantized_model.h"
#include "simd/kernels.h"
#include "simd/simd.h"

namespace upskill {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Bitwise double comparison (distinguishes -0.0 from 0.0 and treats two
// NaNs with the same payload as equal, which operator== cannot).
::testing::AssertionResult BitEq(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns 0x" << std::hex
         << std::bit_cast<uint64_t>(a) << " vs 0x"
         << std::bit_cast<uint64_t>(b) << ")";
}

void ExpectBitEqual(std::span<const double> a, std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitEq(a[i], b[i])) << "lane " << i;
  }
}

// Sizes chosen to cover: empty, below one vector, exactly one 4-wide and
// 8-wide block, block + tail, and many blocks.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 31, 100, 257};

class KernelEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::ForceScalarForTest(false); }

  std::mt19937_64 rng_{0x5eed5eedULL};

  // Lookup keys: mostly valid small integers, salted with every way a lane
  // can be invalid or overflow the table.
  std::vector<double> MakeKeys(size_t n, size_t table_size) {
    std::vector<double> xs(n);
    std::uniform_int_distribution<int> valid(
        0, static_cast<int>(table_size) - 1);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (size_t i = 0; i < n; ++i) {
      switch (i % 8) {
        case 6:
          xs[i] = static_cast<double>(valid(rng_)) + unit(rng_);  // fractional
          break;
        case 5:
          xs[i] = -static_cast<double>(valid(rng_)) - 1.0;  // negative
          break;
        case 4:
          xs[i] = static_cast<double>(table_size + (i % 5));  // overflow
          break;
        case 3:
          xs[i] = (i % 2) ? std::numeric_limits<double>::quiet_NaN()
                          : std::numeric_limits<double>::infinity();
          break;
        default:
          xs[i] = static_cast<double>(valid(rng_));
      }
    }
    return xs;
  }

  // Positive reals across many magnitudes, salted with the non-support
  // cases (zero, negative, NaN, inf).
  std::vector<double> MakePositives(size_t n) {
    std::vector<double> xs(n);
    std::uniform_real_distribution<double> log_mag(-8.0, 8.0);
    for (size_t i = 0; i < n; ++i) {
      switch (i % 9) {
        case 8:
          xs[i] = 0.0;
          break;
        case 7:
          xs[i] = -std::exp(log_mag(rng_));
          break;
        case 6:
          xs[i] = (i % 2) ? std::numeric_limits<double>::quiet_NaN()
                          : std::numeric_limits<double>::infinity();
          break;
        default:
          xs[i] = std::exp(log_mag(rng_));
      }
    }
    return xs;
  }

  std::vector<double> LogsOf(std::span<const double> xs) {
    std::vector<double> logs(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      logs[i] = xs[i] > 0.0 ? std::log(xs[i]) : 0.0;
    }
    return logs;
  }

  // DP inputs: scores around zero with occasional -inf lanes and exact
  // duplicates (ties must break identically).
  std::vector<double> MakeScores(size_t n) {
    std::vector<double> xs(n);
    std::uniform_real_distribution<double> score(-20.0, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (i % 11 == 10) {
        xs[i] = kNegInf;
      } else if (i % 7 == 6 && i > 0) {
        xs[i] = xs[i - 1];  // exact tie with the neighbor
      } else {
        xs[i] = score(rng_);
      }
    }
    return xs;
  }
};

TEST_F(KernelEquivalenceTest, LookupMatchesScalarBitwise) {
  std::vector<double> table(32);
  std::uniform_real_distribution<double> entry(-30.0, 0.0);
  for (double& t : table) t = entry(rng_);
  table[3] = kNegInf;  // a -inf table entry must gather through unchanged
  for (size_t n : kSizes) {
    const std::vector<double> xs = MakeKeys(n, table.size());
    std::vector<double> got(n, 42.0);
    std::vector<double> want(n, -42.0);
    bool got_overflow = false;
    bool want_overflow = false;
    simd::LookupLogProbBatch(xs, table, got, &got_overflow);
    simd::scalar::LookupLogProbBatch(xs, table, want, &want_overflow);
    ExpectBitEqual(got, want);
    EXPECT_EQ(got_overflow, want_overflow) << "n=" << n;
    // The overflow flag must fire iff an exact integer >= table.size()
    // exists (never for fractional/negative/NaN lanes).
    bool expect_overflow = false;
    for (double x : xs) {
      expect_overflow |= std::trunc(x) == x && x >= 0.0 && std::isfinite(x) &&
                         x >= static_cast<double>(table.size());
    }
    EXPECT_EQ(want_overflow, expect_overflow) << "n=" << n;
  }
  // Null overflow pointer is allowed.
  const std::vector<double> xs = MakeKeys(64, table.size());
  std::vector<double> out(64);
  simd::LookupLogProbBatch(xs, table, out, nullptr);
}

TEST_F(KernelEquivalenceTest, GammaKernelMatchesScalarBitwise) {
  const double shape = 2.7;
  const double scale = 0.6;
  const double log_gamma_shape = std::lgamma(shape);
  const double shape_log_scale = shape * std::log(scale);
  for (size_t n : kSizes) {
    const std::vector<double> xs = MakePositives(n);
    const std::vector<double> logs = LogsOf(xs);
    std::vector<double> got(n), want(n);
    simd::GammaLogProbBatch(xs, logs, shape - 1.0, scale, log_gamma_shape,
                            shape_log_scale, got);
    simd::scalar::GammaLogProbBatch(xs, logs, shape - 1.0, scale,
                                    log_gamma_shape, shape_log_scale, want);
    ExpectBitEqual(got, want);
  }
}

TEST_F(KernelEquivalenceTest, LogNormalKernelMatchesScalarBitwise) {
  const double mu = 1.3;
  const double sigma = 0.8;
  const double log_sigma = std::log(sigma);
  const double half_log_two_pi = 0.5 * std::log(2.0 * M_PI);
  for (size_t n : kSizes) {
    const std::vector<double> xs = MakePositives(n);
    const std::vector<double> logs = LogsOf(xs);
    std::vector<double> got(n), want(n);
    simd::LogNormalLogProbBatch(xs, logs, mu, sigma, log_sigma,
                                half_log_two_pi, got);
    simd::scalar::LogNormalLogProbBatch(xs, logs, mu, sigma, log_sigma,
                                        half_log_two_pi, want);
    ExpectBitEqual(got, want);
  }
}

TEST_F(KernelEquivalenceTest, DpRowInteriorMatchesScalarBitwise) {
  for (size_t levels : {size_t{2}, size_t{3}, size_t{5}, size_t{8}, size_t{9},
                        size_t{17}, size_t{64}}) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<double> prev = MakeScores(levels);
      const std::vector<double> row = MakeScores(levels);
      std::vector<double> got(levels, 0.0), want(levels, 0.0);
      std::vector<uint8_t> got_from(levels, 9), want_from(levels, 9);
      simd::DpRowInterior(prev.data(), row.data(), levels, -0.105, -2.302,
                          got.data(), got_from.data());
      simd::scalar::DpRowInterior(prev.data(), row.data(), levels, -0.105,
                                  -2.302, want.data(), want_from.data());
      // The kernel only owns s in [1, levels - 1); the peeled edges must
      // be untouched by both.
      ExpectBitEqual(got, want);
      EXPECT_EQ(got_from, want_from) << "levels=" << levels;
      EXPECT_TRUE(BitEq(got[0], 0.0));
      EXPECT_EQ(got_from[0], 9);

      // Null `from` (streaming) path.
      std::vector<double> got_nf(levels, 0.0);
      simd::DpRowInterior(prev.data(), row.data(), levels, -0.105, -2.302,
                          got_nf.data(), nullptr);
      ExpectBitEqual(got_nf, want);
    }
  }
}

TEST_F(KernelEquivalenceTest, DpRowInteriorWithDownMatchesScalarBitwise) {
  for (size_t levels : {size_t{2}, size_t{3}, size_t{5}, size_t{8}, size_t{9},
                        size_t{17}, size_t{64}}) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<double> prev = MakeScores(levels);
      const std::vector<double> row = MakeScores(levels);
      std::vector<double> got(levels, 0.0), want(levels, 0.0);
      std::vector<uint8_t> got_from(levels, 9), want_from(levels, 9);
      simd::DpRowInteriorWithDown(prev.data(), row.data(), levels, -0.105,
                                  -2.302, -3.0, got.data(), got_from.data());
      simd::scalar::DpRowInteriorWithDown(prev.data(), row.data(), levels,
                                          -0.105, -2.302, -3.0, want.data(),
                                          want_from.data());
      ExpectBitEqual(got, want);
      EXPECT_EQ(got_from, want_from) << "levels=" << levels;
    }
  }
}

TEST_F(KernelEquivalenceTest, QuantizedKernelsMatchScalarBitExactly) {
  std::uniform_int_distribution<int> lane(-32767, 0);
  std::uniform_int_distribution<int> cost(-3000, 0);
  // Production multipliers top out at lround(kQuantAccScale *
  // kQuantResidualRange / 32767.0 * 32768.0) = 32513; sweep the whole
  // non-negative int16 range to cover the mulhrs rounding edge cases.
  std::uniform_int_distribution<int> mult(0, 32767);
  // 17/18 and 128/129 straddle the AVX2 register-resident fast path's
  // bounds (it takes columns with 18..128 levels).
  for (size_t levels :
       {size_t{1}, size_t{2}, size_t{5}, size_t{8}, size_t{9}, size_t{17},
        size_t{18}, size_t{32}, size_t{100}, size_t{128}, size_t{129}}) {
    std::vector<int16_t> qrow(levels);
    std::vector<int16_t> q_initial(levels);
    for (size_t s = 0; s < levels; ++s) {
      qrow[s] = static_cast<int16_t>(lane(rng_));
      q_initial[s] = (s % 5 == 4) ? serve::kQuantCostFloor
                                  : static_cast<int16_t>(cost(rng_));
    }
    const int16_t row_mult = static_cast<int16_t>(mult(rng_));

    std::vector<int16_t> got_col(levels), want_col(levels);
    simd::QuantizedForwardInit(qrow.data(), row_mult, q_initial.data(),
                               levels, got_col.data());
    simd::scalar::QuantizedForwardInit(qrow.data(), row_mult,
                                       q_initial.data(), levels,
                                       want_col.data());
    EXPECT_EQ(got_col, want_col) << "levels=" << levels;

    // Drive both columns through many steps, alternating the down-edge,
    // asserting lockstep bit-exactness (renormalization + saturation
    // included: the floored q_initial lanes start deeply negative).
    std::vector<int16_t> got_next(levels), want_next(levels);
    for (int step = 0; step < 32; ++step) {
      for (size_t s = 0; s < levels; ++s) {
        qrow[s] = static_cast<int16_t>(lane(rng_));
      }
      const int16_t q_stay = static_cast<int16_t>(cost(rng_));
      const int16_t q_up = static_cast<int16_t>(cost(rng_));
      const int16_t q_down = static_cast<int16_t>(cost(rng_));
      const bool allow_down = (step % 3) == 1;
      simd::QuantizedForwardStep(got_col.data(), qrow.data(), row_mult,
                                 q_stay, q_up, allow_down, q_down, levels,
                                 got_next.data());
      simd::scalar::QuantizedForwardStep(want_col.data(), qrow.data(),
                                         row_mult, q_stay, q_up, allow_down,
                                         q_down, levels, want_next.data());
      EXPECT_EQ(got_next, want_next) << "levels=" << levels << " step="
                                     << step;
      EXPECT_EQ(simd::QuantizedForwardLevel(got_next.data(), levels),
                simd::scalar::QuantizedForwardLevel(want_next.data(), levels));
      got_col.swap(got_next);
      want_col.swap(want_next);
    }
    // Renormalization keeps the column's maximum pinned at zero.
    EXPECT_EQ(*std::max_element(got_col.begin(), got_col.end()), 0);
  }
}

// ---------------------------------------------------------------------------
// One layer up: distributions and DP solvers under a backend sweep.
// ---------------------------------------------------------------------------

TEST_F(KernelEquivalenceTest, DistributionBatchesMatchAcrossBackends) {
  Poisson poisson(3.7);
  Gamma gamma(2.2, 0.9);
  LogNormal lognormal(0.4, 1.1);
  Categorical categorical(16, 0.01);
  {
    std::vector<double> probs(16, 0.0);
    double total = 0.0;
    std::uniform_real_distribution<double> unit(0.01, 1.0);
    for (double& p : probs) total += (p = unit(rng_));
    for (double& p : probs) p /= total;
    probs[5] = probs[5] + probs[7];
    probs[7] = 0.0;  // a zero-probability category -> -inf log table entry
    ASSERT_TRUE(categorical.SetProbabilities(probs).ok());
  }
  const Distribution* dists[] = {&poisson, &gamma, &lognormal, &categorical};
  for (const Distribution* dist : dists) {
    for (size_t n : kSizes) {
      std::vector<double> xs;
      if (dist->kind() == DistributionKind::kGamma ||
          dist->kind() == DistributionKind::kLogNormal) {
        xs = MakePositives(n);
      } else {
        xs = MakeKeys(n, 16);
      }
      std::vector<double> vec_out(n), scalar_out(n), single(n);
      simd::ForceScalarForTest(false);
      dist->LogProbBatch(xs, vec_out);
      simd::ForceScalarForTest(true);
      dist->LogProbBatch(xs, scalar_out);
      simd::ForceScalarForTest(false);
      ExpectBitEqual(vec_out, scalar_out);
      // And both must equal the one-at-a-time virtual LogProb for every
      // input in the comparable domain. NaN is excluded by contract: the
      // batch kernels' support predicate sends NaN to -inf on every
      // backend, while the scalar LogProb propagates it.
      for (size_t i = 0; i < n; ++i) {
        single[i] = std::isnan(xs[i]) ? vec_out[i] : dist->LogProb(xs[i]);
      }
      ExpectBitEqual(vec_out, single);
    }
  }
}

TEST_F(KernelEquivalenceTest, ItemDpSolversMatchAcrossBackends) {
  const int num_levels = 6;
  const int num_items = 40;
  const size_t n_actions = 150;
  std::vector<double> cache(
      static_cast<size_t>(num_items) * static_cast<size_t>(num_levels));
  std::uniform_real_distribution<double> score(-15.0, 0.0);
  for (double& c : cache) c = score(rng_);
  cache[7 * num_levels + 2] = kNegInf;  // an impossible (item, level) cell
  std::vector<int32_t> items(n_actions);
  std::uniform_int_distribution<int32_t> pick(0, num_items - 1);
  for (int32_t& it : items) it = pick(rng_);
  std::vector<double> log_initial(num_levels);
  for (double& v : log_initial) v = score(rng_);
  std::vector<uint8_t> allow_down(n_actions - 1, 0);
  for (size_t t = 0; t < allow_down.size(); t += 5) allow_down[t] = 1;

  DpScratch vec_scratch, scalar_scratch;
  simd::ForceScalarForTest(false);
  const double vec_ll = SolveMonotonePathItems(
      cache, items, num_levels, log_initial, -0.105, -2.302, vec_scratch);
  const std::vector<int> vec_levels = vec_scratch.levels;
  const double vec_ll_forget = SolveMonotonePathItemsWithForgetting(
      cache, items, num_levels, log_initial, -0.105, -2.302, allow_down,
      -3.0, vec_scratch);
  const std::vector<int> vec_levels_forget = vec_scratch.levels;

  simd::ForceScalarForTest(true);
  ASSERT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  const double scalar_ll = SolveMonotonePathItems(
      cache, items, num_levels, log_initial, -0.105, -2.302, scalar_scratch);
  EXPECT_TRUE(BitEq(vec_ll, scalar_ll));
  EXPECT_EQ(vec_levels, scalar_scratch.levels);
  const double scalar_ll_forget = SolveMonotonePathItemsWithForgetting(
      cache, items, num_levels, log_initial, -0.105, -2.302, allow_down,
      -3.0, scalar_scratch);
  EXPECT_TRUE(BitEq(vec_ll_forget, scalar_ll_forget));
  EXPECT_EQ(vec_levels_forget, scalar_scratch.levels);
}

TEST_F(KernelEquivalenceTest, StreamingForwardMatchesBatchAcrossBackends) {
  // The streaming column after a prefix must equal the batch kernel's
  // final row on that prefix — on both backends, bitwise.
  const int num_levels = 9;  // one 4-block + 4-tail in the interior
  const int num_items = 25;
  const size_t n_actions = 60;
  std::vector<double> cache(
      static_cast<size_t>(num_items) * static_cast<size_t>(num_levels));
  std::uniform_real_distribution<double> score(-15.0, 0.0);
  for (double& c : cache) c = score(rng_);
  std::vector<int32_t> items(n_actions);
  std::uniform_int_distribution<int32_t> pick(0, num_items - 1);
  for (int32_t& it : items) it = pick(rng_);

  for (const bool force_scalar : {false, true}) {
    simd::ForceScalarForTest(force_scalar);
    std::vector<double> column(num_levels), next(num_levels);
    DpScratch scratch;
    for (size_t t = 0; t < n_actions; ++t) {
      const std::span<const double> row(
          cache.data() +
              static_cast<size_t>(items[t]) * static_cast<size_t>(num_levels),
          static_cast<size_t>(num_levels));
      if (t == 0) {
        MonotoneForwardStart(row, {}, column);
      } else {
        MonotoneForwardStep(column, row, -0.105, -2.302, false, 0.0, next);
        column.swap(next);
      }
      const std::span<const int32_t> prefix(items.data(), t + 1);
      SolveMonotonePathItems(cache, prefix, num_levels, {}, -0.105, -2.302,
                             scratch);
      EXPECT_EQ(MonotoneForwardLevel(column), scratch.levels.back())
          << "t=" << t << " force_scalar=" << force_scalar;
    }
  }
}

TEST_F(KernelEquivalenceTest, BackendSwitchIsObservable) {
  // Whatever the hardware, forcing scalar must stick; restoring must
  // return to the compile/runtime-detected choice.
  const simd::Backend detected = simd::ActiveBackend();
  simd::ForceScalarForTest(true);
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  EXPECT_FALSE(simd::VectorEnabled());
  EXPECT_STREQ(simd::BackendName(), "scalar");
  simd::ForceScalarForTest(false);
  EXPECT_EQ(simd::ActiveBackend(), detected);
}

}  // namespace
}  // namespace upskill
