// Compaction: folding the ingest log into the columnar base must follow
// the documented deterministic merge contract — per-user merge by time
// (base wins ties, log keeps append order), new users appended in first
// appearance order — and be a pure function of (base bytes, log bytes).

#include "store/compact.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "store/ingest_log.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace upskill {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset MakeBase() {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddCount("steps").ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < 6; ++i) {
    const double row[] = {static_cast<double>(i)};
    EXPECT_TRUE(items.AddItem(row, "item-" + std::to_string(i)).ok());
  }
  Dataset dataset(std::move(items));
  const UserId alice = dataset.AddUser("alice");
  const UserId bob = dataset.AddUser("bob");
  dataset.AddUser("carol");  // no actions yet
  EXPECT_TRUE(dataset.AddAction(alice, 10, 0).ok());
  EXPECT_TRUE(dataset.AddAction(alice, 20, 1).ok());
  EXPECT_TRUE(dataset.AddAction(alice, 30, 2).ok());
  EXPECT_TRUE(dataset.AddAction(bob, 15, 3).ok());
  return dataset;
}

Status AppendAll(const std::string& log_path,
                 const std::vector<IngestRecord>& records) {
  Result<std::unique_ptr<IngestLogWriter>> writer =
      IngestLogWriter::Open(log_path);
  if (!writer.ok()) return writer.status();
  for (const IngestRecord& record : records) {
    UPSKILL_RETURN_IF_ERROR(writer.value()->Append(record));
  }
  return writer.value()->Sync();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(CompactTest, MergesLogIntoBaseByTime) {
  const std::string base_path = TempPath("merge_base.store");
  const std::string log_path = TempPath("merge.ingest");
  const std::string out_path = TempPath("merge_out.store");
  std::remove(log_path.c_str());
  ASSERT_TRUE(PackDataset(MakeBase(), base_path).ok());
  ASSERT_TRUE(AppendAll(log_path,
                        {
                            {"alice", 25, 4, 1.0},  // lands between 20 and 30
                            {"dave", 7, 5, 2.0},    // new user
                            {"alice", 5, 3, 3.0},   // before everything
                            {"erin", 9, 0, 4.0},    // second new user
                            {"alice", 20, 5, 5.0},  // ties base@20: base wins
                            {"bob", 15, 1, 6.0},    // ties base@15: base wins
                        })
                  .ok());

  Result<CompactStats> stats = CompactStore(base_path, log_path, out_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().base_users, 3u);
  EXPECT_EQ(stats.value().base_actions, 4u);
  EXPECT_EQ(stats.value().log_records, 6u);
  EXPECT_EQ(stats.value().new_users, 2u);
  EXPECT_EQ(stats.value().total_actions, 10u);

  Result<StoreReader> reader = StoreReader::Open(out_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Result<Dataset> mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const Dataset& merged = mapped.value();
  ASSERT_EQ(merged.num_users(), 5);
  EXPECT_EQ(merged.user_name(0), "alice");
  EXPECT_EQ(merged.user_name(3), "dave");  // first-appearance order
  EXPECT_EQ(merged.user_name(4), "erin");

  // alice: log@5, base@10, base@20 then log@20 (base wins the tie),
  // log@25, base@30.
  const std::span<const Action> alice = merged.sequence(0);
  ASSERT_EQ(alice.size(), 6u);
  const int64_t times[] = {5, 10, 20, 20, 25, 30};
  const ItemId items[] = {3, 0, 1, 5, 4, 2};
  for (size_t n = 0; n < alice.size(); ++n) {
    EXPECT_EQ(alice[n].time, times[n]) << n;
    EXPECT_EQ(alice[n].item, items[n]) << n;
  }
  const std::span<const Action> bob = merged.sequence(1);
  ASSERT_EQ(bob.size(), 2u);
  EXPECT_EQ(bob[0].item, 3);  // base first at the tied time
  EXPECT_EQ(bob[1].item, 1);
  EXPECT_EQ(merged.sequence(2).size(), 0u);  // carol untouched
  ASSERT_EQ(merged.sequence(3).size(), 1u);
  EXPECT_EQ(merged.sequence(3)[0].item, 5);
  EXPECT_EQ(merged.sequence(3)[0].rating, 2.0);
}

TEST(CompactTest, DeterministicAndStepwiseComposable) {
  const std::string base_path = TempPath("steps_base.store");
  ASSERT_TRUE(PackDataset(MakeBase(), base_path).ok());
  const std::vector<IngestRecord> first = {
      {"alice", 40, 0, 1.0}, {"frank", 1, 2, 2.0}, {"bob", 12, 4, 3.0}};
  const std::vector<IngestRecord> second = {
      {"frank", 2, 3, 4.0}, {"alice", 35, 5, 5.0}};

  // One-shot: base + (first ++ second).
  const std::string log_all = TempPath("steps_all.ingest");
  std::remove(log_all.c_str());
  std::vector<IngestRecord> all = first;
  all.insert(all.end(), second.begin(), second.end());
  ASSERT_TRUE(AppendAll(log_all, all).ok());
  const std::string out_one = TempPath("steps_one.store");
  ASSERT_TRUE(CompactStore(base_path, log_all, out_one).ok());

  // Two-step: (base + first) + second.
  const std::string log_first = TempPath("steps_first.ingest");
  const std::string log_second = TempPath("steps_second.ingest");
  std::remove(log_first.c_str());
  std::remove(log_second.c_str());
  ASSERT_TRUE(AppendAll(log_first, first).ok());
  ASSERT_TRUE(AppendAll(log_second, second).ok());
  const std::string mid = TempPath("steps_mid.store");
  const std::string out_two = TempPath("steps_two.store");
  ASSERT_TRUE(CompactStore(base_path, log_first, mid).ok());
  ASSERT_TRUE(CompactStore(mid, log_second, out_two).ok());

  EXPECT_EQ(ReadFile(out_one), ReadFile(out_two));

  // And rerunning the one-shot compaction reproduces identical bytes.
  const std::string out_again = TempPath("steps_again.store");
  ASSERT_TRUE(CompactStore(base_path, log_all, out_again).ok());
  EXPECT_EQ(ReadFile(out_one), ReadFile(out_again));
}

TEST(CompactTest, EmptyLogCopiesTheBase) {
  const std::string base_path = TempPath("copy_base.store");
  const std::string out_path = TempPath("copy_out.store");
  ASSERT_TRUE(PackDataset(MakeBase(), base_path).ok());
  const std::string log_path = TempPath("copy_missing.ingest");
  std::remove(log_path.c_str());
  Result<CompactStats> stats = CompactStore(base_path, log_path, out_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().log_records, 0u);
  EXPECT_EQ(ReadFile(out_path), ReadFile(base_path));
}

TEST(CompactTest, RejectsLogItemsOutsideTheBaseTable) {
  const std::string base_path = TempPath("reject_base.store");
  const std::string log_path = TempPath("reject.ingest");
  const std::string out_path = TempPath("reject_out.store");
  std::remove(log_path.c_str());
  ASSERT_TRUE(PackDataset(MakeBase(), base_path).ok());
  ASSERT_TRUE(AppendAll(log_path, {{"alice", 50, 99, 1.0}}).ok());
  Result<CompactStats> stats = CompactStore(base_path, log_path, out_path);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace store
}  // namespace upskill
