// The continuous-learning loop, end to end at the library level
// (DESIGN.md §10): pack a base store → serve from a trained snapshot with
// the ingest hook teeing observations into the append-only log → compact
// base + log into a merged store → full-replay online training over the
// merged mapping is bitwise equal (parameters, assignments, snapshot
// bytes) to an offline retrain over the equivalent in-RAM dataset → an
// incremental Refresh from the base state produces a servable snapshot
// that hot-swaps into the running server.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/difficulty.h"
#include "core/online_trainer.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "store/compact.h"
#include "store/ingest_log.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace upskill {
namespace {

std::vector<std::vector<double>> ModelParams(const SkillModel& model) {
  std::vector<std::vector<double>> params;
  for (int f = 0; f < model.num_features(); ++f) {
    for (int s = 1; s <= model.num_levels(); ++s) {
      params.push_back(model.component(f, s).Parameters());
    }
  }
  return params;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string SnapshotBytesFor(const SkillModel& model, const Dataset& dataset,
                             const SkillAssignments& assignments,
                             const std::string& path) {
  auto snapshot = serve::MakeSnapshot(
      model, dataset.items(),
      EstimateDifficultyByAssignment(dataset, assignments));
  EXPECT_TRUE(snapshot.ok());
  EXPECT_TRUE(serve::SaveSnapshot(snapshot.value(), path).ok());
  return FileBytes(path);
}

TEST(ContinuousLoopTest, ServeIngestCompactRetrainHotSwap) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("upskill_loop_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string base_store = dir + "/base.store";
  const std::string log_path = dir + "/ingest.log";
  const std::string merged_store = dir + "/merged.store";

  // --- Base: synthetic dataset, packed store, trained snapshot. ---
  datagen::SyntheticConfig data_config;
  data_config.num_users = 50;
  data_config.num_items = 40;
  data_config.mean_sequence_length = 15.0;
  data_config.seed = 20260808;
  auto data = datagen::GenerateSynthetic(data_config);
  ASSERT_TRUE(data.ok());
  const Dataset& base = data.value().dataset;
  ASSERT_TRUE(store::PackDataset(base, base_store).ok());

  SkillModelConfig config;
  config.num_levels = 3;
  config.max_iterations = 5;
  config.min_init_actions = 5;
  auto trained = Trainer(config).Train(base);
  ASSERT_TRUE(trained.ok());
  const std::string serve_snap = dir + "/serve.snap";
  SnapshotBytesFor(trained.value().model, base, trained.value().assignments,
                   serve_snap);
  auto serving = serve::ServingModel::FromSnapshotFile(serve_snap);
  ASSERT_TRUE(serving.ok()) << serving.status().ToString();

  // --- Serve with the ingest hook: every successful Observe is teed
  // into the append-only log, exactly as `serve --ingest-log` wires it. ---
  serve::Server server(serving.value(), /*num_shards=*/4);
  auto log = store::IngestLogWriter::Open(log_path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  store::IngestLogWriter* log_writer = log.value().get();
  server.SetObserveHook(
      [log_writer](const std::string& user, ItemId item, int64_t time) {
        ASSERT_TRUE(log_writer->Append({user, time, item}).ok());
      });

  // Observations: two existing users (appended strictly after their base
  // history, so the expected merge is base-sequence + log-order tail) and
  // one user the base store has never seen.
  struct Observation {
    std::string user;
    int64_t time;
    ItemId item;
  };
  std::vector<Observation> observations;
  for (const UserId u : {UserId{0}, UserId{2}}) {
    const auto seq = base.sequence(u);
    ASSERT_FALSE(seq.empty());
    for (int k = 0; k < 3; ++k) {
      observations.push_back(
          {base.user_name(u), seq.back().time + 1 + k,
           static_cast<ItemId>((u * 11 + k * 3) % base.items().num_items())});
    }
  }
  for (int k = 0; k < 5; ++k) {
    observations.push_back({"brand-new", 100 + k,
                            static_cast<ItemId>((k * 7) %
                                                base.items().num_items())});
  }
  for (const Observation& ob : observations) {
    auto level = server.Observe(ob.user, ob.item, ob.time, /*has_time=*/true);
    ASSERT_TRUE(level.ok()) << level.status().ToString();
  }
  ASSERT_TRUE(log_writer->Sync().ok());
  EXPECT_EQ(log_writer->appended(), observations.size());

  // --- Compact: fold the log into the base store. ---
  auto compacted = store::CompactStore(base_store, log_path, merged_store);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value().log_records, observations.size());
  EXPECT_EQ(compacted.value().new_users, 1u);
  EXPECT_EQ(compacted.value().total_actions,
            base.num_actions() + observations.size());

  auto reader = store::StoreReader::Open(merged_store);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  // --- The determinism story: full replay over base + log, running on
  // the zero-copy mapping, is bitwise equal to an offline retrain over
  // the equivalent in-RAM dataset. ---
  Dataset expected(base.items());
  for (UserId u = 0; u < base.num_users(); ++u) {
    expected.AddUser(base.user_name(u));
    for (const Action& a : base.sequence(u)) {
      ASSERT_TRUE(expected.AddAction(u, a.time, a.item, a.rating).ok());
    }
  }
  const UserId fresh = expected.AddUser("brand-new");
  for (const Observation& ob : observations) {
    const UserId u = ob.user == "brand-new"
                         ? fresh
                         : (ob.user == base.user_name(0) ? UserId{0}
                                                         : UserId{2});
    ASSERT_TRUE(expected.AddAction(u, ob.time, ob.item).ok());
  }
  ASSERT_EQ(mapped.value().num_users(), expected.num_users());
  ASSERT_EQ(mapped.value().num_actions(), expected.num_actions());

  auto offline = Trainer(config).Train(expected);
  ASSERT_TRUE(offline.ok());
  OnlineTrainer online(config);
  auto replay = online.TrainFullReplay(mapped.value());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(ModelParams(offline.value().model), ModelParams(online.model()));
  EXPECT_EQ(offline.value().assignments, online.assignments());
  EXPECT_EQ(SnapshotBytesFor(offline.value().model, expected,
                             offline.value().assignments,
                             dir + "/offline.snap"),
            SnapshotBytesFor(online.model(), mapped.value(),
                             online.assignments(), dir + "/replay.snap"));

  // --- The incremental path: refresh the base-trained state over the
  // merged mapping (only the three dirty users pay), snapshot it, and
  // hot-swap the running server. ---
  OnlineTrainer incremental(config);
  ASSERT_TRUE(incremental.TrainFullReplay(base).ok());
  auto stats = incremental.Refresh(base, mapped.value());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().dirty_users, 3u);
  EXPECT_EQ(stats.value().new_users, 1u);
  // Dirty users are re-solved whole: their full sequences are subtracted
  // and re-added, so the net grid growth is exactly the new observations.
  EXPECT_EQ(stats.value().actions_added - stats.value().actions_removed,
            observations.size());

  const std::string refreshed_snap = dir + "/refreshed.snap";
  SnapshotBytesFor(incremental.model(), mapped.value(),
                   incremental.assignments(), refreshed_snap);
  ASSERT_TRUE(server.SwapSnapshotFile(refreshed_snap).ok());
  // Sessions carry across the same-S swap; serving continues.
  auto after = server.Observe("brand-new", 1, 200, /*has_time=*/true);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(after.value().level, 1);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace upskill
