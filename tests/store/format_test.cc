// Columnar store round trip and defensive header validation: pack an
// in-RAM dataset, map it back, and require the mapped view to be
// logically identical and zero-copy; then corrupt the file byte-by-byte
// and require each corruption class to be rejected with its distinct
// machine-parseable token.

#include "store/format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "store/store_reader.h"
#include "store/store_writer.h"

namespace upskill {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset MakeDataset(int num_users = 7, int num_items = 5) {
  FeatureSchema schema;
  EXPECT_TRUE(schema.AddCount("steps").ok());
  EXPECT_TRUE(schema.AddReal("duration").ok());
  ItemTable items(std::move(schema));
  for (int i = 0; i < num_items; ++i) {
    const double row[] = {static_cast<double>(i % 3),
                          0.5 + static_cast<double>(i)};
    EXPECT_TRUE(items.AddItem(row, "item-" + std::to_string(i)).ok());
  }
  std::vector<double> release(static_cast<size_t>(num_items));
  for (int i = 0; i < num_items; ++i) release[static_cast<size_t>(i)] = 10.0 * i;
  EXPECT_TRUE(items.SetMetadata("release_time", std::move(release)).ok());
  Dataset dataset(std::move(items));
  for (int u = 0; u < num_users; ++u) {
    const UserId user = dataset.AddUser("user-" + std::to_string(u));
    for (int n = 0; n < u; ++n) {  // user u has u actions; user 0 has none
      const double rating = (n % 2 == 0) ? static_cast<double>(n) / 2.0
                                         : std::numeric_limits<double>::quiet_NaN();
      EXPECT_TRUE(
          dataset.AddAction(user, 100 * u + n, static_cast<ItemId>(n % num_items),
                            rating)
              .ok());
    }
  }
  return dataset;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(StoreFormatTest, PackMapRoundTripIsLogicallyIdentical) {
  const Dataset dataset = MakeDataset();
  const std::string path = TempPath("roundtrip.store");
  ASSERT_TRUE(PackDataset(dataset, path).ok());

  Result<StoreReader> reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().header().num_users,
            static_cast<uint64_t>(dataset.num_users()));
  EXPECT_EQ(reader.value().header().num_actions, dataset.num_actions());

  Result<Dataset> mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const Dataset& loaded = mapped.value();
  EXPECT_TRUE(loaded.mapped());
  ASSERT_EQ(loaded.num_users(), dataset.num_users());
  EXPECT_EQ(loaded.num_actions(), dataset.num_actions());
  ASSERT_EQ(loaded.items().num_items(), dataset.items().num_items());
  EXPECT_EQ(loaded.schema().num_features(), dataset.schema().num_features());
  for (ItemId i = 0; i < dataset.items().num_items(); ++i) {
    EXPECT_EQ(loaded.items().name(i), dataset.items().name(i));
    for (int f = 0; f < dataset.schema().num_features(); ++f) {
      EXPECT_EQ(loaded.items().value(i, f), dataset.items().value(i, f)) << i;
    }
  }
  ASSERT_TRUE(loaded.items().HasMetadata("release_time"));
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    EXPECT_EQ(loaded.user_name(u), dataset.user_name(u));
    const std::span<const Action> got = loaded.sequence(u);
    const std::span<const Action> want = dataset.sequence(u);
    ASSERT_EQ(got.size(), want.size()) << u;
    for (size_t n = 0; n < want.size(); ++n) {
      EXPECT_EQ(got[n].time, want[n].time);
      EXPECT_EQ(got[n].item, want[n].item);
      // Bitwise, so NaN ratings compare equal too.
      EXPECT_EQ(std::memcmp(&got[n].rating, &want[n].rating, sizeof(double)),
                0);
    }
  }

  // Zero-copy: sequences alias the mapping, not fresh allocations.
  const std::span<const uint8_t> file_bytes = reader.value().file()->bytes();
  for (UserId u = 0; u < loaded.num_users(); ++u) {
    if (loaded.sequence(u).empty()) continue;
    const uint8_t* p =
        reinterpret_cast<const uint8_t*>(loaded.sequence(u).data());
    EXPECT_GE(p, file_bytes.data());
    EXPECT_LT(p, file_bytes.data() + file_bytes.size());
  }

  // Mapped datasets reject mutation.
  Dataset& mutable_loaded = mapped.value();
  EXPECT_EQ(mutable_loaded.AddAction(0, 1, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StoreFormatTest, PackIsDeterministic) {
  const std::string a = TempPath("det_a.store");
  const std::string b = TempPath("det_b.store");
  ASSERT_TRUE(PackDataset(MakeDataset(), a).ok());
  ASSERT_TRUE(PackDataset(MakeDataset(), b).ok());
  EXPECT_EQ(ReadFile(a), ReadFile(b));
}

TEST(StoreFormatTest, EmptyDatasetRoundTrips) {
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("steps").ok());
  Dataset dataset((ItemTable(std::move(schema))));
  const std::string path = TempPath("empty.store");
  ASSERT_TRUE(PackDataset(dataset, path).ok());
  Result<StoreReader> reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Result<Dataset> mapped = reader.value().MapDataset();
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().num_users(), 0);
  EXPECT_EQ(mapped.value().num_actions(), 0u);
}

TEST(StoreFormatTest, WriterRejectsBadSequences) {
  const std::string path = TempPath("writer_errors.store");
  Result<std::unique_ptr<StoreWriter>> writer = StoreWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  StoreWriter& out = *writer.value();
  EXPECT_EQ(out.Append(1, 0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(out.BeginUser("u").ok());
  ASSERT_TRUE(out.Append(5, 2).ok());
  EXPECT_EQ(out.Append(4, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(out.Append(6, -1).code(), StatusCode::kOutOfRange);
  // Item 2 was referenced but the table only holds 1 item.
  FeatureSchema schema;
  ASSERT_TRUE(schema.AddCount("steps").ok());
  ItemTable items(std::move(schema));
  const double row[] = {1.0};
  ASSERT_TRUE(items.AddItem(row).ok());
  EXPECT_EQ(out.Finish(items).code(), StatusCode::kOutOfRange);
}

TEST(StoreFormatTest, AbandonedWriterLeavesNoFile) {
  const std::string path = TempPath("abandoned.store");
  {
    Result<std::unique_ptr<StoreWriter>> writer = StoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->BeginUser("u").ok());
    ASSERT_TRUE(writer.value()->Append(1, 0).ok());
    // Destroyed without Finish(): the temp file must be cleaned up.
  }
  std::ifstream store(path);
  EXPECT_FALSE(store.good());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

// --- Defensive validation: each corruption class has its own token. ---

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.store");
    ASSERT_TRUE(PackDataset(MakeDataset(), path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GE(bytes_.size(), kFirstSegmentOffset);
  }

  // Writes `bytes` to the store path and returns Open()'s status.
  Status OpenStatus(const std::string& bytes) {
    WriteFile(path_, bytes);
    Result<StoreReader> reader = StoreReader::Open(path_);
    return reader.ok() ? Status::OK() : reader.status();
  }

  static void ExpectToken(const Status& status, StoreError error) {
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
    const std::string token = StoreErrorToken(error);
    EXPECT_EQ(status.message().substr(0, token.size()), token)
        << status.ToString();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(StoreCorruptionTest, TruncatedBelowHeader) {
  ExpectToken(OpenStatus(bytes_.substr(0, sizeof(StoreHeader) - 1)),
              StoreError::kTruncated);
}

TEST_F(StoreCorruptionTest, TruncatedBody) {
  ExpectToken(OpenStatus(bytes_.substr(0, bytes_.size() - 1)),
              StoreError::kTruncated);
}

TEST_F(StoreCorruptionTest, TrailingGarbage) {
  ExpectToken(OpenStatus(bytes_ + "extra"), StoreError::kBadShape);
}

TEST_F(StoreCorruptionTest, BadMagic) {
  std::string bytes = bytes_;
  bytes[0] ^= 0x5a;
  ExpectToken(OpenStatus(bytes), StoreError::kBadMagic);
}

TEST_F(StoreCorruptionTest, UnknownVersion) {
  std::string bytes = bytes_;
  StoreHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = kStoreVersion + 1;
  // Re-seal the prologue CRC so only the version is at fault.
  header.header_crc = 0;
  Crc32Accumulator crc;
  crc.Update(&header, sizeof(header));
  crc.Update(bytes.data() + kDirectoryOffset,
             kNumSegments * sizeof(SegmentEntry));
  header.header_crc = crc.Finish();
  std::memcpy(bytes.data(), &header, sizeof(header));
  ExpectToken(OpenStatus(bytes), StoreError::kBadVersion);
}

TEST_F(StoreCorruptionTest, HeaderBitFlip) {
  std::string bytes = bytes_;
  bytes[offsetof(StoreHeader, num_users)] ^= 1;
  ExpectToken(OpenStatus(bytes), StoreError::kHeaderCrc);
}

TEST_F(StoreCorruptionTest, DirectoryBitFlip) {
  std::string bytes = bytes_;
  bytes[kDirectoryOffset + offsetof(SegmentEntry, offset)] ^= 1;
  ExpectToken(OpenStatus(bytes), StoreError::kHeaderCrc);
}

TEST_F(StoreCorruptionTest, SegmentOutOfBounds) {
  // Point the first segment past the end of the file, re-sealing the
  // prologue CRC so the bounds check itself must catch it.
  std::string bytes = bytes_;
  SegmentEntry entry;
  std::memcpy(&entry, bytes.data() + kDirectoryOffset, sizeof(entry));
  entry.offset = bytes.size();
  entry.length = 64;
  std::memcpy(bytes.data() + kDirectoryOffset, &entry, sizeof(entry));
  StoreHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.header_crc = 0;
  Crc32Accumulator crc;
  crc.Update(&header, sizeof(header));
  crc.Update(bytes.data() + kDirectoryOffset,
             kNumSegments * sizeof(SegmentEntry));
  header.header_crc = crc.Finish();
  std::memcpy(bytes.data(), &header, sizeof(header));
  ExpectToken(OpenStatus(bytes), StoreError::kSegmentBounds);
}

TEST_F(StoreCorruptionTest, SegmentPayloadBitFlip) {
  std::string bytes = bytes_;
  bytes[bytes.size() - 1] ^= 0x80;  // last segment's payload tail
  ExpectToken(OpenStatus(bytes), StoreError::kSegmentCrc);
}

TEST_F(StoreCorruptionTest, ActionPayloadBitFlip) {
  std::string bytes = bytes_;
  bytes[kFirstSegmentOffset + 3] ^= 0x10;
  ExpectToken(OpenStatus(bytes), StoreError::kSegmentCrc);
}

TEST_F(StoreCorruptionTest, NotAStoreFile) {
  ExpectToken(OpenStatus("definitely not a store"), StoreError::kTruncated);
}

TEST_F(StoreCorruptionTest, EveryTokenIsDistinct) {
  std::vector<std::string> tokens;
  for (const StoreError error :
       {StoreError::kTruncated, StoreError::kBadMagic, StoreError::kBadVersion,
        StoreError::kHeaderCrc, StoreError::kBadSegment,
        StoreError::kSegmentBounds, StoreError::kSegmentCrc,
        StoreError::kBadShape, StoreError::kBadValue}) {
    tokens.push_back(StoreErrorToken(error));
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      EXPECT_NE(tokens[i], tokens[j]);
    }
  }
}

TEST_F(StoreCorruptionTest, DescribeMentionsEverySegment) {
  Result<StoreReader> reader = StoreReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  const std::string description = reader.value().Describe();
  for (uint32_t kind = 1; kind <= kNumSegments; ++kind) {
    EXPECT_NE(description.find(SegmentKindName(static_cast<SegmentKind>(kind))),
              std::string::npos)
        << description;
  }
}

}  // namespace
}  // namespace store
}  // namespace upskill
