// Ingest log: append/replay round trip, crash recovery with randomized
// torn-tail injection (the recovered state must equal the longest
// durable prefix), idempotence, and concurrent appends. The torn-tail
// sweep runs under ASan in CI (see .github/workflows).

#include "store/ingest_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace upskill {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

IngestRecord MakeRecord(int n) {
  IngestRecord record;
  record.user = "user-" + std::to_string(n % 7);
  record.time = 1000 + n;
  record.item = n % 13;
  record.rating = (n % 3 == 0) ? static_cast<double>(n)
                               : std::numeric_limits<double>::quiet_NaN();
  return record;
}

std::vector<IngestRecord> ReplayAll(const std::string& path,
                                    IngestScan* scan_out = nullptr) {
  std::vector<IngestRecord> records;
  Result<IngestScan> scan =
      ReplayIngestLog(path, [&](const IngestRecord& record) {
        records.push_back(record);
        return Status::OK();
      });
  EXPECT_TRUE(scan.ok()) << scan.status().ToString();
  if (scan_out != nullptr && scan.ok()) *scan_out = scan.value();
  return records;
}

void ExpectSameRecord(const IngestRecord& got, const IngestRecord& want) {
  EXPECT_EQ(got.user, want.user);
  EXPECT_EQ(got.time, want.time);
  EXPECT_EQ(got.item, want.item);
  EXPECT_EQ(std::memcmp(&got.rating, &want.rating, sizeof(double)), 0);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(IngestLogTest, AppendSyncReplayRoundTrip) {
  const std::string path = TempPath("roundtrip.ingest");
  std::remove(path.c_str());
  IngestLogOptions options;
  options.batch_records = 5;  // several frames plus a short tail frame
  std::vector<IngestRecord> written;
  {
    Result<std::unique_ptr<IngestLogWriter>> writer =
        IngestLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int n = 0; n < 23; ++n) {
      written.push_back(MakeRecord(n));
      ASSERT_TRUE(writer.value()->Append(written.back()).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
    EXPECT_EQ(writer.value()->appended(), 23u);
  }
  IngestScan scan;
  const std::vector<IngestRecord> replayed = ReplayAll(path, &scan);
  ASSERT_EQ(replayed.size(), written.size());
  for (size_t n = 0; n < written.size(); ++n) {
    ExpectSameRecord(replayed[n], written[n]);
  }
  EXPECT_EQ(scan.num_records, 23u);
  EXPECT_EQ(scan.num_batches, 5u);  // 4 full frames of 5 + tail of 3
}

TEST(IngestLogTest, MissingFileIsAnEmptyLog) {
  const std::string path = TempPath("missing.ingest");
  std::remove(path.c_str());
  EXPECT_TRUE(ReplayAll(path).empty());
  Result<IngestRecovery> recovered = RecoverIngestLog(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().scan.valid_bytes, 0u);
  EXPECT_EQ(recovered.value().truncated_bytes, 0u);
}

TEST(IngestLogTest, WriterRejectsBadRecords) {
  const std::string path = TempPath("badrecords.ingest");
  std::remove(path.c_str());
  Result<std::unique_ptr<IngestLogWriter>> writer = IngestLogWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  IngestRecord record = MakeRecord(0);
  record.user = "";
  EXPECT_EQ(writer.value()->Append(record).code(),
            StatusCode::kInvalidArgument);
  record = MakeRecord(0);
  record.item = -2;
  EXPECT_EQ(writer.value()->Append(record).code(), StatusCode::kOutOfRange);
}

// The crash-recovery contract: for ANY prefix of the log bytes (a crash
// can stop a write anywhere), recovery yields exactly the records of the
// frames that made it to disk intact.
TEST(IngestLogTest, TornTailSweepRecoversLongestDurablePrefix) {
  const std::string path = TempPath("torn_src.ingest");
  std::remove(path.c_str());
  IngestLogOptions options;
  options.batch_records = 4;
  std::vector<IngestRecord> written;
  {
    Result<std::unique_ptr<IngestLogWriter>> writer =
        IngestLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    for (int n = 0; n < 20; ++n) {  // exactly 5 full frames
      written.push_back(MakeRecord(n));
      ASSERT_TRUE(writer.value()->Append(written.back()).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  const std::string bytes = ReadFile(path);
  ASSERT_FALSE(bytes.empty());

  // Frame boundaries, in bytes, recovered by a clean replay per prefix.
  // 25 randomized cuts plus the exact frame boundaries as edge cases.
  std::mt19937 rng(20260808u);
  std::vector<size_t> cuts;
  for (int c = 0; c < 25; ++c) {
    cuts.push_back(std::uniform_int_distribution<size_t>(0, bytes.size())(rng));
  }
  cuts.push_back(0);
  cuts.push_back(bytes.size());

  const std::string torn = TempPath("torn_cut.ingest");
  for (const size_t cut : cuts) {
    WriteFile(torn, bytes.substr(0, cut));
    Result<IngestRecovery> recovered = RecoverIngestLog(torn);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // Recovery truncated the file to the valid prefix...
    EXPECT_EQ(recovered.value().scan.valid_bytes +
                  recovered.value().truncated_bytes,
              cut);
    EXPECT_EQ(ReadFile(torn).size(), recovered.value().scan.valid_bytes);
    // ...whose records are exactly the fully-durable frames.
    const std::vector<IngestRecord> replayed = ReplayAll(torn);
    EXPECT_EQ(replayed.size(), recovered.value().scan.num_records);
    ASSERT_LE(replayed.size(), written.size());
    EXPECT_EQ(replayed.size() % options.batch_records, 0u) << cut;
    for (size_t n = 0; n < replayed.size(); ++n) {
      ExpectSameRecord(replayed[n], written[n]);
    }
    // A second recovery is a no-op (idempotence).
    Result<IngestRecovery> again = RecoverIngestLog(torn);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().truncated_bytes, 0u);
  }
}

// Bit flips (not just truncation): a corrupt frame ends the valid
// prefix even when intact frames follow it.
TEST(IngestLogTest, CorruptMiddleFrameEndsThePrefix) {
  const std::string path = TempPath("bitflip_src.ingest");
  std::remove(path.c_str());
  IngestLogOptions options;
  options.batch_records = 2;
  {
    Result<std::unique_ptr<IngestLogWriter>> writer =
        IngestLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    for (int n = 0; n < 10; ++n) {
      ASSERT_TRUE(writer.value()->Append(MakeRecord(n)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  const std::string bytes = ReadFile(path);
  const std::string corrupt_path = TempPath("bitflip_cut.ingest");
  std::mt19937 rng(123u);
  for (int trial = 0; trial < 25; ++trial) {
    std::string corrupt = bytes;
    const size_t at =
        std::uniform_int_distribution<size_t>(0, corrupt.size() - 1)(rng);
    corrupt[at] ^= static_cast<char>(
        1 << std::uniform_int_distribution<int>(0, 7)(rng));
    WriteFile(corrupt_path, corrupt);
    Result<IngestRecovery> recovered = RecoverIngestLog(corrupt_path);
    ASSERT_TRUE(recovered.ok());
    const std::vector<IngestRecord> replayed = ReplayAll(corrupt_path);
    // Whatever survives is a frame-aligned prefix of what was written.
    EXPECT_EQ(replayed.size() % options.batch_records, 0u);
    for (size_t n = 0; n < replayed.size(); ++n) {
      ExpectSameRecord(replayed[n], MakeRecord(static_cast<int>(n)));
    }
    EXPECT_LT(replayed.size(), 10u) << "flip at " << at << " went unnoticed";
  }
}

TEST(IngestLogTest, OpenAfterCrashTruncatesThenAppends) {
  const std::string path = TempPath("reopen.ingest");
  std::remove(path.c_str());
  IngestLogOptions options;
  options.batch_records = 3;
  {
    Result<std::unique_ptr<IngestLogWriter>> writer =
        IngestLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    for (int n = 0; n < 6; ++n) {
      ASSERT_TRUE(writer.value()->Append(MakeRecord(n)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  // Simulate a crash mid-frame: chop 5 bytes off the tail.
  const std::string bytes = ReadFile(path);
  WriteFile(path, bytes.substr(0, bytes.size() - 5));

  {
    Result<std::unique_ptr<IngestLogWriter>> writer =
        IngestLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    for (int n = 100; n < 103; ++n) {
      ASSERT_TRUE(writer.value()->Append(MakeRecord(n)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  const std::vector<IngestRecord> replayed = ReplayAll(path);
  ASSERT_EQ(replayed.size(), 6u);  // first frame survived + 3 new records
  for (int n = 0; n < 3; ++n) {
    ExpectSameRecord(replayed[static_cast<size_t>(n)], MakeRecord(n));
    ExpectSameRecord(replayed[static_cast<size_t>(n + 3)], MakeRecord(100 + n));
  }
}

TEST(IngestLogTest, ConcurrentAppendsAllSurvive) {
  const std::string path = TempPath("concurrent.ingest");
  std::remove(path.c_str());
  IngestLogOptions options;
  options.batch_records = 7;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  {
    Result<std::unique_ptr<IngestLogWriter>> writer =
        IngestLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int n = 0; n < kPerThread; ++n) {
          IngestRecord record = MakeRecord(n);
          record.user = "thread-" + std::to_string(t);
          if (!writer.value()->Append(record).ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(writer.value()->Sync().ok());
    EXPECT_EQ(writer.value()->appended(),
              static_cast<uint64_t>(kThreads * kPerThread));
  }
  IngestScan scan;
  const std::vector<IngestRecord> replayed = ReplayAll(path, &scan);
  EXPECT_EQ(replayed.size(), static_cast<size_t>(kThreads * kPerThread));
  // Per-thread order is preserved even though threads interleave.
  std::vector<int> seen(kThreads, 0);
  for (const IngestRecord& record : replayed) {
    const int t = record.user.back() - '0';
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ExpectSameRecord(record, [&] {
      IngestRecord want = MakeRecord(seen[static_cast<size_t>(t)]);
      want.user = "thread-" + std::to_string(t);
      return want;
    }());
    ++seen[static_cast<size_t>(t)];
  }
}

}  // namespace
}  // namespace store
}  // namespace upskill
