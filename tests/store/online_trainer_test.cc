// The online-EM contract (core/online_trainer.h): TrainFullReplay is
// bitwise equal to the offline trainer; Refresh maintains the count grid
// incrementally with exact parity against a from-scratch rebuild and
// refits to exactly what the full update step would produce; state
// round-trips through checkpoints bitwise, so a resumed trainer refreshes
// identically to one that never stopped.

#include "core/online_trainer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "datagen/synthetic.h"

namespace upskill {
namespace {

datagen::GeneratedData MakeData() {
  datagen::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 40;
  config.mean_sequence_length = 16.0;
  config.seed = 20260808;
  auto data = datagen::GenerateSynthetic(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

SkillModelConfig MakeConfig(TransitionModel transitions) {
  SkillModelConfig config;
  config.num_levels = 3;
  config.max_iterations = 5;
  config.min_init_actions = 5;
  config.transitions = transitions;
  return config;
}

std::vector<std::vector<double>> ModelParams(const SkillModel& model) {
  std::vector<std::vector<double>> params;
  for (int f = 0; f < model.num_features(); ++f) {
    for (int s = 1; s <= model.num_levels(); ++s) {
      params.push_back(model.component(f, s).Parameters());
    }
  }
  return params;
}

// Rebuilds an owned copy of `base` so the copy can grow independently.
Dataset CopyOwned(const Dataset& base) {
  Dataset out(base.items());
  for (UserId u = 0; u < base.num_users(); ++u) {
    out.AddUser(base.user_name(u));
    for (const Action& a : base.sequence(u)) {
      EXPECT_TRUE(out.AddAction(u, a.time, a.item, a.rating).ok());
    }
  }
  return out;
}

// The "current" dataset of a refresh: `base` plus a handful of appended
// actions on a few existing users and one brand-new user. Deterministic.
Dataset GrowDataset(const Dataset& base, int* expected_dirty) {
  Dataset out = CopyOwned(base);
  const int num_items = base.items().num_items();
  const std::vector<UserId> touched = {0, 3, static_cast<UserId>(
                                                 base.num_users() - 1)};
  for (UserId u : touched) {
    const auto seq = base.sequence(u);
    const int64_t start = seq.empty() ? 0 : seq.back().time + 1;
    for (int k = 0; k < 4; ++k) {
      EXPECT_TRUE(
          out.AddAction(u, start + k, (u * 7 + k * 3) % num_items).ok());
    }
  }
  const UserId fresh = out.AddUser("newcomer");
  for (int k = 0; k < 8; ++k) {
    EXPECT_TRUE(out.AddAction(fresh, 100 + k, (k * 5) % num_items).ok());
  }
  *expected_dirty = static_cast<int>(touched.size()) + 1;
  return out;
}

// From-scratch grid rebuild — the oracle the incremental maintenance must
// match bit for bit (counts are exact integer sums in doubles).
std::vector<double> RebuildGrid(const Dataset& dataset,
                                const SkillAssignments& assignments,
                                int num_levels) {
  const size_t num_items = static_cast<size_t>(dataset.items().num_items());
  std::vector<double> grid(static_cast<size_t>(num_levels) * num_items, 0.0);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const auto seq = dataset.sequence(u);
    const auto& path = assignments[static_cast<size_t>(u)];
    EXPECT_EQ(path.size(), seq.size());
    for (size_t n = 0; n < seq.size(); ++n) {
      grid[static_cast<size_t>(path[n] - 1) * num_items +
           static_cast<size_t>(seq[n].item)] += 1.0;
    }
  }
  return grid;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class OnlineTrainerTest : public ::testing::TestWithParam<TransitionModel> {};

TEST_P(OnlineTrainerTest, FullReplayMatchesOfflineTrainer) {
  const auto data = MakeData();
  const SkillModelConfig config = MakeConfig(GetParam());

  auto offline = Trainer(config).Train(data.dataset);
  ASSERT_TRUE(offline.ok());

  OnlineTrainer online(config);
  auto replay = online.TrainFullReplay(data.dataset);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  EXPECT_TRUE(online.trained());
  EXPECT_EQ(ModelParams(offline.value().model), ModelParams(online.model()));
  EXPECT_EQ(offline.value().assignments, online.assignments());
  // The adopted grid is exactly what the final assignments imply.
  const auto grid = RebuildGrid(data.dataset, online.assignments(),
                                config.num_levels);
  EXPECT_EQ(grid, std::vector<double>(online.level_counts().begin(),
                                      online.level_counts().end()));
}

TEST_P(OnlineTrainerTest, RefreshOnIdenticalDataIsANoOp) {
  const auto data = MakeData();
  OnlineTrainer online(MakeConfig(GetParam()));
  ASSERT_TRUE(online.TrainFullReplay(data.dataset).ok());

  const auto before = ModelParams(online.model());
  const auto assignments_before = online.assignments();
  auto stats = online.Refresh(data.dataset, data.dataset);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().dirty_users, 0u);
  EXPECT_EQ(stats.value().clean_users,
            static_cast<size_t>(data.dataset.num_users()));
  EXPECT_EQ(stats.value().actions_added, 0u);
  EXPECT_EQ(before, ModelParams(online.model()));
  EXPECT_EQ(assignments_before, online.assignments());
}

TEST_P(OnlineTrainerTest, RefreshPatchesGridExactlyAndRefitsFromIt) {
  const auto data = MakeData();
  const SkillModelConfig config = MakeConfig(GetParam());
  OnlineTrainer online(config);
  ASSERT_TRUE(online.TrainFullReplay(data.dataset).ok());

  int expected_dirty = 0;
  const Dataset current = GrowDataset(data.dataset, &expected_dirty);
  auto stats = online.Refresh(data.dataset, current);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().dirty_users, static_cast<size_t>(expected_dirty));
  EXPECT_EQ(stats.value().new_users, 1u);
  EXPECT_EQ(stats.value().clean_users,
            static_cast<size_t>(data.dataset.num_users()) -
                (static_cast<size_t>(expected_dirty) - 1));
  EXPECT_GT(stats.value().actions_added, stats.value().actions_removed);

  // Incremental grid == from-scratch rebuild over (current, assignments).
  const auto grid = RebuildGrid(current, online.assignments(),
                                config.num_levels);
  EXPECT_EQ(grid, std::vector<double>(online.level_counts().begin(),
                                      online.level_counts().end()));

  // The refit is a pure function of the grid: re-applying the update step
  // to the rebuilt grid reproduces the refreshed parameters bitwise.
  SkillModel anchor = online.model();
  FitCellsFromCountGrid(current.items(), grid, &anchor);
  EXPECT_EQ(ModelParams(anchor), ModelParams(online.model()));
}

TEST_P(OnlineTrainerTest, CheckpointRoundTripIsBitwise) {
  const auto data = MakeData();
  const SkillModelConfig config = MakeConfig(GetParam());
  OnlineTrainer online(config);
  ASSERT_TRUE(online.TrainFullReplay(data.dataset).ok());

  const std::string p1 = testing::TempDir() + "/online_ckpt_1.bin";
  const std::string p2 = testing::TempDir() + "/online_ckpt_2.bin";
  ASSERT_TRUE(online.SaveCheckpoint(p1).ok());
  auto resumed = OnlineTrainer::LoadCheckpoint(p1, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed.value().SaveCheckpoint(p2).ok());
  EXPECT_EQ(FileBytes(p1), FileBytes(p2));  // same state, same bytes

  // A resumed trainer refreshes identically to one that never stopped.
  int expected_dirty = 0;
  const Dataset current = GrowDataset(data.dataset, &expected_dirty);
  ASSERT_TRUE(online.Refresh(data.dataset, current).ok());
  ASSERT_TRUE(resumed.value().Refresh(data.dataset, current).ok());
  EXPECT_EQ(ModelParams(online.model()), ModelParams(resumed.value().model()));
  EXPECT_EQ(online.assignments(), resumed.value().assignments());
  EXPECT_EQ(std::vector<double>(online.level_counts().begin(),
                                online.level_counts().end()),
            std::vector<double>(resumed.value().level_counts().begin(),
                                resumed.value().level_counts().end()));
}

TEST_P(OnlineTrainerTest, CheckpointRejectsCorruption) {
  const auto data = MakeData();
  const SkillModelConfig config = MakeConfig(GetParam());
  OnlineTrainer online(config);
  ASSERT_TRUE(online.TrainFullReplay(data.dataset).ok());

  const std::string path = testing::TempDir() + "/online_ckpt_corrupt.bin";
  ASSERT_TRUE(online.SaveCheckpoint(path).ok());
  std::string bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-file
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto resumed = OnlineTrainer::LoadCheckpoint(path, config);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kCorruption);
}

TEST_P(OnlineTrainerTest, CheckpointRejectsConfigMismatch) {
  const auto data = MakeData();
  const SkillModelConfig config = MakeConfig(GetParam());
  OnlineTrainer online(config);
  ASSERT_TRUE(online.TrainFullReplay(data.dataset).ok());

  const std::string path = testing::TempDir() + "/online_ckpt_mismatch.bin";
  ASSERT_TRUE(online.SaveCheckpoint(path).ok());
  SkillModelConfig other = config;
  other.num_levels = config.num_levels + 1;
  auto resumed = OnlineTrainer::LoadCheckpoint(path, other);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

INSTANTIATE_TEST_SUITE_P(Transitions, OnlineTrainerTest,
                         ::testing::Values(TransitionModel::kNone,
                                           TransitionModel::kGlobal),
                         [](const auto& info) {
                           return info.param == TransitionModel::kGlobal
                                      ? "Global"
                                      : "None";
                         });

TEST(OnlineTrainerErrorsTest, RejectsPerClassTransitions) {
  const auto data = MakeData();
  SkillModelConfig config = MakeConfig(TransitionModel::kPerClass);
  config.num_progression_classes = 2;
  OnlineTrainer online(config);
  auto replay = online.TrainFullReplay(data.dataset);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OnlineTrainerErrorsTest, RefreshRequiresTraining) {
  const auto data = MakeData();
  OnlineTrainer online(MakeConfig(TransitionModel::kNone));
  EXPECT_FALSE(online.Refresh(data.dataset, data.dataset).ok());
}

TEST(OnlineTrainerErrorsTest, RefreshRejectsMismatchedPrevious) {
  const auto data = MakeData();
  OnlineTrainer online(MakeConfig(TransitionModel::kNone));
  int expected_dirty = 0;
  const Dataset current = GrowDataset(data.dataset, &expected_dirty);
  ASSERT_TRUE(online.TrainFullReplay(current).ok());
  // `previous` must be the dataset the state was trained on; passing the
  // larger dataset as previous (users would disappear) is rejected.
  EXPECT_FALSE(online.Refresh(current, data.dataset).ok());
}

}  // namespace
}  // namespace upskill
